"""The AGCU address-translation layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.tiers import TierKind
from repro.memory.translation import (
    PageAllocator,
    TranslationFault,
    TranslationUnit,
)

PAGE = 2 * 1024 * 1024


@pytest.fixture
def unit():
    return TranslationUnit(page_bytes=PAGE, tlb_entries=4)


@pytest.fixture
def hbm():
    return PageAllocator(TierKind.HBM, num_pages=32)


class TestMapping:
    def test_contiguous_va_discontiguous_pa(self, unit, hbm):
        # Fragment the pool: allocate and free alternating pages.
        held = unit.map_segment(0, 4 * PAGE, hbm)
        unit.map_segment(4 * PAGE, 2 * PAGE, hbm)
        unit.unmap_segment(0, 4 * PAGE, hbm)
        mappings = unit.map_segment(16 * PAGE, 5 * PAGE, hbm)
        # VA pages are contiguous regardless of where PAs landed.
        assert [m.virtual_page for m in mappings] == list(range(16, 21))

    def test_translate_round_trip(self, unit, hbm):
        unit.map_segment(0, 3 * PAGE, hbm)
        tier, pa = unit.translate(PAGE + 123)
        assert tier is TierKind.HBM
        assert pa % PAGE == 123

    def test_remap_after_eviction_changes_physical_address(self, unit, hbm):
        unit.map_segment(0, PAGE, hbm)
        _, pa_before = unit.translate(0)
        unit.unmap_segment(0, PAGE, hbm)
        hbm.allocate(1)  # someone else takes the old page
        unit.map_segment(0, PAGE, hbm)
        _, pa_after = unit.translate(0)
        assert pa_after != pa_before  # same VA, new physical home

    def test_double_map_rejected(self, unit, hbm):
        unit.map_segment(0, PAGE, hbm)
        with pytest.raises(ValueError, match="already mapped"):
            unit.map_segment(0, PAGE, hbm)

    def test_unaligned_base_rejected(self, unit, hbm):
        with pytest.raises(ValueError, match="aligned"):
            unit.map_segment(123, PAGE, hbm)

    def test_unmapped_access_faults(self, unit):
        with pytest.raises(TranslationFault):
            unit.translate(0)

    def test_unmap_returns_pages(self, unit, hbm):
        before = hbm.free_pages
        unit.map_segment(0, 4 * PAGE, hbm)
        unit.unmap_segment(0, 4 * PAGE, hbm)
        assert hbm.free_pages == before


class TestAllocator:
    def test_exhaustion_raises(self, hbm):
        hbm.allocate(32)
        with pytest.raises(MemoryError):
            hbm.allocate(1)

    def test_release_out_of_pool_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.release([999])


class TestTLB:
    def test_repeated_access_hits(self, unit, hbm):
        unit.map_segment(0, PAGE, hbm)
        unit.translate(0)
        unit.translate(100)
        unit.translate(200)
        assert unit.tlb_hits == 2
        assert unit.tlb_misses == 1

    def test_capacity_eviction(self, hbm):
        unit = TranslationUnit(page_bytes=PAGE, tlb_entries=2)
        unit.map_segment(0, 4 * PAGE, hbm)
        for vp in range(4):
            unit.translate(vp * PAGE)
        unit.translate(0)  # evicted by now -> miss
        assert unit.tlb_misses == 5

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_translation_is_stable_under_any_access_pattern(self, accesses):
        unit = TranslationUnit(page_bytes=PAGE, tlb_entries=3)
        pool = PageAllocator(TierKind.HBM, num_pages=8)
        unit.map_segment(0, 8 * PAGE, pool)
        reference = {vp: unit.translate(vp * PAGE)[1] for vp in range(8)}
        for vp in accesses:
            assert unit.translate(vp * PAGE)[1] == reference[vp]

    def test_validation(self):
        with pytest.raises(ValueError):
            TranslationUnit(page_bytes=3000)
        with pytest.raises(ValueError):
            TranslationUnit(tlb_entries=0)
