"""Memory tiers: reservations, capacity, transfer paths."""

import pytest

from repro.arch.config import MemoryTierSpec
from repro.memory.tiers import CapacityError, MemorySystem, MemoryTier, TierKind


def _tier(kind, capacity=1000, bandwidth=100.0):
    return MemoryTier(kind, MemoryTierSpec(kind.name, capacity, bandwidth, 0.0))


class TestMemoryTier:
    def test_reserve_and_release(self):
        tier = _tier(TierKind.HBM)
        tier.reserve("a", 400)
        assert tier.used_bytes == 400
        assert tier.free_bytes == 600
        assert tier.release("a") == 400
        assert tier.used_bytes == 0

    def test_overflow_raises_capacity_error(self):
        tier = _tier(TierKind.HBM, capacity=100)
        tier.reserve("a", 80)
        with pytest.raises(CapacityError):
            tier.reserve("b", 30)

    def test_duplicate_region_rejected(self):
        tier = _tier(TierKind.HBM)
        tier.reserve("a", 10)
        with pytest.raises(ValueError):
            tier.reserve("a", 10)

    def test_release_unknown_region_raises(self):
        with pytest.raises(KeyError):
            _tier(TierKind.HBM).release("ghost")

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            _tier(TierKind.HBM).reserve("a", -1)

    def test_clear_frees_everything(self):
        tier = _tier(TierKind.HBM)
        tier.reserve("a", 10)
        tier.reserve("b", 20)
        tier.clear()
        assert tier.used_bytes == 0


class TestMemorySystem:
    def _system(self):
        return MemorySystem(
            tiers={
                TierKind.HBM: _tier(TierKind.HBM, bandwidth=2000.0),
                TierKind.DDR: _tier(TierKind.DDR, bandwidth=200.0),
            }
        )

    def test_default_transfer_is_slower_tier(self):
        sys = self._system()
        assert sys.transfer_bandwidth(TierKind.DDR, TierKind.HBM) == 200.0

    def test_override_wins(self):
        sys = self._system()
        sys.set_transfer_bandwidth(TierKind.DDR, TierKind.HBM, 500.0)
        assert sys.transfer_bandwidth(TierKind.DDR, TierKind.HBM) == 500.0
        # The reverse direction is unaffected.
        assert sys.transfer_bandwidth(TierKind.HBM, TierKind.DDR) == 200.0

    def test_transfer_time_scales_with_bytes(self):
        sys = self._system()
        assert sys.transfer_time(TierKind.DDR, TierKind.HBM, 200) == pytest.approx(1.0)

    def test_zero_capacity_tier_not_present(self):
        sys = MemorySystem(tiers={TierKind.HBM: _tier(TierKind.HBM, capacity=0)})
        assert not sys.has_tier(TierKind.HBM)
        assert not sys.has_tier(TierKind.DDR)

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(tiers={})

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError):
            self._system().set_transfer_bandwidth(TierKind.DDR, TierKind.HBM, 0)
