"""Symbol lifetimes and static analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.symbols import (
    Symbol,
    lifetimes_overlap,
    peak_live_bytes,
    validate_program,
)


class TestSymbol:
    def test_live_range_is_half_open(self):
        sym = Symbol("a", 100, uses=(2, 5, 9))
        assert sym.live_range == (2, 10)

    def test_transfer_footprint_counts_every_use(self):
        sym = Symbol("w", 1000, uses=(0, 1, 2, 3))
        assert sym.transfer_footprint_bytes == 4000

    def test_empty_uses_rejected(self):
        with pytest.raises(ValueError):
            Symbol("a", 10, uses=())

    def test_unsorted_uses_rejected(self):
        with pytest.raises(ValueError):
            Symbol("a", 10, uses=(3, 1))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Symbol("a", -1, uses=(0,))


class TestOverlap:
    def test_disjoint_ranges_do_not_overlap(self):
        a = Symbol("a", 1, uses=(0, 2))
        b = Symbol("b", 1, uses=(3, 5))
        assert not lifetimes_overlap(a, b)

    def test_adjacent_ranges_do_not_overlap(self):
        # a dies at step 3 (last use 2); b is born at step 3.
        a = Symbol("a", 1, uses=(0, 2))
        b = Symbol("b", 1, uses=(3,))
        assert not lifetimes_overlap(a, b)

    def test_nested_ranges_overlap(self):
        a = Symbol("a", 1, uses=(0, 10))
        b = Symbol("b", 1, uses=(4, 5))
        assert lifetimes_overlap(a, b)
        assert lifetimes_overlap(b, a)


class TestProgramAnalysis:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            validate_program([Symbol("x", 1, (0,)), Symbol("x", 2, (1,))])

    def test_peak_live_bytes_sequential(self):
        # Two symbols that never coexist: peak is the larger one.
        syms = [Symbol("a", 100, uses=(0, 1)), Symbol("b", 70, uses=(2, 3))]
        assert peak_live_bytes(syms) == 100

    def test_peak_live_bytes_concurrent(self):
        syms = [Symbol("a", 100, uses=(0, 2)), Symbol("b", 70, uses=(1, 3))]
        assert peak_live_bytes(syms) == 170

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=30,
        )
    )
    def test_peak_never_below_largest_symbol(self, raw):
        syms = [
            Symbol(f"s{i}", size, uses=tuple(sorted({a, b})))
            for i, (size, a, b) in enumerate(raw)
        ]
        assert peak_live_bytes(syms) >= max(s.size_bytes for s in syms)
