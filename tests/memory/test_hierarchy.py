"""MemoryHierarchy: levels, edge costs, multi-hop pricing, factories."""

import pytest

from repro.memory.hierarchy import (
    DEFAULT_NVME_LATENCY_S,
    DEFAULT_NVME_READ_BANDWIDTH,
    EdgeCost,
    MemoryHierarchy,
    TierLevel,
)
from repro.memory.tiers import TierKind
from repro.systems.platforms import sn40l_platform
from repro.units import GB


def three_tier(hbm=100, ddr=1000):
    return MemoryHierarchy(
        levels=(
            TierLevel("hbm", hbm),
            TierLevel("ddr", ddr),
            TierLevel("nvme", None),
        ),
        edges={
            ("ddr", "hbm"): EdgeCost(bandwidth=100.0, latency_s=0.5),
            ("hbm", "ddr"): EdgeCost(bandwidth=50.0, latency_s=0.25),
            ("nvme", "ddr"): EdgeCost(bandwidth=10.0, latency_s=1.0),
            ("ddr", "nvme"): EdgeCost(bandwidth=5.0, latency_s=2.0),
        },
    )


class TestTierLevel:
    def test_name_normalized_lowercase(self):
        assert TierLevel("HBM", 10).name == "hbm"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            TierLevel("")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="negative capacity"):
            TierLevel("hbm", -1)

    def test_bounded(self):
        assert TierLevel("hbm", 10).bounded
        assert not TierLevel("nvme", None).bounded


class TestEdgeCost:
    def test_formula_matches_switch_time_shape(self):
        edge = EdgeCost(bandwidth=100.0, latency_s=0.5)
        assert edge.time_s(200) == 0.5 + 200 / 100.0

    def test_zero_bytes_cost_nothing(self):
        assert EdgeCost(bandwidth=100.0, latency_s=0.5).time_s(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="negative transfer size"):
            EdgeCost(bandwidth=100.0).time_s(-1)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            EdgeCost(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="negative latency"):
            EdgeCost(bandwidth=1.0, latency_s=-0.1)


class TestConstruction:
    def test_needs_two_levels(self):
        with pytest.raises(ValueError, match="at least two levels"):
            MemoryHierarchy((TierLevel("hbm"),), {})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tier name"):
            MemoryHierarchy(
                (TierLevel("hbm"), TierLevel("HBM")),
                {("hbm", "hbm"): EdgeCost(1.0)},
            )

    def test_edge_to_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            MemoryHierarchy(
                (TierLevel("hbm"), TierLevel("ddr")),
                {
                    ("ddr", "hbm"): EdgeCost(1.0),
                    ("hbm", "ddr"): EdgeCost(1.0),
                    ("sram", "hbm"): EdgeCost(1.0),
                },
            )

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError, match="self-edge"):
            MemoryHierarchy(
                (TierLevel("hbm"), TierLevel("ddr")),
                {
                    ("ddr", "hbm"): EdgeCost(1.0),
                    ("hbm", "ddr"): EdgeCost(1.0),
                    ("hbm", "hbm"): EdgeCost(1.0),
                },
            )

    def test_missing_adjacent_edge_rejected(self):
        with pytest.raises(ValueError, match="missing edge"):
            MemoryHierarchy(
                (TierLevel("hbm"), TierLevel("ddr")),
                {("ddr", "hbm"): EdgeCost(1.0)},
            )

    def test_names_and_levels(self):
        h = three_tier()
        assert h.names == ("hbm", "ddr", "nvme")
        assert [lvl.name for lvl in h.levels] == ["hbm", "ddr", "nvme"]

    def test_contains_accepts_tierkind(self):
        h = three_tier()
        assert "hbm" in h
        assert TierKind.HBM in h
        assert TierKind.NVME in h
        assert "sram" not in h

    def test_capacity_lookup(self):
        h = three_tier(hbm=100, ddr=1000)
        assert h.capacity_bytes("hbm") == 100
        assert h.capacity_bytes("ddr") == 1000
        assert h.capacity_bytes("nvme") is None

    def test_below(self):
        h = three_tier()
        assert h.below("hbm") == "ddr"
        assert h.below("ddr") == "nvme"
        assert h.below("nvme") is None

    def test_index_unknown_tier(self):
        with pytest.raises(ValueError, match="unknown tier"):
            three_tier().index("sram")


class TestTransferTime:
    def test_single_hop_uses_edge(self):
        h = three_tier()
        assert h.transfer_time("ddr", "hbm", 100) == 0.5 + 100 / 100.0
        assert h.transfer_time("hbm", "ddr", 100) == 0.25 + 100 / 50.0

    def test_multi_hop_sums_adjacent_edges(self):
        h = three_tier()
        expected = (1.0 + 100 / 10.0) + (0.5 + 100 / 100.0)
        assert h.transfer_time("nvme", "hbm", 100) == pytest.approx(expected)

    def test_direct_edge_overrides_hop_sum(self):
        h = MemoryHierarchy(
            levels=(
                TierLevel("hbm"),
                TierLevel("ddr"),
                TierLevel("nvme"),
            ),
            edges={
                ("ddr", "hbm"): EdgeCost(100.0),
                ("hbm", "ddr"): EdgeCost(100.0),
                ("nvme", "ddr"): EdgeCost(10.0),
                ("ddr", "nvme"): EdgeCost(10.0),
                # A GPUDirect-style path that bypasses DDR entirely.
                ("nvme", "hbm"): EdgeCost(20.0),
            },
        )
        assert h.transfer_time("nvme", "hbm", 100) == 100 / 20.0

    def test_same_tier_is_free(self):
        assert three_tier().transfer_time("hbm", "hbm", 100) == 0.0

    def test_same_tier_still_validates(self):
        with pytest.raises(ValueError, match="unknown tier"):
            three_tier().transfer_time("sram", "sram", 100)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="negative transfer size"):
            three_tier().transfer_time("ddr", "hbm", -1)

    def test_path(self):
        h = three_tier()
        assert h.path("nvme", "hbm") == [("nvme", "ddr"), ("ddr", "hbm")]
        assert h.path("hbm", "nvme") == [("hbm", "ddr"), ("ddr", "nvme")]
        assert h.path("ddr", "hbm") == [("ddr", "hbm")]

    def test_callable_edge(self):
        h = MemoryHierarchy(
            (TierLevel("hbm"), TierLevel("ddr")),
            {
                ("ddr", "hbm"): lambda n: 42.0,
                ("hbm", "ddr"): lambda n: 7.0,
            },
        )
        assert h.transfer_time("ddr", "hbm", 1) == 42.0
        assert h.transfer_time("hbm", "ddr", 1) == 7.0


class TestWithCapacities:
    def test_overrides_selected_levels(self):
        h = three_tier(hbm=100, ddr=1000).with_capacities({"hbm": 50})
        assert h.capacity_bytes("hbm") == 50
        assert h.capacity_bytes("ddr") == 1000

    def test_original_untouched(self):
        base = three_tier(hbm=100)
        base.with_capacities({"hbm": 50})
        assert base.capacity_bytes("hbm") == 100

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tiers"):
            three_tier().with_capacities({"sram": 1})

    def test_edges_preserved(self):
        base = three_tier()
        capped = base.with_capacities({"ddr": 7})
        assert capped.transfer_time("nvme", "hbm", 100) == pytest.approx(
            base.transfer_time("nvme", "hbm", 100)
        )


class TestFromPlatform:
    def test_ddr_to_hbm_matches_switch_time_bitwise(self):
        platform = sn40l_platform()
        h = MemoryHierarchy.from_platform(platform)
        for nbytes in (0, 1, 4096, 50 * GB, platform.hbm_capacity_bytes):
            assert h.transfer_time("ddr", "hbm", nbytes) == \
                platform.switch_time(nbytes)

    def test_levels_take_platform_capacities(self):
        platform = sn40l_platform()
        h = MemoryHierarchy.from_platform(platform)
        assert h.names == ("hbm", "ddr", "nvme")
        assert h.capacity_bytes("hbm") == platform.hbm_capacity_bytes
        assert h.capacity_bytes("ddr") == platform.second_tier_capacity_bytes
        assert h.capacity_bytes("nvme") is None

    def test_nvme_edges_use_defaults(self):
        h = MemoryHierarchy.from_platform(sn40l_platform())
        assert h.transfer_time("nvme", "ddr", GB) == pytest.approx(
            DEFAULT_NVME_LATENCY_S + GB / DEFAULT_NVME_READ_BANDWIDTH
        )

    def test_nvme_promotion_costs_more_than_ddr(self):
        h = MemoryHierarchy.from_platform(sn40l_platform())
        assert h.transfer_time("nvme", "hbm", GB) > \
            h.transfer_time("ddr", "hbm", GB)


class TestFromEdgeTimes:
    def test_wraps_callables_verbatim(self):
        ups, downs = [], []
        h = MemoryHierarchy.from_edge_times(
            lambda n: ups.append(n) or 1.5,
            lambda n: downs.append(n) or 2.5,
        )
        assert h.transfer_time("ddr", "hbm", 10) == 1.5
        assert h.transfer_time("hbm", "ddr", 20) == 2.5
        assert ups == [10] and downs == [20]

    def test_downgrade_defaults_to_upgrade(self):
        h = MemoryHierarchy.from_edge_times(lambda n: 3.0)
        assert h.transfer_time("hbm", "ddr", 1) == 3.0

    def test_two_levels_unbounded(self):
        h = MemoryHierarchy.from_edge_times(lambda n: 0.0)
        assert h.names == ("hbm", "ddr")
        assert h.capacity_bytes("hbm") is None


def test_repr_mentions_stack():
    r = repr(three_tier(hbm=100))
    assert "hbm[100]" in r and "nvme" in r
