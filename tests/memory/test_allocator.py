"""Static allocator: address reuse, spilling, and its invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.allocator import (
    AllocationError,
    assign_addresses,
    naive_spill_order,
    plan_memory,
    spill_order,
)
from repro.memory.symbols import Symbol, peak_live_bytes
from repro.memory.tiers import TierKind


def _sym(name, size, uses, weight=False):
    return Symbol(name, size, tuple(uses), read_only=weight, is_weight=weight)


class TestAddressReuse:
    def test_disjoint_lifetimes_share_addresses(self):
        syms = [_sym("a", 1000, (0, 1)), _sym("b", 1000, (2, 3))]
        placements, extent = assign_addresses(syms, TierKind.HBM)
        assert extent == 1000  # b reuses a's address range
        assert placements["a"].offset == placements["b"].offset

    def test_overlapping_lifetimes_get_disjoint_ranges(self):
        syms = [_sym("a", 1000, (0, 2)), _sym("b", 1000, (1, 3))]
        placements, extent = assign_addresses(syms, TierKind.HBM)
        a, b = placements["a"], placements["b"]
        assert a.end <= b.offset or b.end <= a.offset
        assert extent >= 2000

    def test_alignment_respected(self):
        syms = [_sym("a", 10, (0, 2)), _sym("b", 10, (0, 2))]
        placements, _ = assign_addresses(syms, TierKind.HBM, alignment=64)
        for p in placements.values():
            assert p.offset % 64 == 0

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            assign_addresses([], TierKind.HBM, alignment=0)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(64, 4096), st.integers(0, 10), st.integers(0, 10)),
            min_size=1,
            max_size=25,
        )
    )
    def test_no_live_overlap_ever(self, raw):
        """Property: concurrently-live symbols never share bytes, and the
        extent is at least the peak live footprint."""
        syms = [
            _sym(f"s{i}", size, sorted({a, b}))
            for i, (size, a, b) in enumerate(raw)
        ]
        placements, extent = assign_addresses(syms, TierKind.HBM, alignment=1)
        from repro.memory.symbols import lifetimes_overlap

        items = list(placements.values())
        for i, p in enumerate(items):
            for q in items[i + 1 :]:
                if lifetimes_overlap(p.symbol, q.symbol):
                    assert p.end <= q.offset or q.end <= p.offset
        assert extent >= peak_live_bytes(syms)


class TestSpillRanking:
    def test_weights_spill_last(self):
        syms = [
            _sym("act", 100, (0, 1)),
            _sym("w", 100, (0,), weight=True),
        ]
        order = spill_order(syms)
        assert order[0].name == "act"
        assert order[-1].name == "w"

    def test_low_footprint_spills_first(self):
        rarely = _sym("rare", 100, (0,))
        often = _sym("hot", 100, (0, 1, 2, 3, 4))
        assert spill_order([often, rarely])[0].name == "rare"

    def test_naive_order_prefers_large(self):
        big = _sym("big", 1000, (0, 1, 2))
        small = _sym("small", 10, (0,))
        assert naive_spill_order([small, big])[0].name == "big"


class TestPlanMemory:
    def test_everything_fits_no_spill(self):
        syms = [_sym("a", 100, (0, 1)), _sym("w", 200, (0, 1), weight=True)]
        plan = plan_memory(syms, hbm_capacity_bytes=1000, ddr_capacity_bytes=1000)
        assert plan.spilled == []
        assert plan.extent(TierKind.DDR) == 0

    def test_spills_until_fit(self):
        syms = [
            _sym("w", 600, (0, 1, 2, 3), weight=True),
            _sym("act1", 300, (0, 1)),
            _sym("act2", 300, (1, 2)),
        ]
        plan = plan_memory(syms, hbm_capacity_bytes=1000, ddr_capacity_bytes=5000)
        assert plan.spilled  # something had to go
        assert "w" not in plan.spilled  # weights keep HBM priority
        assert plan.extent(TierKind.HBM) <= 1000

    def test_impossible_program_raises(self):
        syms = [_sym("huge", 10_000, (0, 1))]
        with pytest.raises(AllocationError):
            plan_memory(syms, hbm_capacity_bytes=100, ddr_capacity_bytes=100)

    def test_ddr_overflow_raises(self):
        syms = [_sym("a", 90, (0, 1)), _sym("b", 90, (0, 1))]
        with pytest.raises(AllocationError):
            plan_memory(syms, hbm_capacity_bytes=100, ddr_capacity_bytes=50)

    def test_spill_traffic_accounts_every_use(self):
        syms = [_sym("a", 100, (0, 1)), _sym("b", 100, (0, 1, 2))]
        plan = plan_memory(syms, hbm_capacity_bytes=100, ddr_capacity_bytes=1000)
        assert plan.spilled == ["a"]  # fewer uses -> smaller footprint
        assert plan.spill_traffic_bytes == 200

    def test_validate_catches_no_issue_on_good_plan(self):
        syms = [_sym(f"s{i}", 64, (i, i + 1)) for i in range(10)]
        plan = plan_memory(syms, hbm_capacity_bytes=10_000, ddr_capacity_bytes=0)
        plan.validate()  # should not raise

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(64, 2048),
                st.integers(0, 8),
                st.integers(0, 8),
                st.booleans(),
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(1024, 8192),
    )
    def test_plan_respects_hbm_capacity(self, raw, hbm_cap):
        syms = [
            _sym(f"s{i}", size, sorted({a, b}), weight=w)
            for i, (size, a, b, w) in enumerate(raw)
        ]
        try:
            plan = plan_memory(syms, hbm_capacity_bytes=hbm_cap,
                               ddr_capacity_bytes=10**9)
        except AllocationError:
            return  # legitimately impossible
        assert plan.extent(TierKind.HBM) <= hbm_cap
        plan.validate()
