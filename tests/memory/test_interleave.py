"""Tensor interleaving across PMUs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import PMUConfig
from repro.arch.pmu import PMU
from repro.memory.interleave import (
    InterleaveMode,
    InterleavePlan,
    InterleavedTensor,
    units_for_bandwidth,
    units_for_capacity,
)


def _pmus(n):
    return [PMU(PMUConfig(capacity_bytes=64 * 1024, num_banks=16)) for _ in range(n)]


class TestInterleavePlan:
    def test_block_ownership_is_contiguous(self):
        plan = InterleavePlan(num_words=100, num_units=4, mode=InterleaveMode.BLOCK)
        owners = [plan.owner_of(a) for a in range(100)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2, 3}

    def test_cyclic_ownership_stripes(self):
        plan = InterleavePlan(num_words=64, num_units=4,
                              mode=InterleaveMode.CYCLIC, stripe_words=4)
        assert plan.owner_of(0) == 0
        assert plan.owner_of(4) == 1
        assert plan.owner_of(16) == 0

    def test_cyclic_spreads_a_vector_across_units(self):
        plan = InterleavePlan(num_words=256, num_units=4,
                              mode=InterleaveMode.CYCLIC, stripe_words=4)
        # A 16-word contiguous vector touches all 4 units -> 4x bandwidth.
        assert plan.units_touched(range(16)) == 4

    def test_block_keeps_a_vector_on_one_unit(self):
        plan = InterleavePlan(num_words=256, num_units=4, mode=InterleaveMode.BLOCK)
        assert plan.units_touched(range(16)) == 1

    def test_out_of_range_rejected(self):
        plan = InterleavePlan(num_words=10, num_units=2, mode=InterleaveMode.BLOCK)
        with pytest.raises(ValueError):
            plan.owner_of(10)

    @settings(max_examples=40)
    @given(
        st.integers(1, 500),
        st.integers(1, 8),
        st.sampled_from(list(InterleaveMode)),
    )
    def test_local_addresses_fit_per_unit_budget(self, words, units, mode):
        plan = InterleavePlan(num_words=words, num_units=units, mode=mode)
        for address in range(words):
            assert 0 <= plan.local_address(address) < plan.words_per_unit


class TestInterleavedTensor:
    @pytest.mark.parametrize("mode", list(InterleaveMode))
    def test_round_trip(self, mode):
        plan = InterleavePlan(num_words=128, num_units=4, mode=mode,
                              stripe_words=8)
        tensor = InterleavedTensor(plan, _pmus(4))
        values = [float(i) for i in range(128)]
        tensor.write(range(128), values)
        out, _ = tensor.read(range(128))
        np.testing.assert_array_equal(out, np.array(values, dtype=np.float32))

    def test_strided_read_round_trips(self):
        plan = InterleavePlan(num_words=128, num_units=2,
                              mode=InterleaveMode.CYCLIC, stripe_words=4)
        tensor = InterleavedTensor(plan, _pmus(2))
        tensor.write(range(128), [float(i) for i in range(128)])
        out, _ = tensor.read(range(0, 128, 8))
        np.testing.assert_array_equal(out, np.arange(0, 128, 8, dtype=np.float32))

    def test_unit_count_mismatch_rejected(self):
        plan = InterleavePlan(num_words=64, num_units=4, mode=InterleaveMode.BLOCK)
        with pytest.raises(ValueError):
            InterleavedTensor(plan, _pmus(2))

    def test_over_capacity_rejected(self):
        plan = InterleavePlan(num_words=10**7, num_units=2,
                              mode=InterleaveMode.BLOCK)
        with pytest.raises(ValueError):
            InterleavedTensor(plan, _pmus(2))


class TestSizingHelpers:
    def test_capacity_partitioning(self):
        # Figure 4's S0-S3: a buffer 4x one PMU needs four PMUs.
        assert units_for_capacity(4 * 512 * 1024, 512 * 1024) == 4

    def test_bandwidth_partitioning(self):
        # Figure 4's I00/I01: twice the port bandwidth needs two PMUs.
        assert units_for_bandwidth(800e9, 409.6e9) == 2

    def test_minimum_is_one_unit(self):
        assert units_for_capacity(1, 512 * 1024) == 1
        assert units_for_bandwidth(0, 409.6e9) == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            units_for_capacity(-1, 10)
        with pytest.raises(ValueError):
            units_for_bandwidth(1.0, 0)
