"""DMA transfer engine."""

import pytest

from repro.arch.config import MemoryTierSpec
from repro.memory.tiers import MemorySystem, MemoryTier, TierKind
from repro.memory.transfer import TransferEngine


@pytest.fixture
def engine():
    system = MemorySystem(
        tiers={
            TierKind.HBM: MemoryTier(
                TierKind.HBM, MemoryTierSpec("HBM", 10**12, 1000.0, 0.0)
            ),
            TierKind.DDR: MemoryTier(
                TierKind.DDR, MemoryTierSpec("DDR", 10**13, 100.0, 0.0)
            ),
        }
    )
    return TransferEngine(system)


class TestTransferEngine:
    def test_fifo_transfers_accumulate_time(self, engine):
        t1 = engine.submit(TierKind.DDR, TierKind.HBM, 100)
        t2 = engine.submit(TierKind.DDR, TierKind.HBM, 100)
        assert t1 == pytest.approx(1.0)
        assert t2 == pytest.approx(2.0)

    def test_advance_to_moves_clock_forward_only(self, engine):
        engine.advance_to(5.0)
        engine.advance_to(1.0)
        assert engine.now_s == 5.0

    def test_totals_and_busy_time(self, engine):
        engine.submit(TierKind.DDR, TierKind.HBM, 100)
        engine.advance_to(10.0)
        engine.submit(TierKind.DDR, TierKind.HBM, 300)
        assert engine.total_bytes == 400
        assert engine.busy_time_s == pytest.approx(4.0)

    def test_negative_size_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.submit(TierKind.DDR, TierKind.HBM, -5)

    def test_reset_clears_state(self, engine):
        engine.submit(TierKind.DDR, TierKind.HBM, 100)
        engine.reset()
        assert engine.now_s == 0.0
        assert engine.trace == []
