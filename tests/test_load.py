"""Open-loop load generation: processes, determinism, record/replay."""

import json

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.load import (
    ARRIVAL_PROCESSES,
    TRACE_FORMAT,
    Arrival,
    ArrivalSpec,
    ArrivalTrace,
    generate_trace,
)


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(12)


class TestArrivalSpec:
    def test_defaults_are_valid(self):
        spec = ArrivalSpec()
        assert spec.process == "poisson"
        assert spec.rate_rps > 0

    @pytest.mark.parametrize("kwargs", [
        {"process": "flash-mob"},
        {"rate_rps": 0.0},
        {"duration_s": 0.0},
        {"zipf_alpha": -0.1},
        {"prompt_tokens": 0},
        {"output_tokens": 0},
        {"peak_ratio": 0.5},
        {"period_s": 0.0},
        {"burst_rate_ratio": 0.5},
        {"burst_len_s": 0.0},
        {"calm_len_s": 0.0},
        {"tenants": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalSpec(**kwargs)

    def test_unknown_process_lists_the_menu(self):
        with pytest.raises(ValueError) as err:
            ArrivalSpec(process="bogus")
        for name in ARRIVAL_PROCESSES:
            assert name in str(err.value)

    def test_dict_round_trip(self):
        spec = ArrivalSpec(process="bursty", rate_rps=12.5, duration_s=3.0,
                           seed=99, burst_rate_ratio=4.0)
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        # and through actual JSON
        assert ArrivalSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec


class TestGeneration:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_every_process_generates_a_sane_trace(self, library, process):
        spec = ArrivalSpec(process=process, rate_rps=100.0, duration_s=5.0,
                           seed=3)
        trace = generate_trace(spec, library)
        assert len(trace) > 0
        times = [a.time_s for a in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < spec.duration_s for t in times)
        names = {e.name for e in library.experts}
        assert all(a.expert in names for a in trace)

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_deterministic_under_seed(self, library, process):
        spec = ArrivalSpec(process=process, rate_rps=80.0, duration_s=4.0,
                           seed=17)
        assert generate_trace(spec, library) == generate_trace(spec, library)
        reseeded = ArrivalSpec(process=process, rate_rps=80.0,
                               duration_s=4.0, seed=18)
        assert generate_trace(reseeded, library) != generate_trace(
            spec, library
        )

    def test_mean_rate_is_comparable_across_processes(self, library):
        # Every process is normalized to the same long-run mean rate.
        counts = {}
        for process in ("poisson", "diurnal", "bursty"):
            spec = ArrivalSpec(process=process, rate_rps=200.0,
                               duration_s=60.0, period_s=10.0, seed=5)
            counts[process] = len(generate_trace(spec, library))
        expected = 200.0 * 60.0
        for process, n in counts.items():
            # The MMPP's arrival count has few effective samples (a
            # handful of burst windows dominate it), so its band is wide.
            rel = 0.4 if process == "bursty" else 0.1
            assert n == pytest.approx(expected, rel=rel), process

    def test_zipf_skew_concentrates_on_hot_experts(self, library):
        spec = ArrivalSpec(rate_rps=500.0, duration_s=10.0, zipf_alpha=1.5,
                           seed=2)
        trace = generate_trace(spec, library)
        from collections import Counter

        top = Counter(a.expert for a in trace).most_common(1)[0][1]
        assert top > len(trace) / 4  # far above the uniform 1/12 share

    def test_tenants_get_distinct_hot_sets(self, library):
        from collections import Counter

        spec = ArrivalSpec(process="tenants", tenants=3, rate_rps=600.0,
                           duration_s=10.0, zipf_alpha=1.5, seed=8)
        trace = generate_trace(spec, library)
        assert {a.tenant for a in trace} == {0, 1, 2}
        hottest = {
            tenant: Counter(
                a.expert for a in trace if a.tenant == tenant
            ).most_common(1)[0][0]
            for tenant in range(3)
        }
        # Independent permutations: 3 tenants sharing one hot expert has
        # probability 1/144 per seed; this seed separates them.
        assert len(set(hottest.values())) > 1

    def test_empty_library_rejected(self):
        from repro.coe.expert import ExpertLibrary

        with pytest.raises(ValueError, match="empty library"):
            generate_trace(ArrivalSpec(), ExpertLibrary(experts=[]))


class TestRecordReplay:
    def test_save_load_round_trip(self, library, tmp_path):
        spec = ArrivalSpec(process="diurnal", rate_rps=50.0, duration_s=3.0,
                           seed=21)
        trace = generate_trace(spec, library)
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = ArrivalTrace.load(str(path))
        assert loaded == trace
        assert loaded.spec == spec

    def test_format_tag_is_checked(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other/9", "arrivals": []}))
        with pytest.raises(ValueError, match=TRACE_FORMAT):
            ArrivalTrace.load(str(path))

    def test_to_requests_binds_names_and_keeps_order(self, library):
        trace = generate_trace(
            ArrivalSpec(rate_rps=60.0, duration_s=2.0, seed=4), library
        )
        requests = trace.to_requests(library)
        assert len(requests) == len(trace)
        assert [r.request_id for r in requests] == list(range(len(trace)))
        assert all(r.priority == 0 for r in requests)
        for req, arrival in zip(requests, trace):
            assert req.expert.name == arrival.expert
            assert req.arrival_s == arrival.time_s

    def test_trace_properties(self):
        trace = ArrivalTrace(arrivals=(
            Arrival(0.1, "b", 10, 5),
            Arrival(0.2, "a", 10, 5),
            Arrival(0.4, "b", 10, 5),
        ))
        assert len(trace) == 3
        assert trace.duration_s == 0.4
        assert trace.expert_names == ("b", "a")
