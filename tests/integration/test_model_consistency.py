"""Cross-model validation: independent timing paths must agree.

The library estimates SN40L decode time through two independent paths:

1. the **compiler path** — build the operator graph, fuse, cost each
   kernel against the execution target (`compile_model` + `Session.run`),
2. the **platform path** — the closed-form roofline model used by the CoE
   serving stack (`Platform.decode_token_time`).

They share only the calibration constants, so agreement is a genuine
consistency check on the whole modelling stack. Same for the pipeline
analyzer vs the discrete-event simulator, and the orchestrator replay vs
the cost model (tests/core/test_session.py).
"""

import pytest

from repro import Orchestration, Session, compile_model
from repro.models.catalog import FALCON_40B, LLAMA2_7B, LLAMA2_70B
from repro.models.transformer import decode_graph, prefill_graph
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def session():
    return Session(sockets=8)


@pytest.fixture(scope="module")
def platform():
    return sn40l_platform()


class TestDecodePathsAgree:
    @pytest.mark.parametrize("cfg", [LLAMA2_7B, LLAMA2_70B, FALCON_40B],
                             ids=lambda c: c.name)
    def test_compiler_and_platform_decode_agree(self, cfg, session, platform):
        context = 1024
        graph = decode_graph(cfg, batch=1, context=context, tp=8)
        model = compile_model(graph, sockets=8, policy="streaming")
        compiled = session.run(model, Orchestration.HARDWARE).total_s
        analytic = platform.decode_token_time(cfg, batch=1, context=context)
        # Two independent code paths, one calibration: within 30%.
        assert compiled == pytest.approx(analytic, rel=0.30)


class TestPrefillPathsAgree:
    def test_compiler_and_platform_prefill_agree(self, session, platform):
        """The compiler path resolves per-layer ring-all-reduce bandwidth,
        which the platform closed form approximates with a latency term
        only, so prefill agreement is looser than decode (the compiled
        path is comm-bound at TP8 for mid-size prompts). Decode — the
        phase the CoE evaluation depends on — agrees within 30%."""
        seq = 2048
        graph = prefill_graph(LLAMA2_7B, batch=1, seq=seq, tp=8)
        model = compile_model(graph, sockets=8, policy="streaming")
        compiled = session.run(model, Orchestration.HARDWARE).total_s
        analytic = platform.prefill_time(LLAMA2_7B, batch=1, seq=seq)
        assert compiled == pytest.approx(analytic, rel=0.7)
        assert compiled > analytic  # the closed form is the optimistic one


class TestScalingLaws:
    """Both paths must scale the same way with model size."""

    def test_decode_scales_with_weight_bytes(self, session, platform):
        small = platform.decode_token_time(LLAMA2_7B, 1, 512)
        big = platform.decode_token_time(LLAMA2_70B, 1, 512)
        byte_ratio = LLAMA2_70B.weight_bytes / LLAMA2_7B.weight_bytes
        assert big / small == pytest.approx(byte_ratio, rel=0.35)

    def test_compiled_decode_scales_with_weight_bytes(self, session):
        times = {}
        for cfg in (LLAMA2_7B, LLAMA2_70B):
            graph = decode_graph(cfg, batch=1, context=512, tp=8)
            model = compile_model(graph, sockets=8, policy="streaming")
            times[cfg.name] = session.run(model).total_s
        ratio = times["llama2-70b"] / times["llama2-7b"]
        byte_ratio = LLAMA2_70B.weight_bytes / LLAMA2_7B.weight_bytes
        assert ratio == pytest.approx(byte_ratio, rel=0.35)
