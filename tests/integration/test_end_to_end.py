"""Cross-module integration scenarios: the paper's workflows end to end."""

import numpy as np
import pytest

from repro import Orchestration, Session, compile_model
from repro.coe import ExpertServer, Router, build_samba_coe_library
from repro.core.executor import execute_graph, execute_plan, random_inputs
from repro.dataflow import fusion
from repro.dataflow.bandwidth import Channel, analyze_kernel_bandwidth
from repro.models import LLAMA2_7B, decode_graph, prefill_graph
from repro.models.quantize import quantize
from repro.systems.platforms import dgx_a100_platform, sn40l_platform


class TestCompileExecuteTimeline:
    """compile -> place -> time -> bandwidth-check one workload."""

    @pytest.fixture(scope="class")
    def decode(self):
        return decode_graph(LLAMA2_7B, batch=1, context=2048, tp=8)

    def test_full_pipeline(self, decode):
        model = compile_model(decode, sockets=8, policy="streaming")
        result = Session(sockets=8).run(model, Orchestration.HARDWARE)
        # The compiled decode step is weight-bound near 85% of HBM BW.
        floor = LLAMA2_7B.weight_bytes / (8 * 2e12)
        assert floor < result.total_s < 3 * floor
        # And a per-layer fused kernel is statically bandwidth-feasible
        # at the achieved rate.
        layer_plan = fusion.group_by_prefix(decode)
        layer = next(
            k for k in layer_plan.kernels if k.ops[0].name.startswith("l0.")
        )
        per_layer_duration = result.total_s / LLAMA2_7B.layers
        report = analyze_kernel_bandwidth(layer, per_layer_duration, sockets=8)
        assert not report.budgets[Channel.HBM].oversubscribed

    def test_memory_plan_feeds_session(self, decode):
        model = compile_model(decode, sockets=8)
        assert model.hbm_bytes >= LLAMA2_7B.weight_bytes
        assert not model.memory.spilled
        # Weights claim HBM residency across the whole schedule.
        weight_placements = [
            p for p in model.memory.placements.values() if p.symbol.is_weight
        ]
        assert all(
            p.symbol.live_range == (0, model.num_kernels)
            for p in weight_placements
        )


class TestServeWhatYouCompile:
    """The CoE stack serves the same model the compiler sizes."""

    def test_expert_bytes_consistent_across_stacks(self):
        library = build_samba_coe_library(10)
        graph = decode_graph(LLAMA2_7B, batch=1, context=128, tp=8)
        model = compile_model(graph, sockets=8)
        expert = library.experts[0]
        # Compiler HBM extent ~ expert weight bytes (+KV/activations).
        assert model.hbm_bytes == pytest.approx(expert.weight_bytes, rel=0.1)

    def test_router_to_serving_round_trip(self):
        library = build_samba_coe_library(40)
        server = ExpertServer(sn40l_platform(), library)
        result = server.serve_prompts(
            ["debug this python function", "solve this equation: 2x + 4 = 10"],
            output_tokens=5,
        )
        domains = {req.expert.split("-")[-1] for req in result.requests}
        assert domains == {"code", "math"}

    def test_quantized_coe_hosts_twice_the_experts(self):
        dense = build_samba_coe_library(100)
        int8 = build_samba_coe_library(100, base_model=quantize(LLAMA2_7B))
        platform = sn40l_platform()
        dense_slots = platform.hbm_expert_slots(dense.experts[0].weight_bytes)
        int8_slots = platform.hbm_expert_slots(int8.experts[0].weight_bytes)
        assert int8_slots >= 2 * dense_slots
        # And switching an INT8 expert is twice as fast.
        assert platform.switch_time(int8.experts[0].weight_bytes) < (
            0.6 * platform.switch_time(dense.experts[0].weight_bytes)
        )


class TestFunctionalMeetsTiming:
    """The same fusion plan is both executed and timed."""

    def test_fused_plan_times_and_computes(self):
        from repro.models.fftconv import monarch_fft_graph

        graph = monarch_fft_graph(m=32)
        plan = fusion.streaming_fusion(graph)
        # Functional result matches the unfused reference...
        inputs = random_inputs(graph)
        fused_out = execute_plan(plan, inputs)
        reference = execute_graph(graph, inputs)
        np.testing.assert_allclose(fused_out["out"], reference["out"],
                                   rtol=1e-4, atol=1e-4)
        # ...while the same plan gets a finite, positive time estimate.
        from repro.arch.config import SocketConfig
        from repro.perf.kernel_cost import ExecutionTarget, cost_plan

        target = ExecutionTarget.from_socket(SocketConfig())
        cost = cost_plan(plan, target, Orchestration.HARDWARE)
        assert 0 < cost.total_s < 1.0


class TestCrossPlatformConsistency:
    """Both platform paths use the same model descriptors."""

    def test_same_model_same_bytes_everywhere(self):
        graph = prefill_graph(LLAMA2_7B, batch=1, seq=128, tp=8)
        assert graph.weight_bytes == pytest.approx(LLAMA2_7B.weight_bytes, rel=0.01)
        for platform in (sn40l_platform(), dgx_a100_platform()):
            # Platform decode reads exactly the model's weight bytes.
            t = platform.decode_token_time(LLAMA2_7B, 1, 0)
            floor = LLAMA2_7B.weight_bytes / platform.hbm_bandwidth
            assert t > floor


class TestDynamicLinkingWithTranslation:
    """The Section V-B runtime flow at address granularity: expert
    activation maps VA segments onto free physical pages; eviction
    returns them; a reloaded expert lands at new physical addresses
    without any change to its (virtual) compiled binary."""

    def test_expert_lifecycle_through_the_translation_unit(self):
        from repro.memory.tiers import TierKind
        from repro.memory.translation import PageAllocator, TranslationUnit

        PAGE = 2 * 1024 * 1024
        unit = TranslationUnit(page_bytes=PAGE)
        hbm_pages = PageAllocator(TierKind.HBM, num_pages=2048)

        expert_bytes = 1024 * PAGE  # 2 GiB expert segment
        va_a, va_b = 0, expert_bytes

        unit.map_segment(va_a, expert_bytes, hbm_pages)
        unit.map_segment(va_b, expert_bytes, hbm_pages)
        assert hbm_pages.free_pages == 0
        _, pa_before = unit.translate(va_a)

        # Evict expert A, load expert C at A's virtual base: same compiled
        # VA, different physical pages (B still resident).
        unit.unmap_segment(va_a, expert_bytes, hbm_pages)
        unit.map_segment(va_a, expert_bytes, hbm_pages)
        tier, pa_after = unit.translate(va_a)
        assert tier is TierKind.HBM
        assert unit.mapped_pages == 2048
        # B's translation never moved while A was swapped.
        _, pa_b = unit.translate(va_b)
        assert pa_b // PAGE in range(2048)
