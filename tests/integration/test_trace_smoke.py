"""End-to-end trace smoke test: CLI -> Chrome trace file -> schema check.

The same validation the CI trace-smoke step performs: generate a
timeline through the real CLI (both the compiled-plan path and the
serve-bench path) and verify the file is a well-formed Chrome trace a
Perfetto UI would accept.
"""

import json

import pytest

from repro.cli import main

_REQUIRED_X_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}


def _validate_chrome_trace(path):
    data = json.loads(path.read_text())
    assert set(data) >= {"traceEvents", "displayTimeUnit"}
    events = data["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in {"X", "M"}
        if event["ph"] == "X":
            assert _REQUIRED_X_KEYS <= set(event)
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert isinstance(event["tid"], int)
    return events


class TestPlanTraceSmoke:
    def test_plan_trace_and_summary(self, tmp_path, capsys):
        trace = tmp_path / "plan.json"
        summary = tmp_path / "plan-summary.json"
        rc = main(["trace", "llama2-7b", "decode", "--seq", "256",
                   "-o", str(trace), "--summary", str(summary)])
        assert rc == 0
        events = _validate_chrome_trace(trace)
        cats = {e["cat"] for e in events if e["ph"] == "X"}
        assert "kernel" in cats

        rollup = json.loads(summary.read_text())
        assert rollup["num_spans"] == sum(e["ph"] == "X" for e in events)
        assert "kernel" in rollup["lanes"]


class TestServeTraceSmoke:
    def test_serve_trace_hides_switches_behind_compute(self, tmp_path, capsys):
        trace = tmp_path / "serve.json"
        summary = tmp_path / "serve-summary.json"
        rc = main(["trace", "--serve", "--experts", "24", "--requests", "32",
                   "--policy", "overlap", "--seed", "7",
                   "-o", str(trace), "--summary", str(summary)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hidden" in out

        events = _validate_chrome_trace(trace)
        xs = [e for e in events if e["ph"] == "X"]
        switches = [e for e in xs if e["cat"] == "switch"]
        computes = [e for e in xs if e["cat"] in ("prefill", "decode")]
        assert switches and computes

        # The acceptance bar: at least one expert-switch span demonstrably
        # overlaps an execution span in the exported file itself.
        def intersect(a, b):
            lo = max(a["ts"], b["ts"])
            hi = min(a["ts"] + a["dur"], b["ts"] + b["dur"])
            return hi - lo

        assert any(intersect(s, c) > 0 for s in switches for c in computes)

        rollup = json.loads(summary.read_text())
        assert {"compute", "switch"} <= set(rollup["lanes"])

    def test_serve_trace_fifo_is_serial(self, tmp_path, capsys):
        trace = tmp_path / "fifo.json"
        rc = main(["trace", "--serve", "--experts", "12", "--requests", "16",
                   "--policy", "fifo", "--seed", "7", "-o", str(trace)])
        assert rc == 0
        _validate_chrome_trace(trace)

    def test_trace_without_model_or_serve_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "required" in capsys.readouterr().err.lower()


class TestClusterTraceSmoke:
    def test_cluster_trace_shows_cross_node_overlap(self, tmp_path, capsys):
        trace = tmp_path / "cluster.json"
        summary = tmp_path / "cluster-summary.json"
        rc = main(["trace", "--cluster", "--num-nodes", "4",
                   "--experts", "32", "--requests", "96", "--seed", "1234",
                   "-o", str(trace), "--summary", str(summary)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 nodes" in out

        events = _validate_chrome_trace(trace)
        # Per-node lanes are pinned as thread names in the metadata.
        lane_tids = {e["args"]["name"]: e["tid"] for e in events
                     if e["ph"] == "M" and e.get("name") == "thread_name"}
        for idx in range(4):
            assert f"node{idx}/compute" in lane_tids
            assert f"node{idx}/switch" in lane_tids

        # Cross-node overlap must be visible in the exported file itself:
        # compute spans of two different nodes intersect in time.
        def compute_of(node):
            tid = lane_tids[f"{node}/compute"]
            return [e for e in events if e["ph"] == "X" and e["tid"] == tid]

        def intersect(a, b):
            lo = max(a["ts"], b["ts"])
            hi = min(a["ts"] + a["dur"], b["ts"] + b["dur"])
            return hi - lo

        n0, n1 = compute_of("node0"), compute_of("node1")
        assert n0 and n1
        assert any(intersect(a, b) > 0 for a in n0 for b in n1)

        rollup = json.loads(summary.read_text())
        assert {"node0/compute", "node1/compute"} <= set(rollup["lanes"])
