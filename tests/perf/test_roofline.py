"""Roofline model."""

import pytest

from repro.perf.roofline import Roofline

A100 = Roofline("A100", peak_flops=312e12, mem_bandwidth=2.039e12)


class TestRoofline:
    def test_ridge_point_is_about_150_for_a100(self):
        # The paper's example: ~300/2 = 150 FLOPs/byte.
        assert A100.ridge_point == pytest.approx(153, rel=0.01)

    def test_attainable_clips_at_peak(self):
        assert A100.attainable_flops(10_000) == A100.peak_flops

    def test_attainable_scales_below_ridge(self):
        assert A100.attainable_flops(10) == pytest.approx(10 * 2.039e12)

    def test_memory_bound_classification(self):
        assert A100.is_memory_bound(100)
        assert not A100.is_memory_bound(200)

    def test_pipelined_time_is_max(self):
        # 1 second of compute, 2 seconds of memory -> overlapped = 2 s.
        t = A100.time(flops=312e12, traffic_bytes=2 * 2.039e12)
        assert t == pytest.approx(2.0)

    def test_serial_time_is_sum(self):
        t = A100.serial_time(flops=312e12, traffic_bytes=2.039e12)
        assert t == pytest.approx(2.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            A100.time(-1, 0)
        with pytest.raises(ValueError):
            A100.attainable_flops(-1)

    def test_degenerate_machine_rejected(self):
        with pytest.raises(ValueError):
            Roofline("bad", peak_flops=0, mem_bandwidth=1)


class TestBatchEntryPoints:
    def test_batch_matches_scalar_exactly(self):
        import numpy as np

        from repro.perf.roofline import Roofline

        roof = Roofline(name="t", peak_flops=1e12, mem_bandwidth=1e11)
        flops = np.array([0.0, 1e9, 3e12, 7.5e13])
        traffic = np.array([0.0, 5e8, 1e10, 2e12])
        for i in range(len(flops)):
            f, t = float(flops[i]), float(traffic[i])
            assert roof.compute_time_batch(flops)[i] == roof.compute_time(f)
            assert roof.memory_time_batch(traffic)[i] == roof.memory_time(t)
            assert roof.time_batch(flops, traffic)[i] == roof.time(f, t)
            assert (roof.serial_time_batch(flops, traffic)[i]
                    == roof.serial_time(f, t))

    def test_negative_batches_rejected(self):
        import pytest

        from repro.perf.roofline import Roofline

        roof = Roofline(name="t", peak_flops=1e12, mem_bandwidth=1e11)
        with pytest.raises(ValueError):
            roof.compute_time_batch([-1.0])
        with pytest.raises(ValueError):
            roof.memory_time_batch([-1.0])
