"""Calibration pins: the observable behaviours the paper reports.

These tests lock the calibration constants to the paper's reported
system-level behaviour; if a constant changes and breaks a paper-anchored
property, the failure names the behaviour that regressed.
"""

import pytest

from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import decode_graph, prefill_graph
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan


@pytest.fixture(scope="module")
def target():
    return ExecutionTarget.from_socket(SocketConfig(), sockets=8)


class TestSwitchBandwidthRatios:
    """Paper: model switching is 31x faster than DGX A100 (32 GB/s) and
    ~16x faster than DGX H100 (64 GB/s)."""

    def test_vs_a100(self):
        cal = DEFAULT_CALIBRATION
        ratio = cal.node_ddr_to_hbm_bandwidth / cal.dgx_a100_host_to_hbm
        assert 28 <= ratio <= 34

    def test_vs_h100(self):
        cal = DEFAULT_CALIBRATION
        ratio = cal.node_ddr_to_hbm_bandwidth / cal.dgx_h100_host_to_hbm
        assert 14 <= ratio <= 17


class TestDecodeSaturation:
    """Paper Section VI-B: the fused decoder saturates ~85% of HBM BW."""

    def test_fused_hbm_efficiency(self):
        assert DEFAULT_CALIBRATION.fused_hbm_efficiency == pytest.approx(0.85)

    def test_decode_token_time_is_weight_bound(self, target):
        g = decode_graph(LLAMA2_7B, batch=1, context=1024, tp=8)
        plan = fusion.group_by_prefix(g)
        cost = cost_plan(plan, target, Orchestration.HARDWARE)
        weight_floor = LLAMA2_7B.weight_bytes / (target.hbm_bandwidth * 0.85)
        assert cost.total_s == pytest.approx(weight_floor, rel=0.25)


class TestOrchestrationSpeedupBands:
    """Paper Figure 10: HO gives 1.4x-8x on decode, <=1.1x on prefill."""

    def _ho_speedup(self, graph, target):
        plan = fusion.group_by_prefix(graph)
        so = cost_plan(plan, target, Orchestration.SOFTWARE)
        ho = cost_plan(plan, target, Orchestration.HARDWARE)
        return so.total_s / ho.total_s

    def test_decode_gains_materially(self, target):
        s = self._ho_speedup(decode_graph(LLAMA2_7B, 1, 4096, tp=8), target)
        assert 1.4 <= s <= 8.0

    def test_prefill_gains_at_most_10_percent(self, target):
        s = self._ho_speedup(prefill_graph(LLAMA2_7B, 1, 4096, tp=8), target)
        assert 1.0 <= s <= 1.1


class TestFusionSpeedupBands:
    """Paper Figure 10: prefill fusion speedups land in 1.5x-3x.

    Our unfused baseline materialises full attention scores (eager
    PyTorch granularity), which pushes the llama2-7b prefill ratio to the
    top of the paper's band; the pin allows up to 4x."""

    def test_prefill_fusion_band(self, target):
        g = prefill_graph(LLAMA2_7B, 1, 4096, tp=8)
        unf = cost_plan(fusion.unfused(g), target, Orchestration.SOFTWARE)
        fus = cost_plan(fusion.group_by_prefix(g), target, Orchestration.SOFTWARE)
        assert 1.5 <= unf.total_s / fus.total_s <= 4.0

    def test_decode_fusion_band(self, target):
        g = decode_graph(LLAMA2_7B, 1, 4096, tp=8)
        unf = cost_plan(fusion.unfused(g), target, Orchestration.SOFTWARE)
        fus = cost_plan(fusion.group_by_prefix(g), target, Orchestration.SOFTWARE)
        assert 1.0 <= unf.total_s / fus.total_s <= 13.0
