"""Chrome-trace export."""

import json

import pytest

from repro.arch.config import SocketConfig
from repro.coe.engine import ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import ExpertServer
from repro.dataflow import fusion
from repro.models.fftconv import monarch_fft_graph
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan
from repro.perf.trace import (
    plan_cost_trace,
    serve_result_trace,
    total_duration_s,
    write_trace,
)
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def cost():
    graph = monarch_fft_graph(m=256)
    target = ExecutionTarget.from_socket(SocketConfig())
    return cost_plan(fusion.unfused(graph), target, Orchestration.SOFTWARE)


class TestPlanTrace:
    def test_one_exec_event_per_kernel(self, cost):
        events = plan_cost_trace(cost)
        execs = [e for e in events if e["cat"] == "kernel"]
        assert len(execs) == cost.num_launches

    def test_launch_events_present_under_software(self, cost):
        events = plan_cost_trace(cost)
        assert any(e["cat"] == "orchestration" for e in events)

    def test_events_do_not_overlap_within_a_lane(self, cost):
        events = sorted(plan_cost_trace(cost), key=lambda e: e["ts"])
        end_by_tid = {}
        for event in events:
            tid = event["tid"]
            assert event["ts"] >= end_by_tid.get(tid, 0.0) - 1e-9
            end_by_tid[tid] = event["ts"] + event["dur"]

    def test_total_duration_matches_cost(self, cost):
        events = plan_cost_trace(cost)
        assert total_duration_s(events) == pytest.approx(cost.total_s, rel=1e-6)


class TestServeTrace:
    def test_phases_appear_in_lanes(self):
        library = build_samba_coe_library(10)
        server = ExpertServer(sn40l_platform(), library)
        result = server.serve_experts(library.experts[:2], output_tokens=5)
        events = serve_result_trace(result)
        categories = {e["cat"] for e in events}
        assert {"router", "switch", "prefill", "decode"} <= categories
        assert total_duration_s(events) == pytest.approx(result.total_s, rel=1e-6)


class TestWriteTrace:
    def test_file_is_valid_chrome_trace(self, cost, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(plan_cost_trace(cost), str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert all(e["ph"] == "X" for e in data["traceEvents"])

    def test_empty_trace_duration(self):
        assert total_duration_s([]) == 0.0


class TestEngineReportTrace:
    """Serving traces reflect real (overlapping) simulated time.

    Regression for the old export, which laid every phase end-to-end and
    could not show an expert switch hidden behind the previous group's
    decode.
    """

    @pytest.fixture(scope="class")
    def report(self):
        library = build_samba_coe_library(30)
        stream = zipf_request_stream(library, 48, alpha=1.1, seed=7)
        engine = ServingEngine(sn40l_platform(), library, policy="overlap")
        return engine.run(stream)

    def test_switch_overlaps_previous_groups_decode(self, report):
        events = serve_result_trace(report)
        decodes = [e for e in events if e["cat"] == "decode"]
        switches = [e for e in events if e["cat"] == "switch"]
        assert decodes and switches

        def intersect(a, b):
            lo = max(a["ts"], b["ts"])
            hi = min(a["ts"] + a["dur"], b["ts"] + b["dur"])
            return hi - lo

        assert any(
            intersect(s, d) > 0 for s in switches for d in decodes
        ), "no switch event overlaps a decode event"

    def test_timestamps_are_sim_times(self, report):
        events = serve_result_trace(report)
        last_end = max(e["ts"] + e["dur"] for e in events)
        assert last_end / 1e6 == pytest.approx(report.makespan_s, rel=1e-9)

    def test_lanes_match_engine_timeline(self, report):
        events = serve_result_trace(report)
        tids = {e["tid"] for e in events}
        assert tids == set(range(len(report.timeline.lanes)))
