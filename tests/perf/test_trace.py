"""Chrome-trace export."""

import json

import pytest

from repro.arch.config import SocketConfig
from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import CoEServer
from repro.dataflow import fusion
from repro.models.fftconv import monarch_fft_graph
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan
from repro.perf.trace import (
    plan_cost_trace,
    serve_result_trace,
    total_duration_s,
    write_trace,
)
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def cost():
    graph = monarch_fft_graph(m=256)
    target = ExecutionTarget.from_socket(SocketConfig())
    return cost_plan(fusion.unfused(graph), target, Orchestration.SOFTWARE)


class TestPlanTrace:
    def test_one_exec_event_per_kernel(self, cost):
        events = plan_cost_trace(cost)
        execs = [e for e in events if e["cat"] == "kernel"]
        assert len(execs) == cost.num_launches

    def test_launch_events_present_under_software(self, cost):
        events = plan_cost_trace(cost)
        assert any(e["cat"] == "orchestration" for e in events)

    def test_events_do_not_overlap_within_a_lane(self, cost):
        events = sorted(plan_cost_trace(cost), key=lambda e: e["ts"])
        end_by_tid = {}
        for event in events:
            tid = event["tid"]
            assert event["ts"] >= end_by_tid.get(tid, 0.0) - 1e-9
            end_by_tid[tid] = event["ts"] + event["dur"]

    def test_total_duration_matches_cost(self, cost):
        events = plan_cost_trace(cost)
        assert total_duration_s(events) == pytest.approx(cost.total_s, rel=1e-6)


class TestServeTrace:
    def test_phases_appear_in_lanes(self):
        library = build_samba_coe_library(10)
        server = CoEServer(sn40l_platform(), library)
        result = server.serve_experts(library.experts[:2], output_tokens=5)
        events = serve_result_trace(result)
        categories = {e["cat"] for e in events}
        assert {"router", "switch", "prefill", "decode"} <= categories
        assert total_duration_s(events) == pytest.approx(result.total_s, rel=1e-6)


class TestWriteTrace:
    def test_file_is_valid_chrome_trace(self, cost, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(plan_cost_trace(cost), str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert all(e["ph"] == "X" for e in data["traceEvents"])

    def test_empty_trace_duration(self):
        assert total_duration_s([]) == 0.0
