"""Kernel and plan cost model."""

import pytest

from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.models.fftconv import monarch_fft_graph
from repro.perf.kernel_cost import (
    ExecutionTarget,
    Orchestration,
    cost_kernel,
    cost_plan,
    speedup,
)


@pytest.fixture
def target():
    return ExecutionTarget.from_socket(SocketConfig(), sockets=1)


@pytest.fixture
def monarch():
    return monarch_fft_graph(m=512)


class TestKernelCost:
    def test_pipelined_is_max_of_phases(self, target, monarch):
        kernel = fusion.streaming_fusion(monarch).kernels[0]
        cost = cost_kernel(kernel, target, pipelined=True,
                           orchestration=Orchestration.HARDWARE)
        assert cost.exec_s == pytest.approx(
            max(cost.compute_s, cost.memory_s, cost.comm_s)
        )

    def test_unpipelined_is_sum_of_phases(self, target, monarch):
        kernel = fusion.unfused(monarch).kernels[0]
        cost = cost_kernel(kernel, target, pipelined=False,
                           orchestration=Orchestration.HARDWARE)
        assert cost.exec_s == pytest.approx(
            cost.compute_s + cost.memory_s + cost.comm_s
        )

    def test_software_launch_scales_with_args(self, target, monarch):
        kernels = fusion.unfused(monarch).kernels
        few_args = kernels[2]   # transpose: 1 in + 1 out
        many_args = kernels[0]  # gemm0: 2 in + 1 out
        c_few = cost_kernel(few_args, target, False, Orchestration.SOFTWARE)
        c_many = cost_kernel(many_args, target, False, Orchestration.SOFTWARE)
        assert c_many.launch_s > c_few.launch_s

    def test_hardware_launch_is_constant(self, target, monarch):
        for kernel in fusion.unfused(monarch).kernels:
            cost = cost_kernel(kernel, target, False, Orchestration.HARDWARE)
            assert cost.launch_s == target.calibration.hw_launch_s


class TestPlanCost:
    def test_fusion_beats_unfused(self, target, monarch):
        unf = cost_plan(fusion.unfused(monarch), target, Orchestration.SOFTWARE)
        fus = cost_plan(fusion.streaming_fusion(monarch), target,
                        Orchestration.SOFTWARE)
        assert speedup(unf, fus) > 1.0

    def test_hardware_orchestration_beats_software(self, target, monarch):
        plan = fusion.streaming_fusion(monarch)
        so = cost_plan(plan, target, Orchestration.SOFTWARE)
        ho = cost_plan(plan, target, Orchestration.HARDWARE)
        assert ho.total_s < so.total_s
        assert ho.exec_s == pytest.approx(so.exec_s)  # only launches differ

    def test_totals_decompose(self, target, monarch):
        cost = cost_plan(fusion.unfused(monarch), target)
        assert cost.total_s == pytest.approx(cost.exec_s + cost.launch_s)
        assert cost.num_launches == 4


class TestExecutionTarget:
    def test_sockets_aggregate_peaks(self):
        one = ExecutionTarget.from_socket(SocketConfig(), sockets=1)
        eight = ExecutionTarget.from_socket(SocketConfig(), sockets=8)
        assert eight.peak_flops == pytest.approx(8 * one.peak_flops)
        assert eight.hbm_bandwidth == pytest.approx(8 * one.hbm_bandwidth)

    def test_invalid_socket_count_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTarget.from_socket(SocketConfig(), sockets=0)


class TestReporting:
    def test_plan_cost_summary(self, target, monarch):
        cost = cost_plan(fusion.unfused(monarch), target,
                         Orchestration.SOFTWARE)
        text = cost.summary()
        assert "unfused/software" in text
        assert "launches" in text

    def test_speedup_rejects_degenerate_plans(self, target, monarch):
        import dataclasses

        cost = cost_plan(fusion.unfused(monarch), target)
        empty = dataclasses.replace(cost, kernels=[])
        with pytest.raises(ValueError):
            speedup(cost, empty)


class TestBatchedKernelCosts:
    def test_batch_matches_scalar_loop_exactly(self, target, monarch):
        from repro.perf.kernel_cost import cost_kernels_batch

        for policy in (fusion.streaming_fusion, fusion.unfused):
            plan = policy(monarch)
            pipelined = [plan.policy != "unfused" and k.num_ops > 1
                         for k in plan.kernels]
            batched = cost_kernels_batch(
                plan.kernels, target, pipelined, Orchestration.SOFTWARE
            )
            for kernel, flag, got in zip(plan.kernels, pipelined, batched):
                assert got == cost_kernel(
                    kernel, target, flag, Orchestration.SOFTWARE
                )

    def test_empty_batch(self, target):
        from repro.perf.kernel_cost import cost_kernels_batch

        assert cost_kernels_batch([], target, [], Orchestration.HARDWARE) == []

    def test_mismatched_flags_rejected(self, target, monarch):
        from repro.perf.kernel_cost import cost_kernels_batch

        kernels = fusion.unfused(monarch).kernels
        with pytest.raises(ValueError):
            cost_kernels_batch(kernels, target, [True], Orchestration.HARDWARE)
