"""Timeline invariants and queries."""

import pytest

from repro.obs import Span, Timeline


class TestSpan:
    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Span("x", "lane", "cat", start_s=2.0, end_s=1.0)

    def test_zero_duration_allowed(self):
        span = Span("x", "lane", "cat", start_s=1.0, end_s=1.0)
        assert span.duration_s == 0.0

    def test_overlap_between_spans(self):
        a = Span("a", "l", "c", 0.0, 2.0)
        b = Span("b", "m", "c", 1.0, 3.0)
        c = Span("c", "m", "c", 5.0, 6.0)
        assert a.overlap_s(b) == 1.0
        assert a.overlap_s(c) == 0.0


class TestLaneInvariants:
    def test_overlap_within_a_lane_rejected(self):
        timeline = Timeline()
        timeline.record("a", "dma", "copy", 0.0, 2.0)
        with pytest.raises(ValueError):
            timeline.record("b", "dma", "copy", 1.0, 3.0)

    def test_containment_within_a_lane_rejected(self):
        timeline = Timeline()
        timeline.record("a", "dma", "copy", 0.0, 10.0)
        with pytest.raises(ValueError):
            timeline.record("b", "dma", "copy", 2.0, 3.0)

    def test_touching_spans_allowed(self):
        timeline = Timeline()
        timeline.record("a", "dma", "copy", 0.0, 2.0)
        timeline.record("b", "dma", "copy", 2.0, 3.0)
        assert [s.name for s in timeline.spans("dma")] == ["a", "b"]

    def test_out_of_order_recording_sorted(self):
        timeline = Timeline()
        timeline.record("late", "l", "c", 5.0, 6.0)
        timeline.record("early", "l", "c", 0.0, 1.0)
        assert [s.name for s in timeline.spans("l")] == ["early", "late"]

    def test_different_lanes_may_overlap(self):
        timeline = Timeline()
        timeline.record("a", "compute", "decode", 0.0, 5.0)
        timeline.record("b", "switch", "switch", 1.0, 2.0)
        assert len(timeline) == 2

    def test_tolerance_absorbs_float_slop(self):
        timeline = Timeline(tolerance_s=1e-9)
        timeline.record("a", "l", "c", 0.0, 1.0)
        timeline.record("b", "l", "c", 1.0 - 1e-10, 2.0)
        assert len(timeline) == 2


class TestQueries:
    @pytest.fixture()
    def timeline(self):
        t = Timeline()
        t.record("exec0", "compute", "decode", 0.0, 4.0)
        t.record("exec1", "compute", "decode", 5.0, 8.0)
        t.record("copy0", "switch", "switch", 1.0, 3.0)   # fully hidden
        t.record("copy1", "switch", "switch", 4.0, 6.0)   # half hidden
        return t

    def test_bounds_and_duration(self, timeline):
        assert timeline.start_s == 0.0
        assert timeline.end_s == 8.0
        assert timeline.duration_s == 8.0

    def test_busy_time_is_sum_of_disjoint_spans(self, timeline):
        assert timeline.busy_s("compute") == pytest.approx(7.0)
        assert timeline.busy_s("switch") == pytest.approx(4.0)
        assert timeline.busy_fraction("compute") == pytest.approx(7.0 / 8.0)

    def test_overlap_is_symmetric(self, timeline):
        ab = timeline.overlap_s("switch", "compute")
        ba = timeline.overlap_s("compute", "switch")
        assert ab == pytest.approx(3.0)
        assert ab == pytest.approx(ba)

    def test_hidden_fraction(self, timeline):
        # copy0 contributes 2.0s, copy1 contributes 1.0s of hidden time.
        assert timeline.hidden_fraction("switch", "compute") == pytest.approx(
            3.0 / 4.0
        )

    def test_category_filters(self, timeline):
        assert len(timeline.spans(category="switch")) == 2
        assert timeline.busy_s("compute", category="nope") == 0.0

    def test_gaps(self, timeline):
        assert timeline.gaps("compute") == [(4.0, 5.0)]
        assert timeline.gaps("switch") == [(3.0, 4.0)]

    def test_empty_timeline(self):
        empty = Timeline()
        assert empty.duration_s == 0.0
        assert empty.busy_fraction("anything") == 0.0
        assert empty.hidden_fraction("a", "b") == 0.0
        assert list(empty) == []


class TestRecordScaling:
    """record() keeps a per-lane sorted start-time index; appending N
    spans must not rebuild an N-element key list per call (O(N^2))."""

    def test_ten_thousand_spans_on_one_lane_is_fast(self):
        import time

        timeline = Timeline()
        start = time.perf_counter()
        for i in range(10_000):
            timeline.record(f"s{i}", "lane", "c", float(i), float(i) + 0.5)
        elapsed = time.perf_counter() - start
        assert len(timeline) == 10_000
        # The quadratic key-rebuild implementation took tens of seconds
        # here; the indexed one is comfortably under a second.
        assert elapsed < 1.0, f"record() took {elapsed:.2f}s for 10k spans"

    def test_index_survives_out_of_order_inserts(self):
        timeline = Timeline()
        for i in reversed(range(100)):
            timeline.record(f"s{i}", "lane", "c", float(i), float(i) + 0.5)
        spans = timeline.spans("lane")
        assert [s.start_s for s in spans] == sorted(s.start_s for s in spans)
        # Overlap detection still works against the maintained index.
        with pytest.raises(ValueError):
            timeline.record("bad", "lane", "c", 50.2, 50.4)
