"""Chrome-trace and summary export of timelines."""

import json

import pytest

from repro.obs import (
    Timeline,
    lane_metadata_events,
    to_chrome_events,
    to_summary,
    write_chrome_trace,
    write_summary,
)


@pytest.fixture()
def timeline():
    t = Timeline()
    t.record("exec", "compute", "decode", 0.0, 4e-3, args={"batch": 8})
    t.record("copy", "switch", "switch", 1e-3, 3e-3)
    return t


class TestChromeEvents:
    def test_events_are_complete_phase_microseconds(self, timeline):
        events = to_chrome_events(timeline)
        assert all(e["ph"] == "X" for e in events)
        exec_event = next(e for e in events if e["name"] == "exec")
        assert exec_event["ts"] == 0.0
        assert exec_event["dur"] == pytest.approx(4e3)  # 4 ms in us
        assert exec_event["args"] == {"batch": 8}

    def test_lane_order_pins_tids(self, timeline):
        events = to_chrome_events(timeline, lanes=("switch", "compute"))
        by_name = {e["name"]: e["tid"] for e in events}
        assert by_name == {"copy": 0, "exec": 1}

    def test_unlisted_lanes_follow_pinned_ones(self, timeline):
        timeline.record("extra", "spill", "spill", 5e-3, 6e-3)
        events = to_chrome_events(timeline, lanes=("compute",))
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["exec"] == 0
        assert tids["copy"] != tids["extra"]

    def test_metadata_names_lanes(self, timeline):
        meta = lane_metadata_events(timeline)
        assert {e["args"]["name"] for e in meta} == {"compute", "switch"}
        assert all(e["ph"] == "M" for e in meta)

    def test_write_is_perfetto_loadable_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(timeline, str(path))
        assert count == 2
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"X", "M"}


class TestSummary:
    def test_summary_rollup(self, timeline):
        summary = to_summary(timeline)
        assert summary["num_spans"] == 2
        assert summary["duration_s"] == pytest.approx(4e-3)
        compute = summary["lanes"]["compute"]
        assert compute["busy_s"] == pytest.approx(4e-3)
        assert compute["busy_fraction"] == pytest.approx(1.0)
        assert compute["categories"]["decode"]["spans"] == 1

    def test_write_summary_round_trips(self, timeline, tmp_path):
        path = tmp_path / "summary.json"
        summary = write_summary(timeline, str(path))
        assert json.loads(path.read_text()) == summary
