"""The prompt router."""

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.coe.router import Router, embed_text


@pytest.fixture
def router():
    return Router(build_samba_coe_library(30))


class TestRouting:
    @pytest.mark.parametrize(
        "prompt,domain",
        [
            ("Write a python function to reverse a linked list", "code"),
            ("Solve the equation x^2 + 3x - 4 = 0", "math"),
            ("Translate this sentence into French please", "translation"),
            ("What are the symptoms of this disease and its treatment?", "medical"),
            ("Summarize the key points of this article, tldr", "summarization"),
        ],
    )
    def test_prompts_reach_their_domain(self, router, prompt, domain):
        assert router.route(prompt).domain == domain

    def test_routing_is_deterministic(self):
        lib = build_samba_coe_library(30)
        a = Router(lib).route("Write a python function").expert.name
        b = Router(lib).route("Write a python function").expert.name
        assert a == b

    def test_round_robin_within_domain(self, router):
        first = router.route("debug this python code").expert.name
        second = router.route("debug this python code").expert.name
        assert first != second  # several code experts share the load

    def test_empty_prompt_rejected(self, router):
        with pytest.raises(ValueError):
            router.route("   ")

    def test_batch_routes_independently(self, router):
        decisions = router.route_batch(
            ["integrate x dx", "write a poem about rivers"]
        )
        assert decisions[0].domain == "math"
        assert decisions[1].domain == "writing"


class TestEmbedding:
    def test_embedding_is_normalised(self):
        import numpy as np

        v = embed_text("hello world hello")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_text_gives_zero_vector(self):
        import numpy as np

        assert np.all(embed_text("") == 0)

    def test_missing_domain_keywords_detected(self):
        from repro.coe.expert import ExpertLibrary, ExpertProfile

        lib = ExpertLibrary(experts=[ExpertProfile("e", "astrology")])
        with pytest.raises(ValueError, match="astrology"):
            Router(lib)
