"""Expert library."""

import pytest

from repro.coe.expert import ExpertLibrary, ExpertProfile, build_samba_coe_library
from repro.models.catalog import LLAMA2_7B


class TestExpertProfile:
    def test_weight_bytes_come_from_model(self):
        e = ExpertProfile("e0", "code")
        assert e.weight_bytes == LLAMA2_7B.weight_bytes

    def test_copyback_is_the_mutable_fraction(self):
        e = ExpertProfile("e0", "code", mutable_fraction=0.1)
        assert e.copyback_bytes == pytest.approx(0.1 * e.weight_bytes, rel=0.01)

    def test_bad_mutable_fraction_rejected(self):
        with pytest.raises(ValueError):
            ExpertProfile("e0", "code", mutable_fraction=1.5)


class TestSambaCoELibrary:
    def test_150_experts_cross_a_trillion_params(self):
        lib = build_samba_coe_library(150)
        assert len(lib) == 150
        assert lib.total_params > 1e12  # the paper's headline

    def test_domains_are_covered(self):
        lib = build_samba_coe_library(20)
        assert len(lib.domains) == 10

    def test_lookup_by_name_and_domain(self):
        lib = build_samba_coe_library(10)
        expert = lib.experts[0]
        assert lib[expert.name] is expert
        assert expert in lib.for_domain(expert.domain)

    def test_unknown_lookups_raise(self):
        lib = build_samba_coe_library(5)
        with pytest.raises(KeyError):
            lib["ghost"]
        with pytest.raises(KeyError):
            lib.for_domain("astrology")

    def test_duplicate_names_rejected(self):
        e = ExpertProfile("dup", "code")
        with pytest.raises(ValueError):
            ExpertLibrary(experts=[e, ExpertProfile("dup", "math")])

    def test_zero_experts_rejected(self):
        with pytest.raises(ValueError):
            build_samba_coe_library(0)


class TestLibraryAdd:
    def test_add_keeps_indexes_coherent(self):
        lib = build_samba_coe_library(5)
        extra = ExpertProfile("replica", "code")
        lib.add(extra)
        assert len(lib) == 6
        assert "replica" in lib
        assert lib["replica"] is extra
        assert extra in lib.for_domain("code")

    def test_add_rejects_duplicate_name(self):
        lib = build_samba_coe_library(5)
        with pytest.raises(ValueError, match="duplicate expert name"):
            lib.add(ExpertProfile(lib.experts[0].name, "math"))

    def test_contains_checks_names(self):
        lib = build_samba_coe_library(3)
        assert lib.experts[0].name in lib
        assert "ghost" not in lib
