"""Pluggable HBM expert-cache policies (repro.coe.cache)."""

import pytest

from repro.coe.cache import (
    CACHE_POLICIES,
    BeladyPolicy,
    CachePolicy,
    GDSFPolicy,
    LFUPolicy,
    LookaheadPolicy,
    LookaheadUnboundError,
    LRUPolicy,
    PredictivePolicy,
    make_policy,
)
from repro.coe.expert import ExpertProfile
from repro.coe.policies import CachePolicyName
from repro.coe.runtime import CoERuntime
from repro.coe.scheduling import ExpertPredictor
from repro.models.transformer import TransformerConfig

TINY = TransformerConfig("tiny", hidden=64, layers=2, heads=4, kv_heads=4,
                         intermediate=128, vocab=100)
BIG = TransformerConfig("big", hidden=128, layers=2, heads=4, kv_heads=4,
                        intermediate=256, vocab=100)
EXPERT_BYTES = TINY.weight_bytes


def _expert(i, model=TINY):
    return ExpertProfile(f"e{i}", "chat", model=model)


def _runtime(capacity_experts=2, policy=None):
    return CoERuntime(
        hbm_budget_bytes=capacity_experts * EXPERT_BYTES,
        upgrade_time=lambda b: b / 1e9,
        policy=policy,
    )


class TestMakePolicy:
    def test_none_is_lru(self):
        assert isinstance(make_policy(None), LRUPolicy)

    def test_names_resolve(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("lfu"), LFUPolicy)
        assert isinstance(make_policy("gdsf"), GDSFPolicy)
        assert isinstance(make_policy("predictive"), PredictivePolicy)

    def test_enum_members_resolve(self):
        assert isinstance(make_policy(CachePolicyName.LFU), LFUPolicy)

    def test_instance_passes_through(self):
        policy = LFUPolicy()
        assert make_policy(policy) is policy

    def test_factory_is_called(self):
        assert isinstance(make_policy(GDSFPolicy), GDSFPolicy)

    def test_belady_by_name_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            make_policy("belady")

    def test_unknown_name_lists_members(self):
        with pytest.raises(ValueError, match="lru"):
            make_policy("mru")

    def test_bad_factory_rejected(self):
        with pytest.raises(TypeError, match="factory"):
            make_policy(lambda: object())

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            make_policy(42)

    def test_nameable_policies_exclude_belady(self):
        assert "belady" not in CACHE_POLICIES
        assert set(CACHE_POLICIES) == {
            "lru", "lfu", "gdsf", "predictive", "lookahead",
        }


class TestLRUDefaultEquivalence:
    """policy=None must be bit-identical to the historical LRU."""

    def test_eviction_sequences_match(self):
        experts = [_expert(i) for i in range(6)]
        pattern = [0, 1, 2, 0, 3, 4, 0, 5, 1, 2, 0]
        default_rt = _runtime(capacity_experts=3)
        named_rt = _runtime(capacity_experts=3, policy="lru")
        for idx in pattern:
            a = default_rt.activate(experts[idx])
            b = named_rt.activate(experts[idx])
            assert (a.hit, a.evicted, a.time_s) == (b.hit, b.evicted, b.time_s)
        assert default_rt.resident_experts == named_rt.resident_experts

    def test_switch_event_carries_policy_name(self):
        rt = _runtime()
        event = rt.activate(_expert(0))
        assert event.policy == "lru"


class TestLFU:
    def test_scan_does_not_evict_the_hot_expert(self):
        rt = _runtime(capacity_experts=2, policy="lfu")
        hot = _expert(0)
        for _ in range(5):
            rt.activate(hot)
        # A scan of cold experts keeps evicting the *other* cold one.
        for i in range(1, 5):
            event = rt.activate(_expert(i))
            assert "e0" not in event.evicted
        assert "e0" in rt.resident_experts

    def test_speculative_accesses_do_not_count_as_frequency(self):
        policy = LFUPolicy()
        rt = _runtime(capacity_experts=2, policy=policy)
        e0, e1, e2 = _expert(0), _expert(1), _expert(2)
        rt.activate(e0)           # demand: freq 1
        rt.activate(e1, speculative=True)
        for _ in range(5):        # speculative hits: still freq 0
            rt.activate(e1, speculative=True)
        event = rt.activate(e2)
        assert event.evicted == ("e1",)

    def test_why_names_frequency(self):
        rt = _runtime(capacity_experts=1, policy="lfu")
        rt.activate(_expert(0))
        event = rt.activate(_expert(1))
        assert event.evicted_why == ("lfu: freq 1",)


class TestGDSF:
    def test_frequency_protects_under_uniform_sizes(self):
        rt = _runtime(capacity_experts=2, policy="gdsf")
        hot = _expert(0)
        for _ in range(5):
            rt.activate(hot)
        for i in range(1, 5):
            event = rt.activate(_expert(i))
            assert "e0" not in event.evicted

    def test_inflation_ages_a_stale_hot_set(self):
        policy = GDSFPolicy()
        rt = _runtime(capacity_experts=2, policy=policy)
        old_hot = _expert(0)
        for _ in range(10):
            rt.activate(old_hot)
        # A long drift of fresh experts inflates L past the stale
        # frequency, so the once-hot expert eventually becomes evictable.
        evicted = set()
        for i in range(1, 30):
            evicted.update(rt.activate(_expert(i)).evicted)
        assert "e0" in evicted

    def test_cheap_to_refetch_evicted_first(self):
        # Same frequency: the expert whose refetch costs less (smaller
        # copy) has the lower cost/size... with a linear DMA model
        # cost/size is constant, so make the big expert's copy
        # disproportionately expensive via a superlinear cost model.
        rt = CoERuntime(
            hbm_budget_bytes=TINY.weight_bytes + BIG.weight_bytes,
            upgrade_time=lambda b: (b / 1e9) ** 2,
            policy="gdsf",
        )
        small, big = _expert(0, TINY), _expert(1, BIG)
        rt.activate(small)
        rt.activate(big)
        event = rt.activate(_expert(2, BIG))
        assert event.evicted[0] == "e0"  # cheapest to bring back


class TestPredictive:
    def test_engine_binds_its_predictor(self):
        from repro.coe.engine import ServingEngine
        from repro.coe.expert import build_samba_coe_library
        from repro.systems.platforms import sn40l_platform

        engine = ServingEngine(
            sn40l_platform(), build_samba_coe_library(4),
            cache_policy="predictive",
        )
        policy = engine.server.runtime.policy
        assert isinstance(policy, PredictivePolicy)
        assert policy.predictor is engine._predictor
        assert engine.cache_policy == "predictive"

    def test_unpredicted_residents_evicted_first(self):
        predictor = ExpertPredictor()
        policy = PredictivePolicy(predictor)
        rt = _runtime(capacity_experts=2, policy=policy)
        e0, e1 = _expert(0), _expert(1)
        rt.activate(e0)
        rt.activate(e1)
        # The predictor has only ever seen e1 -> e1 transitions: e0 is
        # never predicted, so it goes first.
        predictor.observe(e1)
        predictor.observe(e1)
        event = rt.activate(_expert(2))
        assert event.evicted == ("e0",)
        assert event.evicted_why == ("predictive: never predicted",)

    def test_no_predictor_falls_back_to_recency(self):
        rt = _runtime(capacity_experts=2, policy="predictive")
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        event = rt.activate(_expert(2))
        assert event.evicted == ("e0",)


class TestLookahead:
    def test_resolves_by_name(self):
        assert isinstance(make_policy("lookahead"), LookaheadPolicy)

    def test_unbound_raises_at_first_eviction(self):
        # Nameable, unlike belady — but a bare runtime has no backlog to
        # look ahead into, so the first eviction decision fails typed.
        rt = _runtime(capacity_experts=1, policy="lookahead")
        rt.activate(_expert(0))  # empty cache: no eviction decision yet
        with pytest.raises(LookaheadUnboundError, match="backlog"):
            rt.activate(_expert(1))

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            LookaheadPolicy(horizon=0)

    def test_evicts_farthest_next_use_in_backlog(self):
        policy = LookaheadPolicy()
        policy.bind_backlog(lambda: ["e1", "e0"])
        rt = _runtime(capacity_experts=2, policy=policy)
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        # e1 is next (distance 0), e0 after it (distance 1); the
        # incoming e2 never appears in the window, so the victim is the
        # resident farthest from use: e0.
        event = rt.activate(_expert(2))
        assert event.evicted == ("e0",)
        assert event.evicted_why == ("lookahead: next use 1 groups ahead",)

    def test_absent_from_window_evicted_before_scheduled(self):
        policy = LookaheadPolicy()
        policy.bind_backlog(lambda: ["e0"])
        rt = _runtime(capacity_experts=2, policy=policy)
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        # e1 was touched last (LRU would keep it), but only e0 appears
        # in the backlog window — so e1 ranks as farthest and goes.
        event = rt.activate(_expert(2))
        assert event.evicted == ("e1",)
        assert event.evicted_why == ("lookahead: unused within horizon 256",)

    def test_horizon_bounds_the_scan(self):
        policy = LookaheadPolicy(horizon=1)
        # e0 appears in the backlog but beyond the 1-group horizon:
        # invisible, so it ties with e1 as unused and least-recent wins.
        policy.bind_backlog(lambda: ["e2", "e0"])
        rt = _runtime(capacity_experts=2, policy=policy)
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        event = rt.activate(_expert(2))
        assert event.evicted == ("e0",)

    def test_engine_binds_its_queue(self):
        from repro.coe.engine import ServingEngine
        from repro.coe.expert import build_samba_coe_library
        from repro.systems.platforms import sn40l_platform

        engine = ServingEngine(
            sn40l_platform(), build_samba_coe_library(4),
            cache_policy="lookahead",
        )
        policy = engine.server.runtime.policy
        assert isinstance(policy, LookaheadPolicy)
        assert policy._backlog is not None
        assert engine.cache_policy == "lookahead"


class TestBelady:
    def test_evicts_farthest_next_use(self):
        trace = ["e0", "e1", "e2", "e0", "e1"]
        rt = _runtime(capacity_experts=2, policy=BeladyPolicy(trace))
        experts = {f"e{i}": _expert(i) for i in range(3)}
        rt.activate(experts["e0"])
        rt.activate(experts["e1"])
        # At the third access the remaining trace is e0, e1: e2 itself is
        # never reused, but between residents e0 (next at 3) and e1
        # (next at 4), e1 is farther — Belady evicts e1.
        event = rt.activate(experts["e2"])
        assert event.evicted == ("e1",)

    def test_never_used_again_evicted_first(self):
        trace = ["e0", "e1", "e2", "e1", "e2", "e1"]
        rt = _runtime(capacity_experts=2, policy=BeladyPolicy(trace))
        experts = {f"e{i}": _expert(i) for i in range(3)}
        rt.activate(experts["e0"])
        rt.activate(experts["e1"])
        event = rt.activate(experts["e2"])
        assert event.evicted == ("e0",)
        assert event.evicted_why == ("belady: never used again",)

    def test_from_runtime_replays_the_demand_trace(self):
        first = _runtime(capacity_experts=2)
        pattern = [0, 1, 2, 0, 1, 2, 0, 1]
        experts = [_expert(i) for i in range(3)]
        for idx in pattern:
            first.activate(experts[idx])
        oracle = BeladyPolicy.from_runtime(first)
        assert list(oracle.trace) == [f"e{i}" for i in pattern]
        replay = _runtime(capacity_experts=2, policy=oracle)
        hits = sum(replay.activate(experts[idx]).hit for idx in pattern)
        assert hits >= first.stats.hits

    def test_belady_at_least_matches_lru_hits(self):
        # Any online policy's hit count is bounded by Belady's on the
        # same trace (uniform sizes).
        import random
        rng = random.Random(7)
        pattern = [rng.randrange(6) for _ in range(200)]
        experts = [_expert(i) for i in range(6)]
        lru_rt = _runtime(capacity_experts=3)
        for idx in pattern:
            lru_rt.activate(experts[idx])
        belady_rt = _runtime(
            capacity_experts=3, policy=BeladyPolicy.from_runtime(lru_rt)
        )
        for idx in pattern:
            belady_rt.activate(experts[idx])
        assert belady_rt.stats.hits >= lru_rt.stats.hits


class TestSpeculativeAccounting:
    def test_speculative_traffic_never_touches_demand_counters(self):
        rt = _runtime(capacity_experts=2)
        e0, e1 = _expert(0), _expert(1)
        rt.activate(e0, speculative=True)   # miss, pays a copy
        rt.activate(e0, speculative=True)   # hit
        assert rt.stats.requests == 0
        assert rt.stats.hits == 0
        assert rt.stats.bytes_up == 0
        assert rt.stats.switch_time_s == 0.0
        assert rt.stats.speculative_requests == 2
        assert rt.stats.speculative_hits == 1
        assert rt.stats.speculative_misses == 1
        assert rt.stats.speculative_bytes_up == EXPERT_BYTES
        # Demand traffic lands on the demand side only.
        rt.activate(e1)
        assert rt.stats.requests == 1
        assert rt.stats.speculative_requests == 2

    def test_hit_rate_reflects_demand_only(self):
        rt = _runtime(capacity_experts=2)
        e0 = _expert(0)
        rt.activate(e0, speculative=True)  # prefetch warms it
        assert rt.stats.hit_rate == 0.0    # no demand traffic yet
        assert rt.activate(e0).hit         # the demand access hits
        assert rt.stats.hit_rate == 1.0

    def test_speculative_accesses_stay_out_of_the_demand_trace(self):
        rt = _runtime(capacity_experts=2)
        rt.activate(_expert(0), speculative=True)
        rt.activate(_expert(1))
        assert rt.demand_trace == ["e1"]

    def test_evictions_counted_for_speculative_copies_too(self):
        rt = _runtime(capacity_experts=1)
        rt.activate(_expert(0))
        rt.activate(_expert(1), speculative=True)
        assert rt.stats.evictions == 1


class TestPolicyStateLifecycle:
    def test_flush_resets_belady_cursor(self):
        trace = ["e0", "e1", "e0", "e1"]
        policy = BeladyPolicy(trace)
        rt = _runtime(capacity_experts=1, policy=policy)
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        assert policy._cursor == 2
        rt.flush()
        assert rt.resident_experts == []

    def test_shared_instance_rejected_by_cluster(self):
        from repro.coe.cluster_engine import ClusterEngine
        from repro.coe.expert import build_samba_coe_library
        from repro.systems.platforms import sn40l_platform

        with pytest.raises(ValueError, match="instance"):
            ClusterEngine(
                sn40l_platform, build_samba_coe_library(8), num_nodes=2,
                cache_policy=LFUPolicy(),
            )

    def test_cluster_accepts_policy_by_name(self):
        from repro.coe.cluster_engine import ClusterEngine
        from repro.coe.expert import build_samba_coe_library
        from repro.systems.platforms import sn40l_platform

        cluster = ClusterEngine(
            sn40l_platform, build_samba_coe_library(8), num_nodes=2,
            cache_policy="lfu",
        )
        runtimes = [n.engine.server.runtime for n in cluster.nodes]
        assert all(isinstance(rt.policy, LFUPolicy) for rt in runtimes)
        # One policy object per node, never shared.
        assert runtimes[0].policy is not runtimes[1].policy


class TestBaseProtocol:
    def test_eviction_order_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CachePolicy().eviction_order({})
