"""Unit pins for the columnar drain core's building blocks.

The three-way report identity lives in ``test_batched_equivalence.py``;
this file pins the individual equivalences the columnar drain is built
from, so a future regression points at the broken piece rather than at
"some report byte differs":

- the cumsum timestamp chain is *bitwise* the scalar accumulation loop,
- ``CompletedLog`` presents exactly the records a plain list would,
- each cache policy's ``on_access_run`` equals its scalar hit sequence,
- ``CoERuntime.touch_run`` equals sequential hit ``activate`` calls,
- ``ExpertPredictor.observe_run`` equals sequential ``observe`` calls,
- ``summarize_latencies`` equals the scalar ``percentile`` oracle,
- engines reject re-entry instead of leaking prior run state.
"""

import math
import random

import numpy as np
import pytest

from repro.coe.cache import BeladyPolicy, make_policy
from repro.coe.cluster_engine import ClusterEngine
from repro.coe.columnar import CompletedLog, latency_values, token_total
from repro.coe.decisions import DecisionLog
from repro.coe.engine import (
    CompletedRequest,
    EngineReentryError,
    ServingEngine,
    zipf_request_stream,
)
from repro.coe.expert import build_samba_coe_library
from repro.coe.metrics import percentile, summarize_latencies
from repro.coe.policies import DrainMode
from repro.coe.runtime import CoERuntime
from repro.coe.scheduling import ExpertPredictor
from repro.systems.platforms import sn40l_platform


# ---------------------------------------------------------------------------
# cumsum timestamp chain


def test_cumsum_chain_is_bitwise_scalar_accumulation():
    """The drain's one float trick: seeding np.cumsum with ``now`` and the
    flattened (compute, stage, overhead) triples reproduces the scalar
    ``now = ((now + a) + b) + c`` chain *bitwise* — np.cumsum accumulates
    strictly left to right (pairwise summation applies to np.sum only)."""
    rng = random.Random(0xC0FFEE)
    for _ in range(50):
        m = rng.randrange(1, 40)
        now = rng.uniform(0.0, 1e4)
        phases = [
            (rng.uniform(1e-6, 2.0), rng.uniform(1e-6, 2.0),
             rng.uniform(1e-9, 0.1))
            for _ in range(m)
        ]
        starts, ends, cursor = [], [], now
        for a, b, c in phases:
            starts.append(cursor)
            cursor = ((cursor + a) + b) + c
            ends.append(cursor)

        acc = np.empty(3 * m + 1, dtype=np.float64)
        acc[0] = now
        acc[1:] = np.asarray(phases, dtype=np.float64).reshape(-1)
        np.cumsum(acc, out=acc)
        assert acc[0 : 3 * m : 3].tolist() == starts
        assert acc[3::3].tolist() == ends
        assert float(acc[-1]) == cursor


# ---------------------------------------------------------------------------
# CompletedLog


def _record(i, expert="e0", batch=1, arrival=0.0, start=1.0, end=2.0, tok=3):
    return CompletedRequest(i, expert, batch, arrival, start, end, tok)


def _block_records(first_id, names_sizes, start0):
    """Build extend_block arguments plus the equivalent scalar records."""
    names = [n for n, _ in names_sizes]
    sizes = [s for _, s in names_sizes]
    starts, ends, cursor = [], [], start0
    for _ in names:
        starts.append(cursor)
        cursor += 1.5
        ends.append(cursor)
    req_ids, arrivals, tokens, records = [], [], [], []
    rid = first_id
    for name, size, start, end in zip(names, sizes, starts, ends):
        for _ in range(size):
            req_ids.append(rid)
            arrivals.append(0.25 * rid)
            tokens.append(rid + 10)
            records.append(
                CompletedRequest(rid, name, size, 0.25 * rid, start, end,
                                 rid + 10))
            rid += 1
    columns = (
        names, np.asarray(sizes, dtype=np.int64),
        np.asarray(starts), np.asarray(ends),
        np.asarray(req_ids, dtype=np.int64), np.asarray(arrivals),
        np.asarray(tokens, dtype=np.int64),
    )
    return columns, records


def test_completed_log_mixes_scalars_and_blocks_in_order():
    log = CompletedLog()
    expected = []

    log.append(_record(0))
    expected.append(_record(0))
    columns, records = _block_records(1, [("a", 2), ("b", 1)], start0=2.0)
    log.extend_block(*columns)
    expected.extend(records)
    log.append(_record(4))
    log.append(_record(5))
    expected.extend([_record(4), _record(5)])
    columns, records = _block_records(6, [("c", 3)], start0=9.0)
    log.extend_block(*columns)
    expected.extend(records)

    assert len(log) == len(expected)
    assert list(log) == expected
    assert log.materialize() == expected
    assert log[0] == expected[0] and log[-1] == expected[-1]


def test_completed_log_block_first_keeps_append_bound():
    """A block arriving before any scalar record must not orphan the
    bound ``append`` (the empty-tail insert path)."""
    log = CompletedLog()
    columns, records = _block_records(0, [("a", 1), ("b", 2)], start0=0.0)
    log.extend_block(*columns)
    log.append(_record(99))
    assert list(log) == records + [_record(99)]


def test_completed_log_materialize_caches_until_grown():
    log = CompletedLog()
    log.append(_record(0))
    first = log.materialize()
    assert log.materialize() is first
    log.append(_record(1))
    second = log.materialize()
    assert second is not first
    assert len(second) == 2


def test_completed_log_latency_and_tokens_match_scalar():
    log = CompletedLog()
    expected = []
    log.append(_record(0, arrival=0.125, end=7.25, tok=11))
    expected.append(_record(0, arrival=0.125, end=7.25, tok=11))
    columns, records = _block_records(1, [("a", 2), ("b", 3)], start0=1.0)
    log.extend_block(*columns)
    expected.extend(records)

    want_latencies = [c.latency_s for c in expected]
    assert log.latency_values() == want_latencies  # bitwise, not approx
    assert latency_values(log) == want_latencies
    assert latency_values(expected) == want_latencies
    assert log.token_total() == sum(c.output_tokens for c in expected)
    assert token_total(log) == token_total(expected)


# ---------------------------------------------------------------------------
# policy / runtime / predictor batch-equivalence


def _hit_run(rng, experts, length):
    return [rng.choice(experts) for _ in range(length)]


def _fresh_runtime(library, cache_policy):
    budget = sum(e.weight_bytes for e in library.experts) * 2
    return CoERuntime(budget, lambda b: b * 1e-9, policy=cache_policy)


@pytest.mark.parametrize("cache_policy", ["lru", "lfu", "gdsf"])
def test_touch_run_equals_sequential_hit_activates(cache_policy):
    rng = random.Random(f"touch:{cache_policy}")
    library = build_samba_coe_library(12)
    experts = list(library.experts)

    scalar = _fresh_runtime(library, cache_policy)
    batched = _fresh_runtime(library, cache_policy)
    scalar_log, batched_log = DecisionLog(), DecisionLog()
    scalar.attach_decisions(scalar_log, "node0.cache")
    batched.attach_decisions(batched_log, "node0.cache")
    for runtime in (scalar, batched):
        for expert in experts:
            runtime.activate(expert)

    for trial in range(20):
        run = _hit_run(rng, experts, rng.randrange(1, 15))
        for expert in run:
            scalar.activate(expert)
        batched.touch_run(run)

        assert list(scalar.resident_map) == list(batched.resident_map), trial
        assert scalar.stats == batched.stats, trial
        assert scalar.demand_trace == batched.demand_trace, trial
        assert scalar.policy.eviction_order(scalar.resident_map) == \
            batched.policy.eviction_order(batched.resident_map), trial
        assert scalar_log == batched_log, batched_log.diff(scalar_log)


def test_touch_run_rejects_non_resident_experts():
    library = build_samba_coe_library(4)
    runtime = _fresh_runtime(library, "lru")
    with pytest.raises(ValueError, match="resident"):
        runtime.touch_run([library.experts[0]])


def test_belady_on_access_run_advances_cursor_like_scalar():
    library = build_samba_coe_library(6)
    experts = list(library.experts)
    trace = [e.name for e in experts] * 3
    scalar, batched = BeladyPolicy(trace), BeladyPolicy(trace)
    for expert in experts[:4]:
        scalar.on_access(expert, True)
    batched.on_access_run(experts[:4])
    resident = {e.name: e for e in experts}
    assert scalar.eviction_order(resident) == batched.eviction_order(resident)


def test_observe_run_equals_sequential_observe():
    rng = random.Random("observe")
    library = build_samba_coe_library(10)
    experts = list(library.experts)
    scalar, batched = ExpertPredictor(), ExpertPredictor()

    for trial in range(20):
        run = _hit_run(rng, experts, rng.randrange(1, 12))
        for expert in run:
            scalar.observe(expert)
        batched.observe_run(run)

        assert scalar._counts == batched._counts, trial
        assert scalar._last_seen == batched._last_seen, trial
        assert scalar._transitions == batched._transitions, trial
        assert scalar._clock == batched._clock, trial
        assert scalar._prev == batched._prev, trial
        assert [e.name for e in scalar.candidates()] == \
            [e.name for e in batched.candidates()], trial


def test_observe_run_empty_is_a_noop():
    predictor = ExpertPredictor()
    predictor.observe_run([])
    assert predictor._clock == 0 and predictor._prev is None


# ---------------------------------------------------------------------------
# summarize_latencies


def test_summarize_latencies_matches_percentile_oracle():
    rng = random.Random("summary")
    for _ in range(30):
        values = [rng.uniform(0.0, 50.0) for _ in range(rng.randrange(1, 300))]
        summary = summarize_latencies(values)
        assert summary.p50_s == percentile(values, 50)
        assert summary.p95_s == percentile(values, 95)
        assert summary.p99_s == percentile(values, 99)
        assert summary.mean_s == sum(values) / len(values)


def test_summarize_latencies_empty_is_zero():
    assert summarize_latencies([]) == (0.0, 0.0, 0.0, 0.0)


# ---------------------------------------------------------------------------
# drain-mode plumbing and re-entry


def _small_workload(seed=7):
    library = build_samba_coe_library(16)
    requests = zipf_request_stream(library, 40, seed=seed)
    return library, requests


def test_drain_mode_resolution_and_back_compat():
    library, _ = _small_workload()
    assert ServingEngine(sn40l_platform(), library).drain_mode == "columnar"
    assert ServingEngine(
        sn40l_platform(), library, event_batching=False
    ).drain_mode == "reference"
    engine = ServingEngine(
        sn40l_platform(), library, event_batching=False,
        drain_mode=DrainMode.BATCHED,
    )
    assert engine.drain_mode == "batched"  # explicit mode wins
    assert engine.event_batching is True


def test_drain_mode_rejects_unknown_names():
    library, _ = _small_workload()
    with pytest.raises(ValueError):
        ServingEngine(sn40l_platform(), library, drain_mode="bogus")


def test_serving_engine_rejects_reentry():
    library, requests = _small_workload()
    engine = ServingEngine(sn40l_platform(), library)
    engine.run(requests)
    with pytest.raises(EngineReentryError):
        engine.run(requests)


def test_cluster_engine_rejects_reentry():
    library, requests = _small_workload()
    engine = ClusterEngine(sn40l_platform, library, num_nodes=2)
    engine.serve(requests)
    with pytest.raises(EngineReentryError):
        engine.serve(requests)
