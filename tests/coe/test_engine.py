"""The throughput serving engine: grouping, overlap, and reporting."""

import pytest

from repro.coe.engine import (
    POLICIES,
    EngineRequest,
    ServingEngine,
    compare_policies,
    zipf_request_stream,
)
from repro.coe.expert import build_samba_coe_library
from repro.coe.scheduling import Request, coalesce_groups
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(60)


@pytest.fixture(scope="module")
def stream(library):
    return zipf_request_stream(library, 96, alpha=1.1, seed=7)


class TestGroupCoalescing:
    def test_consecutive_same_expert_merges(self, library):
        e0, e1 = library.experts[0], library.experts[1]
        reqs = [Request(i, e) for i, e in enumerate([e0, e0, e1, e0])]
        groups = coalesce_groups(reqs)
        assert [(g.expert.name, g.batch) for g in groups] == [
            (e0.name, 2), (e1.name, 1), (e0.name, 1),
        ]

    def test_max_batch_caps_group_size(self, library):
        e0 = library.experts[0]
        reqs = [Request(i, e0) for i in range(10)]
        groups = coalesce_groups(reqs, max_batch=4)
        assert [g.batch for g in groups] == [4, 4, 2]

    def test_groups_preserve_every_request(self, library):
        reqs = [Request(i, library.experts[i % 5]) for i in range(23)]
        groups = coalesce_groups(reqs, max_batch=3)
        flat = [r.request_id for g in groups for r in g.requests]
        assert flat == list(range(23))

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            coalesce_groups([], max_batch=0)


class TestEngineBasics:
    def test_every_request_completes_exactly_once(self, library, stream):
        for policy in POLICIES:
            engine = ServingEngine(sn40l_platform(), library, policy=policy)
            report = engine.run(stream)
            assert report.requests == len(stream)
            ids = sorted(c.request_id for c in report.completed)
            assert ids == sorted(r.request_id for r in stream)

    def test_empty_backlog_rejected(self, library):
        with pytest.raises(ValueError):
            ServingEngine(sn40l_platform(), library).run([])

    def test_unknown_policy_rejected(self, library):
        with pytest.raises(ValueError):
            ServingEngine(sn40l_platform(), library, policy="lifo")

    def test_runs_event_driven(self, library, stream):
        report = ServingEngine(sn40l_platform(), library, policy="overlap").run(
            stream
        )
        # begin + finish per group at minimum, chained through the queue.
        assert report.events_run >= 2 * report.groups

    def test_percentiles_are_ordered(self, library, stream):
        for platform in (sn40l_platform(), dgx_h100_platform()):
            report = ServingEngine(platform, library, policy="fifo").run(stream)
            assert report.p50_s <= report.p95_s <= report.p99_s
            assert report.p99_s <= report.makespan_s

    def test_makespan_is_last_completion(self, library, stream):
        report = ServingEngine(sn40l_platform(), library, policy="overlap").run(
            stream
        )
        assert report.makespan_s == pytest.approx(
            max(c.finish_s for c in report.completed)
        )

    def test_batched_groups_beat_batch_of_one(self, library):
        """One 8-wide group is faster end-to-end than 8 singleton groups
        of the same expert (shared switch + shared weight reads)."""
        expert = library.experts[0]
        reqs = [EngineRequest(i, expert) for i in range(8)]
        batched = ServingEngine(
            sn40l_platform(), library, policy="fifo", max_batch=8
        ).run(reqs)
        singles = ServingEngine(
            sn40l_platform(), library, policy="fifo", max_batch=1
        ).run(reqs)
        assert batched.groups == 1
        assert singles.groups == 8
        assert batched.makespan_s < singles.makespan_s


class TestPolicyOrdering:
    def test_overlap_strictly_beats_fifo_on_zipf(self, library, stream):
        for platform in (sn40l_platform(), dgx_a100_platform()):
            reports = compare_policies(platform, library, stream)
            assert (reports["overlap"].requests_per_second
                    > reports["fifo"].requests_per_second)
            assert reports["overlap"].switch_hidden_fraction > 0

    def test_affinity_not_worse_than_fifo(self, library, stream):
        reports = compare_policies(sn40l_platform(), library, stream)
        assert (reports["affinity"].requests_per_second
                >= reports["fifo"].requests_per_second)

    def test_hidden_fraction_bounded(self, library, stream):
        reports = compare_policies(sn40l_platform(), library, stream)
        for report in reports.values():
            assert 0.0 <= report.switch_hidden_fraction <= 1.0
        assert reports["fifo"].hidden_switch_s == 0.0
        assert reports["affinity"].hidden_switch_s == 0.0

    def test_affinity_reordering_is_window_bounded(self, library):
        """No request may be displaced by a full window or more."""
        stream = zipf_request_stream(library, 64, alpha=1.0, seed=3)
        engine = ServingEngine(
            sn40l_platform(), library, policy="affinity", window=16
        )
        ordered = engine._order(stream)
        for pos, req in enumerate(ordered):
            assert abs(pos - req.request_id) < 16


class TestSpeculativePrefetch:
    def test_speculation_fires_when_next_group_is_resident(self, library):
        """With a tight HBM budget and a recurring rotation, the DMA-idle
        windows (next group already resident) warm the predictor's guess
        for an expert the rotation will come back to."""
        platform = sn40l_platform()
        hot = library.experts[0]
        rotation = library.experts[1:4]
        reqs = []
        for i in range(32):
            expert = hot if i % 2 == 0 else rotation[(i // 2) % 3]
            reqs.append(EngineRequest(i, expert))
        budget = 3 * hot.weight_bytes
        reserved = platform.hbm_capacity_bytes - budget
        report = ServingEngine(
            platform, library, policy="overlap", max_batch=1, window=1,
            reserved_hbm_bytes=reserved,
        ).run(reqs)
        assert report.speculative_prefetches > 0


class TestReportSerialization:
    def test_to_dict_round_trips_to_json(self, library, stream):
        import json

        report = ServingEngine(sn40l_platform(), library, policy="overlap").run(
            stream
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["policy"] == "overlap"
        assert payload["requests"] == len(stream)
        assert payload["requests_per_second"] > 0
        assert 0.0 <= payload["switch_hidden_fraction"] <= 1.0


class TestZipfStream:
    def test_deterministic_under_seed(self, library):
        a = zipf_request_stream(library, 50, seed=9)
        b = zipf_request_stream(library, 50, seed=9)
        assert [r.expert.name for r in a] == [r.expert.name for r in b]

    def test_skew_concentrates_on_head_experts(self, library):
        stream = zipf_request_stream(library, 400, alpha=1.5, seed=2)
        head = sum(1 for r in stream if r.expert is library.experts[0])
        assert head > 400 / len(library)  # far above uniform share

    def test_invalid_arguments_rejected(self, library):
        with pytest.raises(ValueError):
            zipf_request_stream(library, 0)
        with pytest.raises(ValueError):
            zipf_request_stream(library, 10, alpha=-1.0)


class TestRunTimeline:
    """The span timeline every run records (see docs/OBSERVABILITY.md)."""

    def test_every_policy_attaches_a_timeline(self, library, stream):
        for policy in POLICIES:
            report = ServingEngine(
                sn40l_platform(), library, policy=policy
            ).run(stream)
            assert report.timeline is not None
            assert "compute" in report.timeline.lanes
            # Per-lane non-overlap and end >= start hold by construction:
            # Timeline.record would have raised during the run otherwise.
            for lane in report.timeline.lanes:
                spans = report.timeline.spans(lane)
                for prev, nxt in zip(spans, spans[1:]):
                    assert nxt.start_s >= prev.end_s - 1e-12

    def test_compute_busy_time_covers_all_groups(self, library, stream):
        engine = ServingEngine(sn40l_platform(), library, policy="fifo")
        report = engine.run(stream)
        starts = {c.start_s for c in report.completed}
        finishes = {c.finish_s for c in report.completed}
        busy = report.timeline.busy_s("compute")
        expected = sum(f - s for s, f in zip(sorted(starts), sorted(finishes)))
        assert busy == pytest.approx(expected, rel=1e-9)

    def test_switch_stats_are_timeline_derived(self, library, stream):
        """Satellite: the reported switch-hidden stat equals the timeline
        overlap query on a seeded workload, to well within 1e-9."""
        for policy in POLICIES:
            report = ServingEngine(
                sn40l_platform(), library, policy=policy
            ).run(stream)
            timeline = report.timeline
            assert report.switch_s == pytest.approx(
                timeline.busy_s("switch"), abs=1e-15
            )
            assert abs(
                report.switch_hidden_fraction
                - timeline.hidden_fraction("switch", "compute")
            ) < 1e-9

    def test_hidden_time_matches_analytic_overlap(self, library):
        """Two groups, overlap policy: group B's copy runs concurrently
        with group A's execution, so hidden time is min(copy, exec)."""
        a, b = library.experts[0], library.experts[1]
        reqs = [EngineRequest(0, a), EngineRequest(1, b)]
        engine = ServingEngine(
            sn40l_platform(), library, policy="overlap", max_batch=1
        )
        report = engine.run(reqs)
        switch_spans = report.timeline.spans("switch")
        assert len(switch_spans) == 2  # cold copies of A then B
        copy_b = switch_spans[1]
        exec_a = next(c for c in report.completed if c.expert == a.name)
        expected = min(copy_b.duration_s, exec_a.finish_s - exec_a.start_s)
        assert report.hidden_switch_s == pytest.approx(expected, rel=1e-9)

    def test_overlap_run_has_switch_concurrent_with_decode(self, library):
        """Regression: a switch span really overlaps the previous group's
        decode span in sim time (the PR 1 behaviour the old serialized
        trace export could not show)."""
        stream = zipf_request_stream(library, 48, alpha=1.1, seed=7)
        report = ServingEngine(
            sn40l_platform(), library, policy="overlap"
        ).run(stream)
        decodes = report.timeline.spans("compute", category="decode")
        assert any(
            switch.overlap_s(decode) > 0
            for switch in report.timeline.spans("switch")
            for decode in decodes
        )

    def test_serial_policies_hide_nothing_on_the_timeline(self, library, stream):
        report = ServingEngine(sn40l_platform(), library, policy="fifo").run(
            stream
        )
        assert report.timeline.overlap_s("switch", "compute") == 0.0

    def test_speculative_copies_live_on_the_prefetch_lane(self, library):
        platform = sn40l_platform()
        hot = library.experts[0]
        rotation = library.experts[1:4]
        reqs = []
        for i in range(32):
            expert = hot if i % 2 == 0 else rotation[(i // 2) % 3]
            reqs.append(EngineRequest(i, expert))
        budget = 3 * hot.weight_bytes
        reserved = platform.hbm_capacity_bytes - budget
        report = ServingEngine(
            platform, library, policy="overlap", max_batch=1, window=1,
            reserved_hbm_bytes=reserved,
        ).run(reqs)
        prefetches = report.timeline.spans("prefetch")
        assert len(prefetches) == report.speculative_prefetches
        assert all(s.category == "prefetch" for s in prefetches)


class TestReportEdgeCases:
    def test_zero_completions_report_has_no_division_error(self, library, stream):
        """A node that crashes before starting any group still reports."""
        # Fault paths run event-by-event (batching is disabled under
        # faults), so simulate the crash on the reference path.
        engine = ServingEngine(
            sn40l_platform(), library, policy="fifo", event_batching=False
        )
        engine._begin_next = engine.halt  # fail-stop before the first group
        report = engine.run(stream)
        assert report.requests == 0
        assert report.completed == ()
        assert report.mean_s == 0.0
        assert report.p50_s == report.p95_s == report.p99_s == 0.0
        assert report.to_dict()["mean_s"] == 0.0

    def test_report_carries_cache_policy_and_demand_hit_rate(
        self, library, stream
    ):
        engine = ServingEngine(sn40l_platform(), library, policy="overlap",
                               cache_policy="lfu")
        report = engine.run(stream)
        assert report.cache_policy == "lfu"
        assert 0.0 <= report.demand_hit_rate <= 1.0
        payload = report.to_dict()
        assert payload["cache_policy"] == "lfu"
        assert payload["demand_hit_rate"] == report.demand_hit_rate

    def test_default_cache_policy_is_lru(self, library, stream):
        report = ServingEngine(sn40l_platform(), library).run(stream)
        assert report.cache_policy == "lru"


class TestDemandAccounting:
    def test_one_demand_activation_per_group(self, library, stream):
        """Prefetches and warms are speculative: the runtime's demand
        request count is exactly the number of groups served."""
        for policy in POLICIES:
            engine = ServingEngine(sn40l_platform(), library, policy=policy)
            report = engine.run(stream)
            stats = engine.server.runtime.stats
            assert stats.requests == report.groups
            assert stats.hits + stats.misses == report.groups

    def test_speculative_copies_booked_separately(self, library):
        # A resident-next pipeline with spare DMA time speculates; those
        # copies must land in the speculative counters only.
        stream = zipf_request_stream(library, 64, alpha=1.5, seed=3)
        engine = ServingEngine(sn40l_platform(), library, policy="overlap")
        engine.run(stream)
        stats = engine.server.runtime.stats
        if engine.speculative_prefetches:
            assert stats.speculative_requests > 0
        assert stats.bytes_up + stats.speculative_bytes_up > 0
