"""Admission-time scheduler registry and ordering semantics."""

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.coe.policies import SchedulerName
from repro.coe.scheduling import (
    SCHEDULERS,
    ExpertReorderScheduler,
    FifoScheduler,
    Request,
    Scheduler,
    affinity_schedule,
    make_scheduler,
)


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(24)


def _interleaved(library, copies=5, experts=6):
    reqs = []
    rid = 0
    for _ in range(copies):
        for idx in range(experts):
            reqs.append(Request(rid, library.experts[idx]))
            rid += 1
    return reqs


class TestRegistry:
    def test_registry_lists_every_name(self):
        assert SCHEDULERS == ("fifo", "expert_reorder")
        assert SCHEDULERS == SchedulerName.values()

    def test_make_by_name(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("expert_reorder"),
                          ExpertReorderScheduler)

    def test_make_by_enum(self):
        sched = make_scheduler(SchedulerName.EXPERT_REORDER)
        assert isinstance(sched, ExpertReorderScheduler)

    def test_none_means_fifo(self):
        assert isinstance(make_scheduler(None), FifoScheduler)
        assert isinstance(make_scheduler(), FifoScheduler)

    def test_instance_passthrough(self):
        sched = ExpertReorderScheduler(horizon=8)
        assert make_scheduler(sched) is sched

    def test_factory(self):
        sched = make_scheduler(lambda: ExpertReorderScheduler(horizon=4))
        assert isinstance(sched, ExpertReorderScheduler)
        assert sched.horizon == 4

    def test_factory_returning_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="expected a Scheduler"):
            make_scheduler(lambda: object())

    def test_unknown_name_names_valid_members(self):
        with pytest.raises(ValueError, match="'fifo', 'expert_reorder'"):
            make_scheduler("sjf")

    def test_garbage_spec_rejected(self):
        with pytest.raises(TypeError, match="cannot make a scheduler"):
            make_scheduler(42)

    def test_names_match_registry_keys(self):
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Scheduler().order([])


class TestFifoScheduler:
    def test_preserves_arrival_order(self, library):
        reqs = _interleaved(library)
        assert FifoScheduler().order(reqs) == reqs

    def test_returns_a_copy(self, library):
        reqs = _interleaved(library)
        out = FifoScheduler().order(reqs)
        out.pop()
        assert len(reqs) == 30


class TestExpertReorderScheduler:
    def test_groups_by_expert_within_horizon(self, library):
        reqs = _interleaved(library, copies=5, experts=6)
        out = ExpertReorderScheduler(horizon=30).order(reqs)
        # Every expert's requests now form one contiguous run.
        seen = []
        for req in out:
            if not seen or seen[-1] != req.expert.name:
                seen.append(req.expert.name)
        assert len(seen) == 6

    def test_matches_affinity_schedule_with_horizon_window(self, library):
        reqs = _interleaved(library)
        sched = ExpertReorderScheduler(horizon=12)
        assert sched.order(reqs) == affinity_schedule(reqs, window=12)

    def test_permutation_not_mutation(self, library):
        reqs = _interleaved(library)
        out = ExpertReorderScheduler(horizon=30).order(reqs)
        assert sorted(r.request_id for r in out) == \
            [r.request_id for r in reqs]

    def test_horizon_bounds_delay(self, library):
        # With horizon=6 (one interleave period) no request moves more
        # than horizon - 1 positions.
        reqs = _interleaved(library, copies=4, experts=6)
        out = ExpertReorderScheduler(horizon=6).order(reqs)
        for pos, req in enumerate(out):
            assert abs(pos - req.request_id) < 6

    def test_stateless_reuse(self, library):
        reqs = _interleaved(library)
        sched = ExpertReorderScheduler(horizon=16)
        assert sched.order(reqs) == sched.order(reqs)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon must be >= 1"):
            ExpertReorderScheduler(horizon=0)

    def test_repr_shows_horizon(self):
        assert "horizon=9" in repr(ExpertReorderScheduler(horizon=9))
