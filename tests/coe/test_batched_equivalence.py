"""Property test: the batched fast path IS the event-by-event reference.

``event_batching=True`` (the default) drains a node's whole queue in
one simulator event with a local clock; ``event_batching=False`` is the
seed-equivalent reference — one begin/finish event pair per group, the
heap popped one event at a time. The two must be indistinguishable in
every observable: report stats (including the logical ``events_run``
count), completed-request records, and the byte-level timeline — across
scheduling policies, cache policies, and randomized workloads.

Timelines are compared per lane over sorted lane names: the batched
path may *create* lanes in a different order (spans for a whole drain
are recorded together), which is an artifact of dict insertion order,
not of the simulation.
"""

import random

import pytest

from repro.coe.cluster_engine import ClusterEngine, run_cluster
from repro.coe.decisions import DecisionLog
from repro.coe.engine import ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

DRAIN_MODES = ("reference", "batched", "columnar")


def _timeline_lanes(timeline):
    """Per-lane span tuples keyed by lane name, order-insensitive
    across lanes, order-preserving within a lane."""
    if timeline is None:
        return None
    lanes = {}
    for span in timeline.spans():
        lanes.setdefault(span.lane, []).append(
            (span.name, span.category, span.start_s, span.end_s,
             repr(sorted(span.args.items())))
        )
    return {lane: lanes[lane] for lane in sorted(lanes)}


def _random_workload(rng):
    library = build_samba_coe_library(rng.randrange(24, 64))
    requests = zipf_request_stream(
        library,
        rng.randrange(150, 400),
        alpha=rng.uniform(1.05, 1.4),
        seed=rng.randrange(1 << 30),
        output_tokens=rng.randrange(4, 32),
    )
    return library, requests


@pytest.mark.parametrize("policy", ["fifo", "affinity", "overlap"])
@pytest.mark.parametrize("cache_policy", ["lru", "lfu", "gdsf"])
def test_engine_batched_equals_reference(policy, cache_policy):
    rng = random.Random(f"engine:{policy}:{cache_policy}")
    library, requests = _random_workload(rng)

    def run(batching):
        engine = ServingEngine(
            sn40l_platform(), library, policy=policy,
            max_batch=rng_max_batch, window=rng_window,
            cache_policy=cache_policy, event_batching=batching,
        )
        return engine.run(requests)

    rng_max_batch = rng.randrange(1, 12)
    rng_window = rng.randrange(1, 32)
    fast, reference = run(True), run(False)

    assert fast.to_dict() == reference.to_dict()
    assert fast.events_run == reference.events_run
    assert fast.completed == reference.completed
    assert _timeline_lanes(fast.timeline) == _timeline_lanes(
        reference.timeline
    )


@pytest.mark.parametrize("policy", ["least_loaded", "affinity", "steal"])
@pytest.mark.parametrize("num_nodes", [2, 4])
def test_cluster_batched_equals_reference(policy, num_nodes):
    # ``steal`` disables batching internally (its hooks interleave with
    # the queues), so that axis pins the gate itself: asking for
    # batching under steal must still reproduce the reference exactly.
    rng = random.Random(f"cluster:{policy}:{num_nodes}")
    library, requests = _random_workload(rng)

    def run(batching):
        return run_cluster(
            sn40l_platform, library, requests, num_nodes=num_nodes,
            policy=policy, online_replication=policy == "steal",
            event_batching=batching,
        )

    fast, reference = run(True), run(False)

    assert fast.to_dict() == reference.to_dict()
    assert fast.events_run == reference.events_run
    assert _timeline_lanes(fast.timeline) == _timeline_lanes(
        reference.timeline
    )


def test_cluster_deadline_shedding_batched_equals_reference():
    rng = random.Random("deadline")
    library, requests = _random_workload(rng)
    makespan = run_cluster(
        sn40l_platform, library, requests, num_nodes=2,
        policy="least_loaded",
    ).makespan_s

    def run(batching):
        return run_cluster(
            sn40l_platform, library, requests, num_nodes=2,
            policy="least_loaded", deadline_s=0.5 * makespan,
            event_batching=batching,
        )

    fast, reference = run(True), run(False)
    assert fast.rejected > 0
    assert fast.to_dict() == reference.to_dict()
    assert _timeline_lanes(fast.timeline) == _timeline_lanes(
        reference.timeline
    )


def test_cluster_untraced_batched_matches_traced_reference_metrics():
    """``record_timeline=False`` (the sweep fast path) must leave every
    simulated metric identical — only timeline-derived per-node fields
    (busy/switch seconds) and the trace itself go dark."""
    rng = random.Random("untraced")
    library, requests = _random_workload(rng)

    def run(batching, record):
        return run_cluster(
            sn40l_platform, library, requests, num_nodes=4,
            policy="affinity", event_batching=batching,
            record_timeline=record,
        )

    fast, reference = run(True, False), run(False, True)
    assert fast.timeline is None
    assert fast.events_run == reference.events_run
    assert fast.makespan_s == reference.makespan_s
    assert fast.tokens_per_second == reference.tokens_per_second
    # load_imbalance derives from per-node busy seconds, which are
    # timeline-derived — dark in the untraced run along with the trace.
    skip = {"nodes", "timeline", "load_imbalance"}
    fast_d = {k: v for k, v in fast.to_dict().items() if k not in skip}
    ref_d = {k: v for k, v in reference.to_dict().items() if k not in skip}
    assert fast_d == ref_d


@pytest.mark.parametrize("policy", ["fifo", "affinity", "overlap"])
@pytest.mark.parametrize("cache_policy", ["lru", "lfu", "gdsf"])
@pytest.mark.parametrize("record", [True, False], ids=["traced", "untraced"])
def test_engine_three_way_equivalence(policy, cache_policy, record):
    """reference == batched == columnar, byte for byte.

    Reports, completion records, event counts, timelines, and the cache
    DecisionLog must all agree. ``traced`` pins the columnar fallback
    (timelines force the batched drain internally); ``untraced`` with a
    non-overlap policy exercises the real columnar core.
    """
    rng = random.Random(f"threeway:{policy}:{cache_policy}:{record}")
    library, requests = _random_workload(rng)
    max_batch = rng.randrange(1, 12)
    window = rng.randrange(1, 32)

    def run(mode):
        log = DecisionLog()
        report = ServingEngine(
            sn40l_platform(), library, policy=policy,
            max_batch=max_batch, window=window,
            cache_policy=cache_policy, drain_mode=mode,
            record_timeline=record, decision_log=log,
        ).run(requests)
        return report, log

    reference, reference_log = run("reference")
    for mode in ("batched", "columnar"):
        report, log = run(mode)
        assert report.to_dict() == reference.to_dict(), mode
        assert report.completed == reference.completed, mode
        assert report.events_run == reference.events_run, mode
        assert _timeline_lanes(report.timeline) == _timeline_lanes(
            reference.timeline
        ), mode
        assert log == reference_log, (mode, log.diff(reference_log))


@pytest.mark.parametrize("policy", ["least_loaded", "affinity", "steal"])
@pytest.mark.parametrize("record", [True, False], ids=["traced", "untraced"])
def test_cluster_three_way_equivalence(policy, record):
    """Cluster-level three-way identity, decision log included.

    ``steal`` forces the reference drain internally, so that axis pins
    the fallback gate; the others exercise batched and columnar drains
    per node.
    """
    rng = random.Random(f"cluster3:{policy}:{record}")
    library, requests = _random_workload(rng)

    def run(mode):
        log = DecisionLog()
        report = ClusterEngine(
            sn40l_platform, library, num_nodes=3, policy=policy,
            online_replication=policy == "steal", drain_mode=mode,
            record_timeline=record, decision_log=log,
        ).serve(requests)
        return report, log

    reference, reference_log = run("reference")
    skip = {"nodes", "timeline", "load_imbalance"}
    for mode in ("batched", "columnar"):
        report, log = run(mode)
        if record:
            assert report.to_dict() == reference.to_dict(), mode
            assert _timeline_lanes(report.timeline) == _timeline_lanes(
                reference.timeline
            ), mode
        else:
            got = {k: v for k, v in report.to_dict().items() if k not in skip}
            want = {k: v for k, v in reference.to_dict().items()
                    if k not in skip}
            assert got == want, mode
        assert report.events_run == reference.events_run, mode
        assert log == reference_log, (mode, log.diff(reference_log))


def test_randomized_drain_mode_fuzz():
    """Seeded fuzz over the three-way config space beyond the fixed grid."""
    rng = random.Random(20260809)
    for trial in range(6):
        policy = rng.choice(["fifo", "affinity", "overlap"])
        cache = rng.choice(["lru", "lfu", "gdsf", "predictive"])
        record = rng.random() < 0.5
        library, requests = _random_workload(rng)
        reports = {}
        for mode in DRAIN_MODES:
            reports[mode] = ServingEngine(
                sn40l_platform(), library, policy=policy, cache_policy=cache,
                drain_mode=mode, record_timeline=record,
            ).run(requests)
        key = (trial, policy, cache, record)
        for mode in ("batched", "columnar"):
            assert reports[mode].to_dict() == reports["reference"].to_dict(), (
                key, mode)
            assert reports[mode].completed == reports["reference"].completed, (
                key, mode)
            assert _timeline_lanes(reports[mode].timeline) == _timeline_lanes(
                reports["reference"].timeline
            ), (key, mode)


def _tier_caps(library, hbm_frac=0.5, ddr_frac=0.75):
    """Constrained-memory capacities as fractions of the working set."""
    working_set = sum(e.weight_bytes for e in library.experts)
    biggest = max(e.weight_bytes for e in library.experts)
    hbm = max(int(hbm_frac * working_set), biggest)
    return {"hbm": hbm, "ddr": max(int(ddr_frac * working_set), hbm)}


@pytest.mark.parametrize("cache_policy", ["lru", "lfu", "gdsf"])
def test_engine_three_way_equivalence_tiered(cache_policy):
    """The three-way identity holds with the full memory hierarchy on:
    a 3-tier capacity ladder (NVMe promotions in play) and the
    expert-reorder admission scheduler."""
    rng = random.Random(f"tiered:{cache_policy}")
    library, requests = _random_workload(rng)
    caps = _tier_caps(library)

    def run(mode):
        log = DecisionLog()
        report = ServingEngine(
            sn40l_platform(), library, policy="affinity",
            cache_policy=cache_policy, drain_mode=mode,
            scheduler="expert_reorder", tier_capacities=caps,
            decision_log=log,
        ).run(requests)
        return report, log

    reference, reference_log = run("reference")
    assert reference.scheduler == "expert_reorder"
    for mode in ("batched", "columnar"):
        report, log = run(mode)
        assert report.to_dict() == reference.to_dict(), mode
        assert report.completed == reference.completed, mode
        assert _timeline_lanes(report.timeline) == _timeline_lanes(
            reference.timeline
        ), mode
        assert log == reference_log, (mode, log.diff(reference_log))


@pytest.mark.parametrize("cache_policy", ["gdsf", "lookahead"])
def test_engine_three_way_equivalence_pipelined(cache_policy):
    """The three-way identity holds with pipelined NVMe->DDR promotions
    on (and with the lookahead policy, which — like pipelining — forces
    the columnar mode's per-drain fallback to the batched path)."""
    rng = random.Random(f"pipelined:{cache_policy}")
    library, requests = _random_workload(rng)
    caps = _tier_caps(library, hbm_frac=0.4, ddr_frac=0.55)

    def run(mode):
        log = DecisionLog()
        report = ServingEngine(
            sn40l_platform(), library, policy="affinity",
            cache_policy=cache_policy, drain_mode=mode,
            scheduler="expert_reorder", tier_capacities=caps,
            decision_log=log, pipeline_promotions=True,
        ).run(requests)
        return report, log

    reference, reference_log = run("reference")
    assert reference.pipelined_promotions > 0
    for mode in ("batched", "columnar"):
        report, log = run(mode)
        assert report.to_dict() == reference.to_dict(), mode
        assert report.completed == reference.completed, mode
        assert _timeline_lanes(report.timeline) == _timeline_lanes(
            reference.timeline
        ), mode
        assert log == reference_log, (mode, log.diff(reference_log))


@pytest.mark.parametrize("policy", ["least_loaded", "affinity"])
def test_cluster_three_way_equivalence_tiered(policy):
    rng = random.Random(f"cluster-tiered:{policy}")
    library, requests = _random_workload(rng)
    caps = _tier_caps(library)

    def run(mode):
        log = DecisionLog()
        report = ClusterEngine(
            sn40l_platform, library, num_nodes=3, policy=policy,
            drain_mode=mode, scheduler="expert_reorder",
            tier_capacities=caps, decision_log=log,
        ).serve(requests)
        return report, log

    reference, reference_log = run("reference")
    assert reference.scheduler == "expert_reorder"
    for mode in ("batched", "columnar"):
        report, log = run(mode)
        assert report.to_dict() == reference.to_dict(), mode
        assert report.events_run == reference.events_run, mode
        assert _timeline_lanes(report.timeline) == _timeline_lanes(
            reference.timeline
        ), mode
        assert log == reference_log, (mode, log.diff(reference_log))


def test_randomized_tiered_drain_fuzz():
    """Seeded fuzz with the hierarchy and scheduler axes in the mix."""
    rng = random.Random(20260810)
    for trial in range(4):
        cache = rng.choice(["lru", "lfu", "gdsf"])
        scheduler = rng.choice(["fifo", "expert_reorder"])
        library, requests = _random_workload(rng)
        caps = _tier_caps(library, hbm_frac=rng.uniform(0.2, 0.8),
                          ddr_frac=rng.uniform(0.8, 1.2))
        reports = {}
        for mode in DRAIN_MODES:
            reports[mode] = ServingEngine(
                sn40l_platform(), library, policy="affinity",
                cache_policy=cache, drain_mode=mode, scheduler=scheduler,
                tier_capacities=caps,
            ).run(requests)
        key = (trial, cache, scheduler)
        for mode in ("batched", "columnar"):
            assert reports[mode].to_dict() == reports["reference"].to_dict(), (
                key, mode)
            assert reports[mode].completed == reports["reference"].completed, (
                key, mode)


def test_sim_live_cross_check_with_hierarchy_and_scheduler():
    """The sim/live decision cross-check holds with the whole PR on:
    3-tier capacities, NVMe promotions, and expert reordering."""
    from repro.coe.api import ServeConfig
    from repro.coe.crosscheck import cross_check
    from repro.load import ArrivalSpec, generate_trace

    library = build_samba_coe_library(16)
    spec = ArrivalSpec(rate_rps=40.0, duration_s=2.0, zipf_alpha=1.1, seed=11)
    requests = generate_trace(spec, library).to_requests(library)
    config = ServeConfig(
        policy="affinity", cluster_policy="least_loaded", mode="live",
        num_nodes=2, scheduler="expert_reorder",
        tier_capacities=_tier_caps(library),
    )
    result = cross_check(sn40l_platform, library, requests, config)
    assert result.match, result.mismatch
    assert result.decisions > 0


def test_randomized_seeds_sweep():
    """A seeded fuzz over the config space beyond the fixed grid."""
    rng = random.Random(20260808)
    for trial in range(6):
        policy = rng.choice(["fifo", "affinity", "overlap"])
        cache = rng.choice(["lru", "lfu", "gdsf", "predictive"])
        library, requests = _random_workload(rng)
        fast = ServingEngine(
            sn40l_platform(), library, policy=policy, cache_policy=cache,
            event_batching=True,
        ).run(requests)
        reference = ServingEngine(
            sn40l_platform(), library, policy=policy, cache_policy=cache,
            event_batching=False,
        ).run(requests)
        assert fast.to_dict() == reference.to_dict(), (trial, policy, cache)
        assert fast.completed == reference.completed, (trial, policy, cache)
        assert _timeline_lanes(fast.timeline) == _timeline_lanes(
            reference.timeline
        ), (trial, policy, cache)
