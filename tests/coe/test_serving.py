"""End-to-end CoE serving."""

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import ExpertServer
from repro.systems.platforms import dgx_a100_platform, sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(100)


class TestServeBreakdown:
    def test_latency_components_sum(self, library):
        server = ExpertServer(sn40l_platform(), library)
        result = server.serve_prompts(["write a python sort function"])
        req = result.requests[0]
        assert req.total_s == pytest.approx(
            req.router_s + req.switch_s + req.prefill_s + req.decode_s
        )

    def test_repeat_expert_hits_the_cache(self, library):
        server = ExpertServer(sn40l_platform(), library)
        expert = library.experts[0]
        first = server.serve_experts([expert])
        second = server.serve_experts([expert])
        assert first.switch_s > 0
        assert second.switch_s == 0.0

    def test_batch_of_8_copies_up_to_8_experts(self, library):
        server = ExpertServer(sn40l_platform(), library)
        experts = library.experts[:8]
        result = server.serve_experts(experts)
        assert result.batch_size == 8
        assert server.runtime.stats.misses == 8

    def test_more_tokens_shrinks_switch_fraction(self, library):
        expert = library.experts[3]
        short_server = ExpertServer(sn40l_platform(), library)
        long_server = ExpertServer(sn40l_platform(), library)
        short = short_server.serve_experts([expert], output_tokens=20)
        long = long_server.serve_experts([expert], output_tokens=200)
        assert long.switch_fraction < short.switch_fraction


class TestCrossPlatform:
    def test_sn40l_switches_much_faster_than_dgx(self, library):
        expert = library.experts[0]
        sn = ExpertServer(sn40l_platform(), library).serve_experts([expert])
        dgx = ExpertServer(dgx_a100_platform(), library).serve_experts([expert])
        assert dgx.switch_s / sn.switch_s > 25  # paper: ~31x

    def test_sn40l_total_latency_wins(self, library):
        experts = library.experts[:4]
        sn = ExpertServer(sn40l_platform(), library).serve_experts(experts)
        dgx = ExpertServer(dgx_a100_platform(), library).serve_experts(experts)
        assert sn.total_s < dgx.total_s

    def test_reservation_larger_than_hbm_rejected(self, library):
        with pytest.raises(ValueError):
            ExpertServer(sn40l_platform(), library,
                      reserved_hbm_bytes=10**15)


class TestTextServing:
    def test_prompts_route_and_serve(self, library):
        server = ExpertServer(sn40l_platform(), library)
        result = server.serve_prompts(
            ["fix this python bug", "translate to german: hello"],
            output_tokens=5,
        )
        assert result.batch_size == 2
        experts = {r.expert for r in result.requests}
        assert len(experts) == 2  # different domains -> different experts

    def test_empty_batch_rejected(self, library):
        server = ExpertServer(sn40l_platform(), library)
        with pytest.raises(ValueError):
            server.serve_prompts([])
