"""Serving metrics."""

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.coe.metrics import compute_metrics, metrics_of, percentile
from repro.coe.serving import ExpertServer, RequestLatency
from repro.systems.platforms import sn40l_platform


class TestPercentile:
    def test_nearest_rank_convention(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 0) == 1.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)


def _request(total, switch=0.0):
    return RequestLatency(expert="e", router_s=0.01, switch_s=switch,
                          prefill_s=0.02, decode_s=total - 0.03 - switch)


class TestComputeMetrics:
    def test_aggregates_one_stream(self):
        requests = [_request(0.1 * (i + 1)) for i in range(10)]
        metrics = compute_metrics(requests, output_tokens_per_request=20)
        assert metrics.requests == 10
        assert metrics.output_tokens == 200
        assert metrics.p50_s == pytest.approx(0.5)
        assert metrics.p99_s == pytest.approx(1.0)
        assert metrics.total_s == pytest.approx(sum(0.1 * (i + 1) for i in range(10)))

    def test_ttft_excludes_decode(self):
        requests = [_request(1.0, switch=0.5)]
        metrics = compute_metrics(requests, 20)
        assert metrics.mean_ttft_s == pytest.approx(0.01 + 0.5 + 0.02)

    def test_rates(self):
        requests = [_request(0.5), _request(0.5)]
        metrics = compute_metrics(requests, 10)
        assert metrics.requests_per_second == pytest.approx(2.0)
        assert metrics.tokens_per_second == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics([], 20)


class TestEndToEnd:
    def test_metrics_of_served_batch(self):
        library = build_samba_coe_library(20)
        server = ExpertServer(sn40l_platform(), library)
        result = server.serve_experts(library.experts[:5], output_tokens=10)
        metrics = metrics_of(result, output_tokens_per_request=10)
        assert metrics.requests == 5
        assert metrics.p99_s >= metrics.p50_s >= 0
        assert "req/s" in metrics.summary()

    def test_cache_hits_shrink_p50(self):
        library = build_samba_coe_library(10)
        server = ExpertServer(sn40l_platform(), library)
        expert = library.experts[0]
        cold = server.serve_experts([expert], output_tokens=10)
        warm = server.serve_experts([expert] * 5, output_tokens=10)
        cold_metrics = metrics_of(cold, 10)
        warm_metrics = metrics_of(warm, 10)
        assert warm_metrics.p50_s < cold_metrics.p50_s
