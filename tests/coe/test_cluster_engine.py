"""The cluster serving engine: shared-clock dispatch, stealing, replication."""

import json

import pytest

from repro.coe.cluster_engine import (
    CLUSTER_POLICIES,
    ClusterEngine,
    cluster_lanes,
    run_cluster,
    scaling_sweep,
)
from repro.coe.engine import ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(32)


@pytest.fixture(scope="module")
def stream(library):
    return zipf_request_stream(library, 96, alpha=1.1, seed=7)


@pytest.fixture(scope="module")
def steal_report(library, stream):
    return run_cluster(
        sn40l_platform, library, stream, num_nodes=4, policy="steal"
    )


class TestConstruction:
    def test_rejects_unknown_policy(self, library):
        with pytest.raises(ValueError, match="unknown ClusterPolicy"):
            ClusterEngine(sn40l_platform, library, 2, policy="random")

    def test_rejects_bad_node_count(self, library):
        with pytest.raises(ValueError, match="num_nodes"):
            ClusterEngine(sn40l_platform, library, 0)

    def test_rejects_bad_replication_depth(self, library):
        with pytest.raises(ValueError, match="replication_depth"):
            ClusterEngine(sn40l_platform, library, 2, replication_depth=0)

    def test_rejects_empty_backlog(self, library):
        engine = ClusterEngine(sn40l_platform, library, 2)
        with pytest.raises(ValueError, match="empty"):
            engine.serve([])

    def test_empty_shards_dropped_names_dense(self):
        small = build_samba_coe_library(3)
        engine = ClusterEngine(sn40l_platform, small, 3)
        assert [n.name for n in engine.nodes] == ["node0", "node1", "node2"]

    def test_nodes_share_one_simulator(self, library):
        engine = ClusterEngine(sn40l_platform, library, 4)
        assert all(n.engine._sim is engine.sim for n in engine.nodes)
        assert {n.engine.lane_prefix for n in engine.nodes} == {
            "node0/", "node1/", "node2/", "node3/",
        }


class TestCompletion:
    def test_every_request_completes_exactly_once(self, library, stream):
        for policy in CLUSTER_POLICIES:
            report = run_cluster(
                sn40l_platform, library, stream, num_nodes=4, policy=policy
            )
            assert report.requests == len(stream)
            engine = ClusterEngine(sn40l_platform, library, 4, policy=policy)
            engine.serve(stream)
            ids = [c.request_id for c in engine.completed_requests()]
            assert sorted(ids) == sorted(r.request_id for r in stream)

    def test_single_node_matches_standalone_engine(self, library, stream):
        cluster = run_cluster(
            sn40l_platform, library, stream, num_nodes=1, policy="steal"
        )
        standalone = ServingEngine(
            sn40l_platform(), library, policy="overlap"
        ).run(stream)
        assert cluster.makespan_s == pytest.approx(standalone.makespan_s)
        assert cluster.output_tokens == standalone.output_tokens

    def test_makespan_covers_every_span(self, steal_report):
        last = max(s.end_s for s in steal_report.timeline.spans())
        assert steal_report.makespan_s == pytest.approx(last)


class TestTimelineLanes:
    def test_per_node_lanes_recorded(self, steal_report):
        lanes = set(steal_report.timeline.lanes)
        for idx in range(4):
            assert f"node{idx}/compute" in lanes
        assert lanes <= set(cluster_lanes(4))

    def test_cross_node_compute_overlap(self, steal_report):
        """Nodes genuinely run concurrently on the shared clock."""
        tl = steal_report.timeline
        assert tl.overlap_s("node0/compute", "node1/compute") > 0

    def test_tokens_per_second_is_sum_of_node_rates(self, steal_report):
        """Cluster throughput must equal the sum of per-node rates derived
        from the same timeline — the report cannot drift from the trace."""
        assert steal_report.tokens_per_second == pytest.approx(
            sum(n.tokens_per_second for n in steal_report.nodes)
        )
        assert steal_report.output_tokens == sum(
            n.output_tokens for n in steal_report.nodes
        )

    def test_node_stats_derive_from_timeline(self, steal_report):
        tl = steal_report.timeline
        for node in steal_report.nodes:
            assert node.busy_s == pytest.approx(
                tl.busy_s(f"{node.name}/compute")
            )
            assert node.switch_s == pytest.approx(
                tl.busy_s(f"{node.name}/switch")
            )


class TestStealingAndReplication:
    def test_skewed_traffic_triggers_steals_and_replication(self, steal_report):
        assert steal_report.steals > 0
        assert steal_report.replications > 0
        assert sum(n.steals_in for n in steal_report.nodes) == steal_report.steals
        assert (sum(n.replicas_hosted for n in steal_report.nodes)
                == steal_report.replications)

    def test_replication_disabled_means_none(self, library, stream):
        report = run_cluster(
            sn40l_platform, library, stream, num_nodes=4,
            policy="steal", online_replication=False,
        )
        assert report.replications == 0

    def test_replication_pays_copy_on_receiving_node(self, library, stream):
        """A replica's DDR->HBM copy lands as a switch span on the node
        that received it — replication is never free."""
        engine = ClusterEngine(sn40l_platform, library, 4, policy="steal")
        report = engine.serve(stream)
        receivers = [n for n in engine.nodes if n.replicas_hosted > 0]
        assert receivers
        for node in receivers:
            assert report.timeline.busy_s(f"{node.name}/switch") > 0

    def test_stealing_beats_least_loaded_on_imbalance(self, library, stream):
        static = run_cluster(
            sn40l_platform, library, stream, num_nodes=4,
            policy="least_loaded",
        )
        stealing = run_cluster(
            sn40l_platform, library, stream, num_nodes=4, policy="steal"
        )
        assert stealing.load_imbalance <= static.load_imbalance
        assert stealing.makespan_s <= static.makespan_s

    def test_deterministic_across_runs(self, library, stream):
        a = run_cluster(sn40l_platform, library, stream, num_nodes=4)
        b = run_cluster(sn40l_platform, library, stream, num_nodes=4)
        assert a.makespan_s == b.makespan_s
        assert a.steals == b.steals
        assert a.replications == b.replications


class TestReporting:
    def test_to_dict_json_round_trip(self, steal_report):
        payload = json.loads(json.dumps(steal_report.to_dict()))
        assert payload["num_nodes"] == 4
        assert payload["requests"] == steal_report.requests
        assert len(payload["nodes"]) == 4
        assert payload["tokens_per_second"] == pytest.approx(
            steal_report.tokens_per_second
        )

    def test_scaling_sweep_covers_counts(self, library, stream):
        reports = scaling_sweep(
            sn40l_platform, library, stream, node_counts=(1, 2)
        )
        assert set(reports) == {1, 2}
        assert (reports[2].tokens_per_second
                >= reports[1].tokens_per_second)

    def test_cluster_lanes_order(self):
        assert cluster_lanes(2) == [
            "node0/compute", "node0/switch", "node0/prefetch", "node0/faults",
            "node1/compute", "node1/switch", "node1/prefetch", "node1/faults",
        ]
