"""Multi-tier CoERuntime: hierarchy costs, NVMe promotion, DDR demotion."""

import pytest

from repro.coe.expert import ExpertProfile
from repro.coe.runtime import CoERuntime
from repro.memory.hierarchy import EdgeCost, MemoryHierarchy, TierLevel
from repro.models.transformer import TransformerConfig

TINY = TransformerConfig("tiny", hidden=64, layers=2, heads=4, kv_heads=4,
                         intermediate=128, vocab=100)
EXPERT_BYTES = TINY.weight_bytes


def _expert(i, mutable=0.0):
    return ExpertProfile(f"e{i}", "chat", model=TINY, mutable_fraction=mutable)


def _hierarchy(hbm_experts=2, ddr_experts=3):
    return MemoryHierarchy(
        levels=(
            TierLevel("hbm", hbm_experts * EXPERT_BYTES),
            TierLevel("ddr", ddr_experts * EXPERT_BYTES),
            TierLevel("nvme", None),
        ),
        edges={
            ("ddr", "hbm"): EdgeCost(bandwidth=1e9),
            ("hbm", "ddr"): EdgeCost(bandwidth=1e9),
            ("nvme", "ddr"): EdgeCost(bandwidth=1e8),
            ("ddr", "nvme"): EdgeCost(bandwidth=1e8),
        },
    )


def _tiered(hbm_experts=2, ddr_experts=3, **kw):
    return CoERuntime(
        hbm_budget_bytes=hbm_experts * EXPERT_BYTES,
        hierarchy=_hierarchy(hbm_experts, ddr_experts),
        ddr_budget_bytes=ddr_experts * EXPERT_BYTES,
        **kw,
    )


class TestConstruction:
    def test_hierarchy_and_callables_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            CoERuntime(
                hbm_budget_bytes=EXPERT_BYTES,
                upgrade_time=lambda b: 0.0,
                hierarchy=_hierarchy(),
            )

    def test_one_cost_source_required(self):
        with pytest.raises(ValueError, match="needs a hierarchy"):
            CoERuntime(hbm_budget_bytes=EXPERT_BYTES)

    def test_ddr_budget_must_cover_hbm(self):
        with pytest.raises(ValueError, match="inclusive"):
            CoERuntime(
                hbm_budget_bytes=2 * EXPERT_BYTES,
                hierarchy=_hierarchy(),
                ddr_budget_bytes=EXPERT_BYTES,
            )

    def test_negative_ddr_budget_rejected(self):
        with pytest.raises(ValueError, match="negative DDR budget"):
            CoERuntime(
                hbm_budget_bytes=0,
                hierarchy=_hierarchy(),
                ddr_budget_bytes=-1,
            )

    def test_ddr_budget_needs_nvme_tier(self):
        two_level = MemoryHierarchy.from_edge_times(lambda b: 0.0)
        with pytest.raises(ValueError, match="nvme"):
            CoERuntime(
                hbm_budget_bytes=EXPERT_BYTES,
                hierarchy=two_level,
                ddr_budget_bytes=EXPERT_BYTES,
            )


class TestDeprecatedShims:
    def test_upgrade_time_warns_and_prices_ddr_to_hbm(self):
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES,
                        upgrade_time=lambda b: b / 1e9)
        with pytest.warns(DeprecationWarning, match="upgrade_time"):
            assert rt.upgrade_time(1000) == 1000 / 1e9

    def test_downgrade_time_warns_and_prices_hbm_to_ddr(self):
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES,
                        upgrade_time=lambda b: b / 1e9,
                        downgrade_time=lambda b: b / 5e8)
        with pytest.warns(DeprecationWarning, match="downgrade_time"):
            assert rt.downgrade_time(1000) == 1000 / 5e8

    def test_transfer_time_does_not_warn(self, recwarn):
        rt = _tiered()
        assert rt.transfer_time("ddr", "hbm", 1000) == 1000 / 1e9
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestPlacement:
    def test_unbounded_ddr_places_everything_on_ddr(self):
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES,
                        hierarchy=_hierarchy())
        experts = [_expert(i) for i in range(4)]
        assert set(rt.place(experts).values()) == {"ddr"}
        assert rt.ddr_resident_experts == []

    def test_bounded_ddr_fills_in_order_then_spills(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        placement = rt.place(experts)
        assert [placement[f"e{i}"] for i in range(5)] == \
            ["ddr", "ddr", "ddr", "nvme", "nvme"]
        assert rt.ddr_resident_experts == ["e0", "e1", "e2"]

    def test_tier_of_tracks_residency(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        rt.place(experts)
        rt.activate(experts[0])
        assert rt.tier_of("e0") == "hbm"
        assert rt.tier_of("e1") == "ddr"
        assert rt.tier_of("e4") == "nvme"


class TestMultiTierActivation:
    def test_ddr_miss_prices_single_hop(self):
        rt = _tiered()
        rt.place([_expert(i) for i in range(5)])
        event = rt.activate(_expert(0))
        assert not event.hit
        assert event.src_tier == "ddr"
        assert event.time_s == EXPERT_BYTES / 1e9
        assert rt.stats.tier_promotions == 0

    def test_nvme_miss_prices_two_hops_and_promotes(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        rt.place([_expert(i) for i in range(5)])
        event = rt.activate(_expert(4))
        assert event.src_tier == "nvme"
        # Promotion read (nvme->ddr + ddr->hbm) plus the demoted
        # victim's ddr->nvme write-back — demotions are not free.
        assert event.time_s == pytest.approx(
            EXPERT_BYTES / 1e8 + EXPERT_BYTES / 1e9 + EXPERT_BYTES / 1e8
        )
        assert rt.stats.tier_promotions == 1
        assert rt.stats.nvme_bytes_read == EXPERT_BYTES
        assert rt.stats.nvme_bytes_written == EXPERT_BYTES
        assert rt.stats.switch_time_s == pytest.approx(event.time_s)
        # e4 now has a DDR home; someone else was demoted to make room.
        assert "e4" in rt.ddr_resident_experts
        assert event.demoted == ("e0",)
        assert rt.stats.tier_demotions == 1
        assert rt.stats.tier_overruns == 0
        assert rt.tier_of("e0") == "nvme"

    def test_hbm_residents_are_never_demotion_victims(self):
        rt = _tiered(hbm_experts=2, ddr_experts=2)
        experts = [_expert(i) for i in range(4)]
        rt.place(experts)  # e0, e1 on DDR; e2, e3 on NVMe
        rt.activate(experts[0])
        rt.activate(experts[1])
        rt.activate(experts[0])  # HBM hit: refreshes HBM recency only,
        # so e0 is now DDR-LRU *and* HBM-resident — the pinning case.
        event = rt.activate(experts[2])  # evicts e1 from HBM, promotes e2
        # The DDR demotion scan must skip e0 (HBM needs its copy-back
        # target) despite it ranking first, and take e1 instead.
        assert event.demoted == ("e1",)
        assert set(rt.ddr_resident_experts) == {"e0", "e2"}

    def test_second_access_after_promotion_is_ddr_sourced(self):
        rt = _tiered(hbm_experts=1, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        rt.place(experts)
        assert rt.activate(experts[4]).src_tier == "nvme"
        rt.activate(experts[1])  # evicts e4 from HBM; its DDR home stays
        event = rt.activate(experts[4])
        assert event.src_tier == "ddr"
        assert rt.stats.tier_promotions == 1

    def test_hit_reports_hbm_source(self):
        rt = _tiered()
        rt.place([_expert(0)])
        rt.activate(_expert(0))
        event = rt.activate(_expert(0))
        assert event.hit and event.src_tier == "hbm" and event.demoted == ()

    def test_ddr_recency_refreshed_on_way_up(self):
        rt = _tiered(hbm_experts=1, ddr_experts=2)
        experts = [_expert(i) for i in range(4)]
        rt.place(experts)  # e0, e1 on DDR
        rt.activate(experts[1])  # DDR hit-on-the-way-up: e1 refreshed
        rt.activate(experts[2])  # e2 promoted; e1 evicted from HBM but
        # the LRU DDR victim must be e0 (stale), not e1 (refreshed).
        assert rt.tier_of("e0") == "nvme"
        assert "e1" in rt.ddr_resident_experts


class TestTierOverruns:
    def test_all_candidates_pinned_clamps_and_counts(self):
        # DDR budget == HBM budget: once HBM is full, every DDR resident
        # is an HBM copy-back target, so a pipelined promotion (which,
        # unlike a demand miss, evicts nothing from HBM) has no demotion
        # candidates at all.
        rt = _tiered(hbm_experts=2, ddr_experts=2)
        experts = [_expert(i) for i in range(3)]
        rt.place(experts)  # e0, e1 on DDR; e2 on NVMe
        rt.activate(experts[0])
        rt.activate(experts[1])  # HBM now holds e0, e1 — both DDR-pinned
        promo = rt.promote_to_ddr(experts[2])
        assert promo.demoted == ()
        assert rt.stats.tier_overruns == 1
        assert "e2" in rt.ddr_resident_experts  # clamped, oversubscribed

    def test_all_candidates_pinned_strict_raises(self):
        from repro.coe.runtime import TierOverrunError
        experts = [_expert(i) for i in range(3)]
        rt = _tiered(hbm_experts=2, ddr_experts=2, strict_tiers=True)
        rt.place(experts)
        rt.activate(experts[0])
        rt.activate(experts[1])
        ddr_before = rt.ddr_resident_experts
        with pytest.raises(TierOverrunError):
            rt.promote_to_ddr(experts[2])
        # Strict mode mutates nothing.
        assert rt.ddr_resident_experts == ddr_before
        assert rt.stats.tier_overruns == 0
        assert rt.stats.pipelined_promotions == 0

    def test_expert_larger_than_ddr_budget_clamps(self):
        # ddr_budget >= hbm_budget is enforced and activate() rejects
        # experts above the HBM budget, so the only route an oversized
        # expert can reach a bounded DDR tier is the pipelined path.
        big_model = TransformerConfig(
            "big", hidden=128, layers=4, heads=4, kv_heads=4,
            intermediate=256, vocab=100,
        )
        big = ExpertProfile("big", "chat", model=big_model)
        assert big.weight_bytes > EXPERT_BYTES
        rt = _tiered(hbm_experts=1, ddr_experts=1)
        assert rt.place([big]) == {"big": "nvme"}
        promo = rt.promote_to_ddr(big)
        # Nothing to demote — no amount of demotion makes it fit.
        assert promo.demoted == ()
        assert rt.stats.tier_demotions == 0
        assert rt.stats.tier_overruns == 1
        assert "big" in rt.ddr_resident_experts


class TestEdgeCases:
    def test_failed_copy_leaves_all_tiers_untouched(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        rt.place(experts)
        ddr_before = rt.ddr_resident_experts

        class ExplodingHierarchy:
            """Fails the NVMe read after the demotion plan is made."""

            def __init__(self, inner):
                self._inner = inner

            def transfer_time(self, src, dst, num_bytes):
                if src == "nvme":
                    raise RuntimeError("nvme read failed mid-promotion")
                return self._inner.transfer_time(src, dst, num_bytes)

        rt.hierarchy = ExplodingHierarchy(rt.hierarchy)
        with pytest.raises(RuntimeError, match="mid-promotion"):
            rt.activate(experts[4])
        assert rt.ddr_resident_experts == ddr_before
        assert rt.resident_experts == []
        assert rt.stats.failures == 1
        assert rt.stats.tier_promotions == 0
        assert rt.stats.tier_demotions == 0
        assert rt.stats.nvme_bytes_written == 0

    def test_demote_then_repromote_same_expert_in_one_drain(self):
        rt = _tiered(hbm_experts=1, ddr_experts=2)
        experts = [_expert(i) for i in range(4)]
        rt.place(experts)  # e0, e1 on DDR
        rt.activate(experts[2])  # promotes e2, demotes e0 (LRU)
        assert rt.tier_of("e0") == "nvme"
        event = rt.activate(experts[0])  # immediately re-promote e0
        assert event.src_tier == "nvme"
        assert "e0" in rt.ddr_resident_experts
        assert rt.stats.tier_promotions == 2
        # Round trip priced both ways: one read per promotion, one
        # write-back per demotion.
        assert rt.stats.nvme_bytes_read == 2 * EXPERT_BYTES
        assert rt.stats.tier_demotions == 2

    def test_pipelined_promotion_commits_and_prices(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        rt.place(experts)
        promo = rt.promote_to_ddr(experts[4])
        assert promo.time_s == pytest.approx(
            EXPERT_BYTES / 1e8 + EXPERT_BYTES / 1e8
        )
        assert promo.demoted == ("e0",)
        assert rt.stats.pipelined_promotions == 1
        assert rt.stats.tier_promotions == 0  # demand counter untouched
        assert rt.stats.switch_time_s == 0.0  # overlapped, not a stall
        # The demand miss that follows is DDR-sourced and single-hop.
        event = rt.activate(experts[4])
        assert event.src_tier == "ddr"
        assert event.time_s == pytest.approx(EXPERT_BYTES / 1e9)
        # Idempotent: a second promote of a DDR resident is a no-op.
        assert rt.promote_to_ddr(experts[4]).time_s == 0.0
        assert rt.stats.pipelined_promotions == 1

    def test_promote_to_ddr_requires_bounded_tier(self):
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES,
                        hierarchy=_hierarchy())
        with pytest.raises(ValueError, match="bounded DDR"):
            rt.promote_to_ddr(_expert(0))


class TestLegacyEquivalence:
    """An unconstrained 3-tier runtime is bitwise the legacy 2-tier one."""

    def test_trace_identical_without_ddr_budget(self):
        legacy = CoERuntime(hbm_budget_bytes=2 * EXPERT_BYTES,
                            upgrade_time=lambda b: b / 1e9)
        tiered = CoERuntime(hbm_budget_bytes=2 * EXPERT_BYTES,
                            hierarchy=_hierarchy(hbm_experts=2))
        experts = [_expert(i) for i in range(4)]
        tiered.place(experts)
        pattern = [0, 1, 2, 0, 3, 1, 0, 2, 3, 1]
        for idx in pattern:
            a = legacy.activate(experts[idx])
            b = tiered.activate(experts[idx])
            assert a == b  # full SwitchEvent tuples, times included
        assert legacy.stats == tiered.stats
        assert legacy.resident_experts == tiered.resident_experts

    def test_flush_preserves_lower_tier_placement(self):
        rt = _tiered(hbm_experts=2, ddr_experts=3)
        experts = [_expert(i) for i in range(5)]
        rt.place(experts)
        rt.activate(experts[4])
        homes = rt.ddr_resident_experts
        rt.flush()
        assert rt.resident_experts == []
        assert rt.ddr_resident_experts == homes
