"""The unified serving facade: ServeConfig, engine choice, deprecation."""

import dataclasses
import warnings

import pytest

import repro
from repro.coe.api import (
    ServeConfig,
    ServeModeError,
    Server,
    build_server,
    serve,
)
from repro.coe.cluster_engine import ClusterEngine, ClusterReport
from repro.coe.engine import EngineReport, ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.coe.policies import ClusterPolicy, NodePolicy, PolicyEnum, ServeMode
from repro.coe.serving import CoEServer, ExpertServer
from repro.load import ArrivalSpec
from repro.sim.faults import FaultSchedule, NodeCrash
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(16)


@pytest.fixture(scope="module")
def stream(library):
    return zipf_request_stream(library, 24, alpha=1.1, seed=7)


class TestPolicyEnums:
    def test_members_and_values(self):
        assert NodePolicy.values() == ("fifo", "affinity", "overlap")
        assert ClusterPolicy.values() == ("least_loaded", "affinity", "steal")

    def test_strings_coerce(self):
        assert NodePolicy.coerce("overlap") is NodePolicy.OVERLAP
        assert ClusterPolicy.coerce("steal") is ClusterPolicy.STEAL

    def test_members_pass_through(self):
        assert NodePolicy.coerce(NodePolicy.FIFO) is NodePolicy.FIFO

    def test_error_lists_valid_members(self):
        with pytest.raises(ValueError) as err:
            NodePolicy.coerce("bogus")
        message = str(err.value)
        assert "unknown NodePolicy 'bogus'" in message
        for value in NodePolicy.values():
            assert value in message

    def test_str_is_the_wire_value(self):
        assert str(NodePolicy.OVERLAP) == "overlap"
        assert f"{ClusterPolicy.STEAL}" == "steal"

    def test_both_are_policy_enums(self):
        assert issubclass(NodePolicy, PolicyEnum)
        assert issubclass(ClusterPolicy, PolicyEnum)


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.policy is NodePolicy.OVERLAP
        assert config.cluster_policy is ClusterPolicy.STEAL
        assert config.num_nodes == 1
        assert not config.wants_cluster

    def test_strings_coerce_to_enums(self):
        config = ServeConfig(policy="fifo", cluster_policy="affinity")
        assert config.policy is NodePolicy.FIFO
        assert config.cluster_policy is ClusterPolicy.AFFINITY

    def test_fault_specs_coerce_to_schedule(self):
        config = ServeConfig(num_nodes=4, faults=["node1:0.5"])
        assert isinstance(config.faults, FaultSchedule)
        assert config.faults.crashes == (NodeCrash(node=1, at_s=0.5),)

    def test_unknown_policy_rejected_with_members(self):
        with pytest.raises(ValueError, match="unknown NodePolicy.*overlap"):
            ServeConfig(policy="turbo")
        with pytest.raises(ValueError, match="unknown ClusterPolicy.*steal"):
            ServeConfig(cluster_policy="turbo")

    @pytest.mark.parametrize("kwargs", [
        {"num_nodes": 0},
        {"max_batch": 0},
        {"window": 0},
        {"replication_depth": 0},
        {"heartbeat_s": 0.0},
        {"deadline_s": 0.0},
    ])
    def test_bad_numbers_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_wants_cluster_on_nodes_faults_or_deadline(self):
        assert ServeConfig(num_nodes=2).wants_cluster
        assert ServeConfig(faults=["node0:1.0"], num_nodes=2).wants_cluster
        assert ServeConfig(deadline_s=1.0).wants_cluster
        assert not ServeConfig().wants_cluster

    def test_with_revalidates(self):
        config = ServeConfig().with_(num_nodes=4)
        assert config.num_nodes == 4
        with pytest.raises(ValueError):
            config.with_(num_nodes=-1)

    def test_pipelined_promotions_reject_overlap_policy(self):
        # overlap's speculative prefetches ignore DMA occupancy; sharing
        # the prefetch lane with pipelined promotions would double-book
        # the DMA, so the combination fails at config time.
        with pytest.raises(ValueError, match="overlap"):
            ServeConfig(policy="overlap", pipeline_promotions=True)
        config = ServeConfig(policy="fifo", pipeline_promotions=True)
        assert config.pipeline_promotions

    def test_to_dict_is_json_friendly(self):
        import json
        config = ServeConfig(policy="fifo", num_nodes=2,
                             faults=["node1:0.5"], deadline_s=2.0)
        payload = json.loads(json.dumps(config.to_dict()))
        assert payload["policy"] == "fifo"
        assert payload["faults"] == ["crash:node1:0.5"]
        assert payload["deadline_s"] == 2.0


class TestServeConfigSerialization:
    """to_dict / from_dict cover every field — none can silently drop."""

    def test_to_dict_covers_every_field(self):
        # A field added to ServeConfig without a to_dict entry would
        # silently vanish from provenance dumps; this pins the contract.
        payload = ServeConfig().to_dict()
        for f in dataclasses.fields(ServeConfig):
            assert f.name in payload, f"to_dict() is missing {f.name!r}"
        assert set(payload) == {f.name for f in dataclasses.fields(ServeConfig)}

    @pytest.mark.parametrize("config", [
        ServeConfig(),
        ServeConfig(policy="fifo", cluster_policy="affinity",
                    cache_policy="gdsf", num_nodes=4, max_batch=4,
                    window=8, online_replication=False,
                    replication_depth=2, max_replicas=3,
                    reserved_hbm_bytes=1 << 30,
                    faults=["node1:0.5", "slow:0:1.0:2.0"],
                    heartbeat_s=0.1, deadline_s=5.0),
        ServeConfig(policy="affinity", cluster_policy="least_loaded",
                    mode="live", num_nodes=2, max_queue=32,
                    time_scale=0.01, drain_timeout_s=5.0,
                    load=ArrivalSpec(process="bursty", rate_rps=10.0,
                                     duration_s=3.0, seed=9)),
        ServeConfig(scheduler="expert_reorder",
                    tier_capacities={"hbm": 1 << 30, "ddr": 1 << 32}),
        ServeConfig(policy="fifo", cache_policy="lookahead",
                    scheduler="expert_reorder",
                    tier_capacities={"hbm": 1 << 30, "ddr": 1 << 31},
                    pipeline_promotions=True),
    ])
    def test_round_trip_is_identity(self, config):
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_round_trip_survives_json(self):
        import json
        config = ServeConfig(mode="live", policy="affinity",
                             cluster_policy="least_loaded", max_queue=8,
                             load=ArrivalSpec(rate_rps=5.0, duration_s=1.0))
        wire = json.loads(json.dumps(config.to_dict()))
        assert ServeConfig.from_dict(wire) == config

    def test_from_dict_revalidates(self):
        payload = ServeConfig().to_dict()
        payload["num_nodes"] = 0
        with pytest.raises(ValueError):
            ServeConfig.from_dict(payload)

    def test_load_dict_coerces_to_spec(self):
        spec = ArrivalSpec(rate_rps=7.0, duration_s=2.0, seed=3)
        config = ServeConfig(load=spec.to_dict())
        assert config.load == spec


class TestSchedulerAndTierCapacities:
    """The constrained-memory knobs: typed, validated, serialized."""

    def test_scheduler_string_coerces_to_enum(self):
        from repro.coe.policies import SchedulerName

        config = ServeConfig(scheduler="expert_reorder")
        assert config.scheduler is SchedulerName.EXPERT_REORDER
        assert config.to_dict()["scheduler"] == "expert_reorder"

    def test_unknown_scheduler_rejected_with_members(self):
        with pytest.raises(ValueError,
                           match="'fifo', 'expert_reorder'"):
            ServeConfig(scheduler="priority")

    def test_with_changes_scheduler(self):
        config = ServeConfig().with_(scheduler="expert_reorder")
        assert config.scheduler.value == "expert_reorder"

    def test_tier_capacities_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            ServeConfig(tier_capacities={"sram": 1 << 20})

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "big"])
    def test_tier_capacities_non_positive_int_rejected(self, bad):
        with pytest.raises(ValueError):
            ServeConfig(tier_capacities={"hbm": bad})

    def test_tier_capacities_ddr_must_cover_hbm(self):
        with pytest.raises(ValueError, match="DDR"):
            ServeConfig(tier_capacities={"hbm": 1 << 30, "ddr": 1 << 20})

    def test_hbm_override_conflicts_with_reserved_bytes(self):
        with pytest.raises(ValueError, match="reserved_hbm_bytes"):
            ServeConfig(reserved_hbm_bytes=1 << 20,
                        tier_capacities={"hbm": 1 << 30})

    def test_tier_capacities_copied_not_aliased(self):
        caps = {"hbm": 1 << 30}
        config = ServeConfig(tier_capacities=caps)
        caps["hbm"] = 0
        assert config.tier_capacities == {"hbm": 1 << 30}

    def test_defaults_are_off(self):
        config = ServeConfig()
        assert config.scheduler.value == "fifo"
        assert config.tier_capacities is None


class TestServeModeErrors:
    """Mode-specific knobs fail typed, in both directions."""

    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 8},
        {"time_scale": 0.5},
        {"drain_timeout_s": 1.0},
        {"max_queue": 8, "time_scale": 0.5, "drain_timeout_s": 1.0},
    ])
    def test_live_only_knobs_rejected_in_sim_mode(self, kwargs):
        with pytest.raises(ServeModeError, match="mode='live'"):
            ServeConfig(**kwargs)

    def test_sim_mode_error_names_the_offending_fields(self):
        with pytest.raises(ServeModeError, match="max_queue.*time_scale"):
            ServeConfig(max_queue=8, time_scale=0.5)

    def test_faults_rejected_in_live_mode(self):
        with pytest.raises(ServeModeError, match="sim"):
            ServeConfig(mode="live", policy="affinity",
                        cluster_policy="least_loaded", num_nodes=2,
                        faults=["node1:0.5"])

    def test_overlap_rejected_in_live_mode(self):
        with pytest.raises(ServeModeError, match="overlap"):
            ServeConfig(mode="live", cluster_policy="least_loaded")

    def test_steal_rejected_in_live_multinode(self):
        with pytest.raises(ServeModeError, match="steal"):
            ServeConfig(mode="live", policy="affinity",
                        cluster_policy="steal", num_nodes=2)
        # ...but is harmless on one node (never consulted).
        ServeConfig(mode="live", policy="affinity",
                    cluster_policy="steal", num_nodes=1)

    def test_serve_mode_error_is_a_value_error(self):
        assert issubclass(ServeModeError, ValueError)
        assert repro.ServeModeError is ServeModeError

    def test_mode_coerces_from_string(self):
        assert ServeConfig(mode="sim").mode is ServeMode.SIM
        cfg = ServeConfig(mode="live", policy="affinity",
                          cluster_policy="least_loaded")
        assert cfg.mode is ServeMode.LIVE

    def test_token_callback_rejected_in_sim_mode(self):
        library = build_samba_coe_library(4)
        with pytest.raises(ServeModeError, match="token_callback"):
            build_server(sn40l_platform, library, ServeConfig(),
                         token_callback=lambda event: None)

    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 0},
        {"time_scale": 0.0},
        {"drain_timeout_s": 0.0},
    ])
    def test_bad_live_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(mode="live", policy="affinity",
                        cluster_policy="least_loaded", **kwargs)


class TestBuildServer:
    def test_single_node_builds_serving_engine(self, library):
        server = build_server(sn40l_platform, library, ServeConfig())
        assert isinstance(server, ServingEngine)
        assert isinstance(server, Server)

    def test_cluster_config_builds_cluster_engine(self, library):
        server = build_server(
            sn40l_platform, library, ServeConfig(num_nodes=4)
        )
        assert isinstance(server, ClusterEngine)
        assert isinstance(server, Server)

    def test_faults_force_the_cluster_engine(self, library):
        server = build_server(
            sn40l_platform, library,
            ServeConfig(num_nodes=2, faults=["node1:0.5"]),
        )
        assert isinstance(server, ClusterEngine)

    def test_live_config_builds_live_engine(self, library):
        from repro.coe.live_engine import LiveEngine

        server = build_server(
            sn40l_platform, library,
            ServeConfig(mode="live", policy="affinity",
                        cluster_policy="least_loaded"),
        )
        assert isinstance(server, LiveEngine)
        assert isinstance(server, Server)

    def test_platform_instance_or_factory(self, library):
        for platform in (sn40l_platform, sn40l_platform()):
            assert isinstance(
                build_server(platform, library, ServeConfig()),
                ServingEngine,
            )
            assert isinstance(
                build_server(platform, library, ServeConfig(num_nodes=2)),
                ClusterEngine,
            )


class TestServe:
    def test_single_node_returns_engine_report(self, library, stream):
        report = serve(sn40l_platform, library, stream)
        assert isinstance(report, EngineReport)
        assert report.requests == len(stream)

    def test_cluster_returns_cluster_report(self, library, stream):
        report = serve(
            sn40l_platform, library, stream, ServeConfig(num_nodes=2)
        )
        assert isinstance(report, ClusterReport)
        assert report.requests == len(stream)

    def test_exposed_at_top_level(self, library, stream):
        assert repro.serve is serve
        assert repro.ServeConfig is ServeConfig
        report = repro.serve(
            sn40l_platform, library, stream, repro.ServeConfig(num_nodes=2)
        )
        assert report.requests == len(stream)

    def test_generates_requests_from_config_load(self, library):
        spec = ArrivalSpec(rate_rps=40.0, duration_s=1.0, seed=5)
        report = serve(sn40l_platform, library,
                       config=ServeConfig(load=spec))
        assert isinstance(report, EngineReport)
        assert report.requests > 0

    def test_requests_required_without_load(self, library):
        with pytest.raises(ValueError, match="requests"):
            serve(sn40l_platform, library, config=ServeConfig())

    def test_matches_direct_engine_run(self, library, stream):
        via_api = serve(sn40l_platform, library, stream,
                        ServeConfig(policy="overlap"))
        direct = ServingEngine(
            sn40l_platform(), library, policy="overlap"
        ).run(stream)
        assert via_api.makespan_s == pytest.approx(direct.makespan_s)


class TestDeprecationShim:
    def test_coeserver_warns_and_still_works(self, library):
        with pytest.warns(DeprecationWarning, match="repro.serve"):
            server = CoEServer(sn40l_platform(), library)
        assert isinstance(server, ExpertServer)
        expert = library.experts[0]
        result = server.serve_experts([expert])
        assert result.total_s > 0

    def test_expert_server_does_not_warn(self, library):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ExpertServer(sn40l_platform(), library)
