"""The correctness artifact: sim and live decide byte-identically."""

import pytest

from repro.coe.api import ServeConfig
from repro.coe.crosscheck import CrossCheckResult, cross_check
from repro.coe.decisions import DecisionLog
from repro.coe.engine import EngineRequest
from repro.coe.expert import build_samba_coe_library
from repro.load import ArrivalSpec, generate_trace
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(12)


@pytest.fixture(scope="module")
def requests(library):
    # A realistic open-loop trace: Zipf-skewed Poisson arrivals.
    spec = ArrivalSpec(rate_rps=40.0, duration_s=4.0, zipf_alpha=1.1, seed=7)
    return generate_trace(spec, library).to_requests(library)


class TestDecisionParity:
    @pytest.mark.parametrize("config_kwargs", [
        # Single node, each cache policy the live engine supports.
        dict(policy="affinity", num_nodes=1, cache_policy="lru"),
        dict(policy="affinity", num_nodes=1, cache_policy="gdsf"),
        dict(policy="fifo", num_nodes=1, cache_policy="predictive"),
        # Cluster dispatch, both live-legal cluster policies.
        dict(policy="affinity", num_nodes=4, cluster_policy="least_loaded"),
        dict(policy="affinity", num_nodes=4, cluster_policy="affinity",
             cache_policy="gdsf"),
        # Deadline admission in the loop (admit/shed ETA records).
        dict(policy="affinity", num_nodes=2, cluster_policy="least_loaded",
             cache_policy="predictive", deadline_s=0.5),
    ], ids=["lru", "gdsf", "fifo-predictive", "least-loaded-4",
            "affinity-4", "deadline-2"])
    def test_identical_decisions(self, library, requests, config_kwargs):
        config = ServeConfig(mode="live", **config_kwargs)
        result = cross_check(sn40l_platform, library, requests, config)
        assert result.match, result.mismatch
        assert result.mismatch is None
        assert result.decisions > 0
        assert result.sim_log == result.live_log
        # Cache streams exist per node; admission only for clusters.
        nodes = config_kwargs.get("num_nodes", 1)
        expected = {f"node{i}" for i in range(nodes)}
        if nodes > 1:
            expected.add("admission")
        assert set(result.streams) <= expected
        assert any(s.startswith("node") for s in result.streams)

    def test_lookahead_pipelined_tiered_parity(self, library, requests):
        # The CoServe scenario end to end: constrained HBM/DDR budgets,
        # reordered backlog, lookahead eviction and pipelined NVMe->DDR
        # promotions — both backends must still decide byte-identically
        # (promotions are prefetcher traffic, never decision records).
        working_set = sum(e.weight_bytes for e in library.experts)
        biggest = max(e.weight_bytes for e in library.experts)
        hbm = max(int(0.5 * working_set), biggest)
        config = ServeConfig(
            policy="fifo", num_nodes=1,
            cache_policy="lookahead", scheduler="expert_reorder",
            tier_capacities={
                "hbm": hbm, "ddr": max(int(0.35 * working_set), hbm),
            },
            pipeline_promotions=True,
        )
        result = cross_check(sn40l_platform, library, requests, config)
        assert result.match, result.mismatch
        assert result.decisions > 0
        # Both backends actually ran the pipelined path, identically.
        assert result.sim_report.pipelined_promotions > 0
        assert (result.live_report.pipelined_promotions
                == result.sim_report.pipelined_promotions)

    def test_default_config_is_live_valid(self, library, requests):
        result = cross_check(sn40l_platform, library, requests[:40])
        assert result.match, result.mismatch

    def test_sim_config_derives_its_live_twin(self, library, requests):
        # The caller may hand over a sim-mode config; the check derives
        # the live twin itself — one config, two clocks.
        config = ServeConfig(policy="affinity", cluster_policy="affinity",
                             num_nodes=3)
        result = cross_check(sn40l_platform, library, requests[:60], config)
        assert result.match, result.mismatch
        assert "admission" in result.streams

    def test_reports_come_back_from_both_backends(self, library, requests):
        result = cross_check(sn40l_platform, library, requests[:30])
        assert isinstance(result, CrossCheckResult)
        assert result.live_report.completed_requests > 0
        assert result.sim_report is not None
        # The check pins max_queue above the backlog: nothing sheds.
        assert result.live_report.shed_backpressure == 0

    def test_to_dict_is_compact(self, library, requests):
        result = cross_check(sn40l_platform, library, requests[:20])
        payload = result.to_dict()
        assert payload["match"] is True
        assert payload["decisions"] == result.decisions
        assert "sim_log" not in payload  # logs stay out of JSON summaries


class TestPreconditions:
    def test_mixed_priorities_rejected(self, library):
        expert = library.experts[0]
        reqs = [
            EngineRequest(0, expert, priority=0),
            EngineRequest(1, expert, priority=1),
        ]
        with pytest.raises(ValueError, match="uniform request priorities"):
            cross_check(sn40l_platform, library, reqs)


class TestTamperDetection:
    def test_a_single_flipped_record_is_caught(self, library, requests):
        # Corrupt one record of the live log and re-diff: the harness
        # must localize the divergence, not just report a boolean.
        result = cross_check(sn40l_platform, library, requests[:40])
        assert result.match
        data = result.live_log.to_jsonable()
        stream = next(iter(data))
        kind, subject, choice, detail = data[stream][0]
        data[stream][0] = [kind, subject, "tampered", detail]
        tampered = DecisionLog.from_jsonable(data)
        diff = result.sim_log.diff(tampered)
        assert diff is not None
        assert stream in diff
        assert "tampered" in diff

    def test_a_missing_record_is_caught(self, library, requests):
        result = cross_check(sn40l_platform, library, requests[:40])
        data = result.live_log.to_jsonable()
        stream = next(iter(data))
        data[stream].pop()
        assert result.sim_log.diff(DecisionLog.from_jsonable(data)) is not None
