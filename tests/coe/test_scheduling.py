"""Affinity batching and speculative prefetch."""

import pytest

from repro.coe.expert import build_samba_coe_library
from repro.coe.scheduling import (
    ExpertPredictor,
    GroupAssembler,
    Request,
    affinity_schedule,
    coalesce_groups,
    fifo_schedule,
    serve_schedule,
    serve_with_prefetch,
)
from repro.coe.serving import ExpertServer
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(60)


def _interleaved_requests(library, copies=4, experts=6):
    """e0, e1, ..., e5, e0, e1, ... — worst case for an LRU of < 6 slots."""
    reqs = []
    rid = 0
    for _ in range(copies):
        for idx in range(experts):
            reqs.append(Request(rid, library.experts[idx]))
            rid += 1
    return reqs


class TestSchedules:
    def test_fifo_preserves_order(self, library):
        reqs = _interleaved_requests(library)
        assert fifo_schedule(reqs) == reqs

    def test_affinity_groups_within_window(self, library):
        reqs = _interleaved_requests(library, copies=2, experts=3)
        scheduled = affinity_schedule(reqs, window=6)
        experts_seen = [r.expert.name for r in scheduled]
        # Each expert's two requests are adjacent.
        for name in set(experts_seen):
            positions = [i for i, n in enumerate(experts_seen) if n == name]
            assert positions[1] - positions[0] == 1

    def test_affinity_is_a_permutation(self, library):
        reqs = _interleaved_requests(library)
        scheduled = affinity_schedule(reqs, window=8)
        assert sorted(r.request_id for r in scheduled) == list(range(len(reqs)))

    def test_window_bounds_reordering(self, library):
        reqs = _interleaved_requests(library, copies=3, experts=4)
        scheduled = affinity_schedule(reqs, window=4)
        for pos, request in enumerate(scheduled):
            assert abs(pos - request.request_id) < 4

    def test_bad_window_rejected(self, library):
        with pytest.raises(ValueError):
            affinity_schedule([], window=0)


class TestServeSchedule:
    def test_affinity_reduces_switches(self, library):
        # HBM holds ~37 experts; an interleaved stream over 50 experts
        # thrashes FIFO but affinity groups repeats into hits.
        reqs = _interleaved_requests(library, copies=3, experts=50)
        fifo_server = ExpertServer(sn40l_platform(), library)
        affinity_server = ExpertServer(sn40l_platform(), library)
        fifo = serve_schedule(fifo_server, fifo_schedule(reqs), "fifo",
                              output_tokens=5)
        grouped = serve_schedule(
            affinity_server, affinity_schedule(reqs, window=150), "affinity",
            output_tokens=5,
        )
        assert grouped.switches < fifo.switches
        assert grouped.total_s < fifo.total_s

    def test_outcome_accounting(self, library):
        server = ExpertServer(sn40l_platform(), library)
        reqs = _interleaved_requests(library, copies=2, experts=2)
        outcome = serve_schedule(server, reqs, "fifo", output_tokens=5)
        assert outcome.requests == 4
        assert outcome.switches == 2
        assert outcome.hit_rate == pytest.approx(0.5)

    def test_empty_schedule_rejected(self, library):
        server = ExpertServer(sn40l_platform(), library)
        with pytest.raises(ValueError):
            serve_schedule(server, [], "fifo")


class TestPredictor:
    def test_learns_transitions(self, library):
        p = ExpertPredictor()
        a, b, c = library.experts[:3]
        # Workflow a -> b, a -> b, a -> c: after 'a', 'b' is most likely.
        for e in (a, b, a, b, a, c, a):
            p.observe(e)
        assert p.predict().name == b.name

    def test_falls_back_to_frequency(self, library):
        p = ExpertPredictor()
        a, b = library.experts[0], library.experts[1]
        for e in (b, b, b, a):  # 'a' has no outgoing transitions yet
            p.observe(e)
        assert p.predict().name == b.name

    def test_candidates_cover_all_seen_experts(self, library):
        p = ExpertPredictor()
        for e in library.experts[:5]:
            p.observe(e)
        assert {c.name for c in p.candidates()} == {
            e.name for e in library.experts[:5]
        }

    def test_no_history_no_prediction(self):
        assert ExpertPredictor().predict() is None
        assert ExpertPredictor().candidates() == []

    def test_accuracy_tracking(self, library):
        p = ExpertPredictor()
        a, b = library.experts[0], library.experts[1]
        p.observe(a)
        p.observe(b)
        p.observe(a)  # transition b->a and a->b each seen once
        assert p.score(b, p.predict())
        assert p.accuracy == 1.0

    def test_none_prediction_scores_as_a_miss(self, library):
        """A None prediction was still acted on (nothing prefetched);
        skipping it would overstate accuracy."""
        p = ExpertPredictor()
        a = library.experts[0]
        assert not p.score(a, None)
        assert p.predictions == 1
        assert p.correct == 0
        assert p.accuracy == 0.0

    def test_accuracy_averages_over_none_predictions(self, library):
        p = ExpertPredictor()
        a, b = library.experts[0], library.experts[1]
        p.score(a, None)   # cold start: miss
        p.score(a, a)      # hit
        assert p.predictions == 2
        assert p.accuracy == 0.5


class TestSpeculativePrefetch:
    def test_workflow_chain_hides_switches(self, library):
        # A repeating expert workflow (the paper's "outputs from one
        # expert determine which expert to execute next"): transitions
        # are predictable, and a one-slot cache forces a switch per step.
        a, b, c = library.experts[:3]
        stream = [a, b, c] * 6
        platform = sn40l_platform()
        one_slot = int(1.5 * a.weight_bytes)
        server = ExpertServer(platform, library,
                           reserved_hbm_bytes=platform.hbm_capacity_bytes - one_slot)
        outcome = serve_with_prefetch(server, stream, output_tokens=5)
        assert outcome.predictor_accuracy > 0.5
        assert outcome.hidden_switch_s > 0
        assert outcome.speedup > 1.0

    def test_never_slower_than_baseline(self, library):
        stream = [library.experts[i % 7] for i in range(20)]
        server = ExpertServer(sn40l_platform(), library)
        outcome = serve_with_prefetch(server, stream, output_tokens=5)
        assert outcome.total_s <= outcome.baseline_s + 1e-12

    def test_empty_stream_rejected(self, library):
        server = ExpertServer(sn40l_platform(), library)
        with pytest.raises(ValueError):
            serve_with_prefetch(server, [])


class TestGroupAssembler:
    """The streaming/batch equivalence property behind sim/live parity."""

    def _streams(self, library, seed):
        import random

        rng = random.Random(seed)
        experts = library.experts[:9]
        reqs = []
        rid = 0
        # A mix of runs and churn: the shapes that stress both the
        # window reorder and the run coalescer.
        while rid < 120:
            expert = rng.choice(experts)
            for _ in range(rng.randint(1, 5)):
                reqs.append(Request(rid, expert))
                rid += 1
        return reqs

    @pytest.mark.parametrize("window,max_batch", [
        (1, 1), (2, 8), (4, 2), (5, 3), (16, 8), (32, 4), (300, 8),
    ])
    def test_streaming_equals_batch_pipeline(self, library, window, max_batch):
        for seed in range(3):
            reqs = self._streams(library, seed)
            batch = coalesce_groups(
                affinity_schedule(reqs, window=window), max_batch=max_batch
            )
            assembler = GroupAssembler(
                policy="affinity", window=window, max_batch=max_batch
            )
            streamed = [g for r in reqs for g in assembler.push(r)]
            streamed += assembler.flush()
            assert [
                (g.expert.name, tuple(r.request_id for r in g.requests))
                for g in streamed
            ] == [
                (g.expert.name, tuple(r.request_id for r in g.requests))
                for g in batch
            ], (window, max_batch, seed)

    @pytest.mark.parametrize("max_batch", [1, 3, 8])
    def test_fifo_streaming_equals_batch_pipeline(self, library, max_batch):
        reqs = self._streams(library, 11)
        batch = coalesce_groups(fifo_schedule(reqs), max_batch=max_batch)
        assembler = GroupAssembler(policy="fifo", max_batch=max_batch)
        streamed = [g for r in reqs for g in assembler.push(r)]
        streamed += assembler.flush()
        assert [tuple(r.request_id for r in g.requests) for g in streamed] \
            == [tuple(r.request_id for r in g.requests) for g in batch]

    def test_partial_window_only_emits_on_flush(self, library):
        expert = library.experts[0]
        assembler = GroupAssembler(policy="affinity", window=16, max_batch=8)
        emitted = []
        for rid in range(5):  # never fills the window
            emitted += assembler.push(Request(rid, expert))
        assert emitted == []
        flushed = assembler.flush()
        assert [len(g.requests) for g in flushed] == [5]
        assert assembler.flush() == []  # idempotent once drained

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            GroupAssembler(window=0)
        with pytest.raises(ValueError, match="max_batch"):
            GroupAssembler(max_batch=0)
