"""Wall-clock serving: drain, backpressure, streaming, task hygiene."""

import asyncio
from collections import defaultdict

import pytest

from repro.coe.api import ServeConfig, ServeModeError, build_server
from repro.coe.engine import EngineRequest
from repro.coe.expert import build_samba_coe_library
from repro.coe.live_engine import (
    DEFAULT_MAX_QUEUE,
    LiveEngine,
    LiveReport,
    ShedRequest,
    TokenEvent,
)
from repro.systems.platforms import sn40l_platform

#: Fast-forward: one model second in a millisecond of wall time.
FAST = 0.001


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(8)


@pytest.fixture(scope="module")
def platform():
    return sn40l_platform()


def live_config(**kwargs):
    kwargs.setdefault("policy", "fifo")
    kwargs.setdefault("cluster_policy", "least_loaded")
    kwargs.setdefault("time_scale", FAST)
    return ServeConfig(mode="live", **kwargs)


def backlog(library, n, *, output_tokens=20, spread_s=0.0):
    experts = library.experts
    return [
        EngineRequest(
            i,
            experts[i % len(experts)],
            output_tokens=output_tokens,
            arrival_s=(spread_s * i / n) if spread_s else 0.0,
        )
        for i in range(n)
    ]


class TestLiveServe:
    def test_serves_a_backlog_to_completion(self, platform, library):
        engine = LiveEngine(platform, library, live_config())
        report = engine.serve(backlog(library, 12))
        assert isinstance(report, LiveReport)
        assert report.completed_requests == 12
        assert report.shed_requests == 0
        assert report.drained
        assert report.requests == 12
        assert report.makespan_s > 0
        assert report.wall_s > 0
        assert report.p50_s <= report.p95_s <= report.p99_s
        assert {c.request_id for c in report.completed} == set(range(12))

    def test_open_loop_arrivals_are_respected(self, platform, library):
        # Later arrivals cannot finish before they arrive.
        engine = LiveEngine(platform, library, live_config(time_scale=0.01))
        report = engine.serve(backlog(library, 6, spread_s=3.0))
        for c in report.completed:
            assert c.finish_s >= c.arrival_s

    def test_empty_backlog_rejected(self, platform, library):
        engine = LiveEngine(platform, library, live_config())
        with pytest.raises(ValueError, match="empty"):
            engine.serve([])

    def test_build_server_returns_live_engine(self, platform, library):
        server = build_server(platform, library, live_config())
        assert isinstance(server, LiveEngine)
        assert server.max_queue == DEFAULT_MAX_QUEUE

    def test_rejects_sim_config(self, platform, library):
        with pytest.raises(ServeModeError, match="live"):
            LiveEngine(platform, library, ServeConfig(policy="fifo"))

    def test_report_dict_is_json_ready(self, platform, library):
        import json

        engine = LiveEngine(platform, library, live_config())
        report = engine.serve(backlog(library, 4))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed_requests"] == 4
        assert payload["drained"] is True


class TestBackpressure:
    def test_full_queue_sheds_with_typed_result(self, platform, library):
        # All arrivals at t=0 and a single-slot queue: the dispatcher
        # admits without yielding, so exactly one group fits and the
        # rest shed deterministically.
        engine = LiveEngine(
            platform, library,
            live_config(max_batch=1, max_queue=1, num_nodes=1),
        )
        experts = library.experts
        reqs = [EngineRequest(i, experts[0]) for i in range(8)]
        report = engine.serve(reqs)
        assert report.shed_backpressure == 7
        assert report.completed_requests == 1
        assert report.drained
        for shed in report.shed:
            assert isinstance(shed, ShedRequest)
            assert shed.reason == "backpressure"
            assert shed.expert == experts[0].name
        # Conservation: nothing silently dropped.
        assert report.completed_requests + report.shed_requests == 8

    def test_deadline_sheds_before_queueing(self, platform, library):
        experts = library.experts
        engine = LiveEngine(
            platform, library,
            live_config(max_batch=1, deadline_s=0.03),
        )
        reqs = [EngineRequest(i, experts[0]) for i in range(8)]
        report = engine.serve(reqs)
        assert report.shed_deadline >= 1
        assert report.shed_backpressure == 0
        assert all(s.reason == "deadline" for s in report.shed)
        assert report.completed_requests + report.shed_deadline == 8


class TestGracefulShutdown:
    def test_drain_completes_in_flight_work(self, platform, library):
        # Long decodes still finish inside a generous drain budget.
        engine = LiveEngine(platform, library, live_config())
        report = engine.serve(backlog(library, 6, output_tokens=200))
        assert report.drained
        assert report.completed_requests == 6

    def test_drain_timeout_cancels_and_reports(self, platform, library):
        # Real time with a ~2.2 wall-second decode against a 50 ms drain
        # budget: shutdown must cancel, report drained=False, and not
        # hang the test.
        engine = LiveEngine(
            platform, library,
            live_config(time_scale=1.0, drain_timeout_s=0.05, max_batch=1),
        )
        report = engine.serve(
            [EngineRequest(0, library.experts[0], output_tokens=2000)]
        )
        assert not report.drained
        assert report.completed_requests == 0
        assert report.shed_requests == 0

    def test_no_task_leaks_after_aserve(self, platform, library):
        async def run():
            engine = LiveEngine(platform, library, live_config())
            await engine.aserve(backlog(library, 6))
            return asyncio.all_tasks()

        tasks = asyncio.run(run())
        assert len(tasks) == 1  # only the caller itself

    def test_no_task_leaks_after_drain_timeout(self, platform, library):
        async def run():
            engine = LiveEngine(
                platform, library,
                live_config(
                    time_scale=1.0, drain_timeout_s=0.05, max_batch=1
                ),
            )
            report = await engine.aserve(
                [EngineRequest(0, library.experts[0], output_tokens=2000)]
            )
            return report, asyncio.all_tasks()

        report, tasks = asyncio.run(run())
        assert not report.drained
        assert len(tasks) == 1


class TestTokenStreaming:
    def test_every_output_token_is_streamed(self, platform, library):
        events = []
        config = live_config()
        engine = LiveEngine(
            platform, library, config, token_callback=events.append
        )
        reqs = backlog(library, 6, output_tokens=16)
        report = engine.serve(reqs)
        assert report.tokens_streamed == 6 * 16
        assert len(events) == report.tokens_streamed
        assert report.output_tokens == 6 * 16

    def test_events_are_typed_ordered_and_timestamped(self, platform, library):
        events = []
        engine = LiveEngine(
            platform, library, live_config(), token_callback=events.append
        )
        engine.serve(backlog(library, 4, output_tokens=8))
        per_request = defaultdict(list)
        for event in events:
            assert isinstance(event, TokenEvent)
            assert event.time_s >= 0.0
            per_request[event.request_id].append(event)
        assert set(per_request) == set(range(4))
        names = {e.name for e in library.experts}
        for stream in per_request.values():
            # Indices arrive in order, one per decode step, and never
            # run backwards in model time.
            assert [e.index for e in stream] == list(range(8))
            times = [e.time_s for e in stream]
            assert times == sorted(times)
            assert stream[0].expert in names
            assert stream[0].node.startswith("node")

    def test_sim_mode_rejects_token_callback(self, platform, library):
        with pytest.raises(ServeModeError, match="token_callback"):
            build_server(
                platform, library, ServeConfig(policy="fifo"),
                token_callback=lambda event: None,
            )


class TestClusterLive:
    @pytest.mark.parametrize("cluster_policy", ["least_loaded", "affinity"])
    def test_multi_node_serves_and_shards(
        self, platform, library, cluster_policy
    ):
        engine = LiveEngine(
            sn40l_platform, library,
            live_config(num_nodes=4, cluster_policy=cluster_policy),
        )
        assert engine.num_nodes == 4
        hosted = [node.hosted for node in engine.nodes]
        assert set().union(*hosted) == {e.name for e in library.experts}
        report = engine.serve(backlog(library, 16))
        assert report.completed_requests == 16
        assert report.num_nodes == 4
        # Work actually lands on more than one node.
        assert sum(1 for node in engine.nodes if node.completed) > 1

    def test_timeline_spans_use_node_lanes(self, platform, library):
        engine = LiveEngine(
            sn40l_platform, library, live_config(num_nodes=2)
        )
        report = engine.serve(backlog(library, 8))
        lanes = {span.lane for span in report.timeline.spans()}
        assert any(lane.startswith("node0/") for lane in lanes)
        assert any(lane.startswith("node1/") for lane in lanes)
