"""The CoE runtime's LRU expert cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coe.expert import ExpertProfile
from repro.coe.runtime import CoERuntime
from repro.models.transformer import TransformerConfig

TINY = TransformerConfig("tiny", hidden=64, layers=2, heads=4, kv_heads=4,
                         intermediate=128, vocab=100)
EXPERT_BYTES = TINY.weight_bytes


def _expert(i, mutable=0.0):
    return ExpertProfile(f"e{i}", "chat", model=TINY, mutable_fraction=mutable)


def _runtime(capacity_experts=2, **kw):
    return CoERuntime(
        hbm_budget_bytes=capacity_experts * EXPERT_BYTES,
        upgrade_time=lambda b: b / 1e9,
        **kw,
    )


class TestLRUSemantics:
    def test_first_request_misses_then_hits(self):
        rt = _runtime()
        e = _expert(0)
        assert not rt.activate(e).hit
        assert rt.activate(e).hit
        assert rt.stats.hit_rate == 0.5

    def test_hit_costs_nothing(self):
        rt = _runtime()
        e = _expert(0)
        rt.activate(e)
        event = rt.activate(e)
        assert event.time_s == 0.0
        assert event.bytes_up == 0

    def test_lru_evicts_the_oldest(self):
        rt = _runtime(capacity_experts=2)
        e0, e1, e2 = _expert(0), _expert(1), _expert(2)
        rt.activate(e0)
        rt.activate(e1)
        event = rt.activate(e2)
        assert event.evicted == ("e0",)
        assert rt.resident_experts == ["e1", "e2"]

    def test_recency_refresh_protects_from_eviction(self):
        rt = _runtime(capacity_experts=2)
        e0, e1, e2 = _expert(0), _expert(1), _expert(2)
        rt.activate(e0)
        rt.activate(e1)
        rt.activate(e0)  # refresh e0: now e1 is oldest
        event = rt.activate(e2)
        assert event.evicted == ("e1",)

    def test_oversized_expert_rejected(self):
        rt = CoERuntime(hbm_budget_bytes=10, upgrade_time=lambda b: 0.0)
        with pytest.raises(ValueError):
            rt.activate(_expert(0))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CoERuntime(hbm_budget_bytes=-1, upgrade_time=lambda b: 0.0)


class TestReadOnlyCopyback:
    def test_read_only_weights_skip_copyback(self):
        rt = _runtime(capacity_experts=1)
        rt.activate(_expert(0, mutable=0.0))
        event = rt.activate(_expert(1, mutable=0.0))
        assert event.bytes_down == 0

    def test_mutable_state_pays_copyback(self):
        rt = _runtime(capacity_experts=1)
        rt.activate(_expert(0, mutable=0.5))
        event = rt.activate(_expert(1))
        assert event.bytes_down == pytest.approx(0.5 * EXPERT_BYTES, rel=0.01)

    def test_copyback_time_included(self):
        slow_down = _runtime(capacity_experts=1,
                             downgrade_time=lambda b: 100.0)
        slow_down.activate(_expert(0, mutable=0.5))
        event = slow_down.activate(_expert(1))
        assert event.time_s > 100.0


class TestInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=60),
           st.integers(1, 5))
    def test_residency_never_exceeds_budget(self, requests, capacity):
        rt = _runtime(capacity_experts=capacity)
        experts = [_expert(i) for i in range(10)]
        for idx in requests:
            rt.activate(experts[idx])
            assert rt.resident_bytes <= rt.hbm_budget_bytes
            assert len(rt.resident_experts) <= capacity

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    def test_request_accounting_balances(self, requests):
        rt = _runtime(capacity_experts=2)
        experts = [_expert(i) for i in range(4)]
        for idx in requests:
            rt.activate(experts[idx])
        assert rt.stats.hits + rt.stats.misses == len(requests)
        assert rt.stats.bytes_up == rt.stats.misses * EXPERT_BYTES


class TestFailureInjection:
    """A failed DMA copy must leave the cache exactly as it was."""

    class _FlakyDMA:
        def __init__(self, fail_after=1):
            self.calls = 0
            self.fail_after = fail_after

        def __call__(self, num_bytes):
            self.calls += 1
            if self.calls > self.fail_after:
                raise IOError("simulated DMA failure")
            return num_bytes / 1e9

    def test_failed_copy_preserves_residents(self):
        dma = self._FlakyDMA(fail_after=2)
        rt = CoERuntime(hbm_budget_bytes=2 * EXPERT_BYTES,
                        upgrade_time=dma)
        e0, e1, e2 = _expert(0), _expert(1), _expert(2)
        rt.activate(e0)
        rt.activate(e1)
        with pytest.raises(IOError):
            rt.activate(e2)  # third copy fails after evicting e0
        # The cache is exactly as before the failed activation.
        assert rt.resident_experts == ["e0", "e1"]
        assert rt.resident_bytes == 2 * EXPERT_BYTES

    def test_failed_copy_preserves_lru_order(self):
        dma = self._FlakyDMA(fail_after=2)
        rt = CoERuntime(hbm_budget_bytes=2 * EXPERT_BYTES, upgrade_time=dma)
        e0, e1, e2, e3 = (_expert(i) for i in range(4))
        rt.activate(e0)
        rt.activate(e1)
        with pytest.raises(IOError):
            rt.activate(e2)
        # After recovery, a successful DMA evicts e0 (still the oldest).
        dma.fail_after = float("inf")
        event = rt.activate(e3)
        assert event.evicted == ("e0",)

    def test_failed_copy_rolls_back_eviction_stats(self):
        dma = self._FlakyDMA(fail_after=1)
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES, upgrade_time=dma)
        rt.activate(_expert(0))
        with pytest.raises(IOError):
            rt.activate(_expert(1))
        assert rt.stats.evictions == 0

    def test_retry_after_failure_succeeds(self):
        dma = self._FlakyDMA(fail_after=1)
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES, upgrade_time=dma)
        rt.activate(_expert(0))
        with pytest.raises(IOError):
            rt.activate(_expert(1))
        dma.fail_after = float("inf")  # DMA recovered
        event = rt.activate(_expert(1))
        assert not event.hit
        assert rt.resident_experts == ["e1"]

    def test_failed_request_counted_with_failure_marker(self):
        """Convention: a failed activate still counts as a request, gets a
        ``failures`` tick, and contributes nothing to the copy totals."""
        dma = self._FlakyDMA(fail_after=1)
        rt = CoERuntime(hbm_budget_bytes=EXPERT_BYTES, upgrade_time=dma)
        rt.activate(_expert(0))
        bytes_up_before = rt.stats.bytes_up
        switch_before = rt.stats.switch_time_s
        with pytest.raises(IOError):
            rt.activate(_expert(1))
        assert rt.stats.requests == 2
        assert rt.stats.failures == 1
        assert rt.stats.hits == 0
        assert rt.stats.misses == 2  # failures are a subset of misses
        assert rt.stats.bytes_up == bytes_up_before
        assert rt.stats.bytes_down == 0
        assert rt.stats.switch_time_s == switch_before

    def test_failure_restores_resident_byte_counter(self):
        dma = self._FlakyDMA(fail_after=2)
        rt = CoERuntime(hbm_budget_bytes=2 * EXPERT_BYTES, upgrade_time=dma)
        rt.activate(_expert(0))
        rt.activate(_expert(1))
        with pytest.raises(IOError):
            rt.activate(_expert(2))
        assert rt.resident_bytes == sum(
            e.weight_bytes for e in rt._resident.values()
        )


class TestByteAccounting:
    """The O(1) resident-byte counter must always equal the true sum."""

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=80),
           st.integers(1, 5))
    def test_counter_matches_sum_under_churn(self, requests, capacity):
        rt = _runtime(capacity_experts=capacity)
        experts = [_expert(i) for i in range(10)]
        for idx in requests:
            rt.activate(experts[idx])
            assert rt.resident_bytes == sum(
                e.weight_bytes for e in rt._resident.values()
            )

    def test_would_evict_previews_lru_victims_without_mutation(self):
        rt = _runtime(capacity_experts=2)
        e0, e1, e2 = _expert(0), _expert(1), _expert(2)
        rt.activate(e0)
        rt.activate(e1)
        assert rt.would_evict(e2) == ("e0",)
        assert rt.would_evict(e0) == ()  # already resident
        assert rt.resident_experts == ["e0", "e1"]  # untouched
        assert rt.stats.evictions == 0

    def test_flush_resets_counter(self):
        rt = _runtime(capacity_experts=3)
        for i in range(3):
            rt.activate(_expert(i))
        assert rt.resident_bytes == 3 * EXPERT_BYTES
        rt.flush()
        assert rt.resident_bytes == 0
        assert rt.resident_experts == []
