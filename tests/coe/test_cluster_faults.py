"""Fault tolerance in the cluster engine: crash, detect, recover.

The invariants under test are the ones an operator cares about:
determinism (same seed + same schedule reproduces the run bit-for-bit),
exactly-once re-dispatch (a crash never loses or duplicates a request),
explicit degradation (deadline shedding is reported, never silent), and
observability (the outage is visible as spans on the faults lane).
"""

import pytest

from repro.coe.cluster_engine import ClusterEngine, run_cluster
from repro.coe.engine import zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.sim.faults import FaultSchedule, random_schedule
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(32)


@pytest.fixture(scope="module")
def stream(library):
    return zipf_request_stream(library, 96, alpha=1.1, seed=7)


@pytest.fixture(scope="module")
def clean_report(library, stream):
    return run_cluster(sn40l_platform, library, stream, num_nodes=4)


@pytest.fixture(scope="module")
def crash_report(library, stream, clean_report):
    # Kill a node a quarter of the way through the clean makespan:
    # squarely mid-decode, with plenty of queued work to re-dispatch.
    crash_at = 0.25 * clean_report.makespan_s
    return run_cluster(
        sn40l_platform, library, stream, num_nodes=4,
        faults=[f"node1:{crash_at}"],
    )


class TestCrashRecovery:
    def test_every_request_still_completes_exactly_once(
        self, library, stream, clean_report
    ):
        crash_at = 0.25 * clean_report.makespan_s
        engine = ClusterEngine(
            sn40l_platform, library, 4, faults=[f"node1:{crash_at}"]
        )
        report = engine.serve(stream)
        assert report.crashes == 1
        ids = [c.request_id for c in engine.completed_requests()]
        assert sorted(ids) == sorted(r.request_id for r in stream)

    def test_crash_is_counted_and_attributed(self, crash_report):
        assert crash_report.crashes == 1
        dead = [n for n in crash_report.nodes if not n.alive]
        assert [n.name for n in dead] == ["node1"]
        assert 0 < dead[0].crashed_at < crash_report.makespan_s
        alive = [n for n in crash_report.nodes if n.alive]
        assert len(alive) == 3 and all(n.crashed_at is None for n in alive)

    def test_work_was_redispatched(self, crash_report):
        assert crash_report.redispatched_groups > 0
        assert crash_report.rejected == 0

    def test_availability_and_recovery_bounds(self, crash_report):
        assert 0.7 < crash_report.availability < 1.0
        # Detection waits at most one heartbeat (0.05s default); recovery
        # adds at most the promotion copies on top.
        assert 0.0 <= crash_report.recovery_s < 0.2

    def test_degrades_but_keeps_goodput(self, clean_report, crash_report):
        assert crash_report.makespan_s >= clean_report.makespan_s
        retention = (crash_report.goodput_tokens_per_second
                     / clean_report.tokens_per_second)
        assert retention >= 0.6  # 1-of-4 nodes died a quarter in

    def test_outage_spans_on_faults_lane(self, crash_report):
        lanes = {s.lane for s in crash_report.timeline.spans()}
        assert "node1/faults" in lanes
        names = [s.name for s in crash_report.timeline.spans()
                 if s.lane == "node1/faults"]
        assert any(n.startswith("crash:") for n in names)
        assert any(n.startswith("recovery:") for n in names)

    def test_crashed_node_records_no_compute_after_death(self, crash_report):
        dead = next(n for n in crash_report.nodes if not n.alive)
        compute_end = max(
            (s.end_s for s in crash_report.timeline.spans()
             if s.lane == f"{dead.name}/compute"), default=0.0,
        )
        assert compute_end <= dead.crashed_at + 1e-9

    def test_makespan_still_covers_every_span(self, crash_report):
        last = max(s.end_s for s in crash_report.timeline.spans())
        assert crash_report.makespan_s == pytest.approx(last)


class TestDeterminism:
    def test_same_schedule_same_report(self, library, stream):
        kwargs = dict(num_nodes=4, faults=["node1:0.15", "slow:2:0.05:0.1"])
        a = run_cluster(sn40l_platform, library, stream, **kwargs)
        b = run_cluster(sn40l_platform, library, stream, **kwargs)
        da, db = a.to_dict(), b.to_dict()
        assert da == db
        assert [(s.lane, s.name, s.start_s, s.end_s)
                for s in a.timeline.spans()] == [
            (s.lane, s.name, s.start_s, s.end_s)
            for s in b.timeline.spans()
        ]

    def test_random_schedule_reproduces(self, library, stream):
        schedule = random_schedule(4, 0.3, seed=11, crashes=1, slow_nodes=1)
        a = run_cluster(sn40l_platform, library, stream, num_nodes=4,
                        faults=schedule)
        b = run_cluster(sn40l_platform, library, stream, num_nodes=4,
                        faults=FaultSchedule.from_specs(schedule.specs()))
        assert a.to_dict() == b.to_dict()


class TestSlowAndCopyFaults:
    def test_slow_window_stretches_the_run(self, library, stream,
                                           clean_report):
        slowed = run_cluster(
            sn40l_platform, library, stream, num_nodes=4,
            faults=[f"slow:0:0.0:{clean_report.makespan_s}:3.0"],
        )
        assert slowed.makespan_s > clean_report.makespan_s
        names = [s.name for s in slowed.timeline.spans()
                 if s.lane == "node0/faults"]
        assert any(n.startswith("slow") for n in names)

    def test_copy_faults_add_retries(self, library, stream):
        faulty = run_cluster(
            sn40l_platform, library, stream, num_nodes=4,
            faults=["copyfail:0:0.0:3"],
        )
        retries = sum(
            1 for s in faulty.timeline.spans()
            if s.name.startswith("copy-failed:")
        )
        assert 0 < retries <= 3

    def test_copy_fault_retries_never_booked_as_runtime_failures(
        self, library, stream
    ):
        """An injected retry's copy ultimately *succeeds*: the runtime's
        ``failures`` counter (copies that never happened, contributing no
        bytes/time) must stay zero, and the discarded attempt's DMA time
        is accounted explicitly on the engine instead."""
        engine = ClusterEngine(
            sn40l_platform, library, 4, faults=["copyfail:0:0.0:3"],
        )
        report = engine.serve(stream)
        fault_spans = [
            s for s in report.timeline.spans()
            if s.name.startswith("copy-failed:")
        ]
        assert fault_spans
        node0 = engine.nodes[0].engine
        assert node0.server.runtime.stats.failures == 0
        assert node0.copy_retries == len(fault_spans)
        assert node0.retry_dma_s == pytest.approx(
            sum(s.duration_s for s in fault_spans)
        )

    def test_fault_specs_round_trip_in_report(self, crash_report):
        assert crash_report.fault_specs
        assert all(spec.startswith("crash:") for spec in
                   crash_report.fault_specs)
        assert crash_report.to_dict()["faults"] == list(
            crash_report.fault_specs
        )


class TestDeadlineAdmission:
    def test_impossible_deadline_sheds_explicitly(self, library, stream):
        report = run_cluster(
            sn40l_platform, library, stream, num_nodes=2, deadline_s=0.02
        )
        # ``requests`` counts the submitted backlog; the shed portion is
        # reported in ``rejected``, never silently dropped.
        assert report.requests == len(stream)
        assert 0 < report.rejected <= report.requests
        assert report.rejected_tokens > 0
        assert report.goodput_tokens_per_second <= report.tokens_per_second

    def test_loose_deadline_sheds_nothing(self, library, stream,
                                          clean_report):
        report = run_cluster(
            sn40l_platform, library, stream, num_nodes=4,
            deadline_s=10 * clean_report.makespan_s,
        )
        assert report.rejected == 0
        assert report.requests == len(stream)

    def test_low_priority_shed_first(self, library):
        import dataclasses
        requests = [
            dataclasses.replace(r, priority=1 if i % 2 == 0 else 0)
            for i, r in enumerate(
                zipf_request_stream(library, 48, alpha=1.1, seed=3)
            )
        ]
        engine = ClusterEngine(sn40l_platform, library, 2, deadline_s=0.05)
        engine.serve(requests)
        assert engine.rejected
        # Admission shreds lowest priority first: the rejected set must
        # carry a lower mean priority than the backlog as a whole.
        rejected_mean = (sum(r.priority for r in engine.rejected)
                         / len(engine.rejected))
        overall_mean = sum(r.priority for r in requests) / len(requests)
        assert rejected_mean <= overall_mean


class TestValidation:
    def test_fault_on_missing_node_rejected(self, library):
        with pytest.raises(ValueError, match="node 9"):
            ClusterEngine(sn40l_platform, library, 4, faults=["node9:1.0"])

    def test_crashing_every_node_rejected(self, library):
        with pytest.raises(ValueError, match="every node"):
            ClusterEngine(
                sn40l_platform, library, 2,
                faults=["node0:1.0", "node1:2.0"],
            )

    def test_bad_heartbeat_rejected(self, library):
        with pytest.raises(ValueError, match="heartbeat"):
            ClusterEngine(sn40l_platform, library, 2, heartbeat_s=0.0)

    def test_no_faults_means_no_fault_lanes_touched(self, clean_report):
        assert not any(s.lane.endswith("/faults")
                       for s in clean_report.timeline.spans())
        assert clean_report.crashes == 0
        assert clean_report.availability == 1.0
