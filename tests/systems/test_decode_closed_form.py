"""Closed-form decode aggregate vs the per-token reference loop.

`Platform.decode_span_time` must agree with summing `decode_token_time`
over the growing context — the loop is the semantic definition, the
closed form is the fast path Figure-12-style sweeps run on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.catalog import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

PLATFORMS = [sn40l_platform(), dgx_a100_platform(), dgx_h100_platform()]
MODELS = [LLAMA2_7B, LLAMA2_13B, LLAMA2_70B]


def reference_loop(platform, model, output_tokens, batch, prompt):
    total = 0.0
    for step in range(output_tokens):
        total += platform.decode_token_time(model, batch, prompt + step)
    return total


class TestClosedFormAgreement:
    @settings(max_examples=60, deadline=None)
    @given(
        platform_idx=st.integers(0, len(PLATFORMS) - 1),
        model_idx=st.integers(0, len(MODELS) - 1),
        batch=st.integers(1, 64),
        prompt=st.integers(0, 4096),
        output_tokens=st.integers(0, 600),
    )
    def test_matches_per_token_loop(
        self, platform_idx, model_idx, batch, prompt, output_tokens
    ):
        platform = PLATFORMS[platform_idx]
        model = MODELS[model_idx]
        loop = reference_loop(platform, model, output_tokens, batch, prompt)
        closed = platform.decode_span_time(model, output_tokens, batch, prompt)
        assert closed == pytest.approx(loop, rel=1e-9, abs=1e-18)

    def test_zero_tokens_is_zero(self):
        assert PLATFORMS[0].decode_span_time(LLAMA2_7B, 0, 1, 256) == 0.0

    def test_crossover_region_exact(self):
        """Sweep the compute->memory crossover densely on each platform.

        Large batch pushes the compute term up so the crossover lands
        mid-span; every split point must match the loop's per-step max.
        """
        for platform in PLATFORMS:
            for prompt in range(0, 3000, 37):
                loop = reference_loop(platform, LLAMA2_7B, 64, 48, prompt)
                closed = platform.decode_span_time(LLAMA2_7B, 64, 48, prompt)
                assert closed == pytest.approx(loop, rel=1e-9)

    def test_generate_time_uses_closed_form(self):
        platform = PLATFORMS[0]
        expected = platform.prefill_time(LLAMA2_7B, 2, 256) + reference_loop(
            platform, LLAMA2_7B, 33, 2, 256
        )
        assert platform.generate_time(
            LLAMA2_7B, 33, batch=2, prompt=256
        ) == pytest.approx(expected, rel=1e-9)

    def test_invalid_arguments_rejected(self):
        platform = PLATFORMS[0]
        with pytest.raises(ValueError):
            platform.decode_span_time(LLAMA2_7B, -1)
        with pytest.raises(ValueError):
            platform.decode_span_time(LLAMA2_7B, 10, batch=0)
        with pytest.raises(ValueError):
            platform.decode_span_time(LLAMA2_7B, 10, batch=1, prompt=-1)


class TestMemoization:
    def test_decode_token_time_is_cached(self):
        platform = sn40l_platform()
        before = platform.decode_token_time.cache_info().hits
        first = platform.decode_token_time(LLAMA2_7B, 1, 777)
        second = platform.decode_token_time(LLAMA2_7B, 1, 777)
        assert first == second
        assert platform.decode_token_time.cache_info().hits > before

    def test_prefill_time_is_cached(self):
        platform = sn40l_platform()
        before = platform.prefill_time.cache_info().hits
        platform.prefill_time(LLAMA2_7B, 4, 333)
        platform.prefill_time(LLAMA2_7B, 4, 333)
        assert platform.prefill_time.cache_info().hits > before

    def test_equal_platform_instances_share_cache_entries(self):
        """Platforms are frozen + hashable: two builds of the same config
        hit the same memo entries, which is what lets 150-expert sweeps
        reuse each other's roofline terms."""
        a, b = sn40l_platform(), sn40l_platform()
        assert a == b
        a.decode_span_time(LLAMA2_7B, 512, 1, 1024)
        hits_before = b.decode_span_time.cache_info().hits
        b.decode_span_time(LLAMA2_7B, 512, 1, 1024)
        assert b.decode_span_time.cache_info().hits == hits_before + 1
