"""Multi-node CoE serving and load balancing."""

import pytest

from repro.coe.expert import build_heterogeneous_library, build_samba_coe_library
from repro.systems.cluster import (
    Cluster,
    partition_experts,
    replicate_hot_experts,
)
from repro.systems.platforms import sn40l_platform


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(40)


class TestPartitioning:
    def test_every_expert_lands_exactly_once(self, library):
        shards = partition_experts(library, 4)
        names = [e.name for shard in shards for e in shard]
        assert sorted(names) == sorted(e.name for e in library.experts)

    def test_balanced_partitioning_equalises_bytes(self):
        library = build_heterogeneous_library()
        shards = partition_experts(library, 5, balanced=True)
        loads = [sum(e.weight_bytes for e in shard) for shard in shards]
        assert max(loads) / min(loads) < 1.1

    def test_contiguous_partitioning_preserves_order(self, library):
        shards = partition_experts(library, 4, balanced=False)
        assert [e.name for e in shards[0]] == [
            e.name for e in library.experts[:10]
        ]

    def test_bad_node_count_rejected(self, library):
        with pytest.raises(ValueError):
            partition_experts(library, 0)

    def test_contiguous_shard_sizes_differ_by_at_most_one(self):
        library = build_samba_coe_library(10)
        shards = partition_experts(library, 4, balanced=False)
        sizes = [len(s) for s in shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert all(sizes)  # no shard comes up empty when experts suffice

    def test_oversubscribed_node_count_warns(self):
        small = build_samba_coe_library(2)
        with pytest.warns(UserWarning, match="exceeds the library size"):
            partition_experts(small, 5, balanced=False)
        with pytest.warns(UserWarning, match="exceeds the library size"):
            partition_experts(small, 5, balanced=True)

    def test_balanced_matches_greedy_scan_tie_breaking(self):
        """The heap packer must keep the old scan's tie rule: equal loads
        go to the lowest-index shard, so layouts stay reproducible."""
        library = build_samba_coe_library(8)  # identical weight_bytes
        shards = partition_experts(library, 4, balanced=True)
        assert [len(s) for s in shards] == [2, 2, 2, 2]
        # Round-robin under equal weights: expert i lands on shard i % 4.
        for idx, shard in enumerate(shards):
            assert [e.name for e in shard] == [
                library.experts[idx].name, library.experts[idx + 4].name,
            ]


class TestCluster:
    def test_requests_route_to_owning_node(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=4)
        expert = library.experts[0]
        (owner,) = cluster.owners_of(expert)
        records = cluster.dispatch([expert], output_tokens=5)
        assert records[0].node == owner.name

    def test_unknown_expert_rejected(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=2)
        from repro.coe.expert import ExpertProfile

        with pytest.raises(KeyError):
            cluster.owners_of(ExpertProfile("ghost", "chat"))

    def test_skewed_traffic_creates_imbalance(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=4)
        hot = library.experts[0]
        cluster.dispatch([hot] * 12, output_tokens=5)
        assert cluster.load_imbalance() > 2.0  # one node does all the work

    def test_uniform_traffic_balances(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=4)
        cluster.dispatch(list(library.experts), output_tokens=5)
        assert cluster.load_imbalance() < 1.3

    def test_replication_fixes_the_hot_node(self, library):
        hot = library.experts[0]
        sharded = Cluster(sn40l_platform, library, num_nodes=4)
        sharded.dispatch([hot] * 12, output_tokens=5)

        replicated = Cluster(sn40l_platform, library, num_nodes=4)
        replicate_hot_experts(replicated, {hot.name: 12}, top_n=1)
        replicated.dispatch([hot] * 12, output_tokens=5)

        assert replicated.makespan_s() < sharded.makespan_s()
        assert len(replicated.owners_of(hot)) == 4

    def test_bad_top_n_rejected(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=2)
        with pytest.raises(ValueError):
            replicate_hot_experts(cluster, {}, top_n=-1)

    def test_dispatch_tie_breaking_is_deterministic(self, library):
        """Under fully replicated experts every node has load 0 at the
        first request; min() must keep picking the same (first) node."""
        hot = library.experts[0]
        runs = []
        for _ in range(3):
            cluster = Cluster(sn40l_platform, library, num_nodes=4)
            cluster.replicate(hot)
            records = cluster.dispatch([hot] * 8, output_tokens=5)
            runs.append([r.node for r in records])
        assert runs[0] == runs[1] == runs[2]
        assert runs[0][0] == "node0"  # ties resolve to the lowest index

    def test_replicate_hot_experts_top_n_beyond_library(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=4)
        counts = {e.name: 1 for e in library.experts}
        hot = replicate_hot_experts(cluster, counts, top_n=10 * len(library))
        assert len(hot) == len(library)  # clamps to what exists
        for expert in library.experts:
            assert len(cluster.owners_of(expert)) == 4


class TestHeterogeneousLibrary:
    def test_default_mix_has_three_architectures(self):
        library = build_heterogeneous_library()
        models = {e.model.name for e in library.experts}
        assert models == {"llama2-7b", "mistral-7b", "llama2-13b"}

    def test_sizes_differ(self):
        library = build_heterogeneous_library()
        sizes = {e.weight_bytes for e in library.experts}
        assert len(sizes) == 3

    def test_serving_handles_mixed_sizes(self):
        from repro.coe.serving import ExpertServer

        library = build_heterogeneous_library(
            size_mix=None,
        )
        server = ExpertServer(sn40l_platform(), library)
        big = next(e for e in library.experts if "13b" in e.model.name)
        small = next(e for e in library.experts if "7b" in e.model.name)
        result = server.serve_experts([big, small], output_tokens=5)
        big_req = next(r for r in result.requests if r.expert == big.name)
        small_req = next(r for r in result.requests if r.expert == small.name)
        assert big_req.switch_s > small_req.switch_s

    def test_lru_evicts_enough_for_a_big_expert(self):
        """A 13B arrival may need to evict two 7B residents."""
        from repro.coe.runtime import CoERuntime
        from repro.models.catalog import LLAMA2_7B, LLAMA2_13B
        from repro.coe.expert import ExpertProfile

        small = [ExpertProfile(f"s{i}", "chat", LLAMA2_7B) for i in range(2)]
        big = ExpertProfile("big", "chat", LLAMA2_13B)
        runtime = CoERuntime(
            hbm_budget_bytes=2 * LLAMA2_7B.weight_bytes + 1,
            upgrade_time=lambda b: 0.0,
        )
        for e in small:
            runtime.activate(e)
        event = runtime.activate(big)
        assert set(event.evicted) == {"s0", "s1"}

    def test_negative_count_rejected(self):
        from repro.models.catalog import LLAMA2_7B

        with pytest.raises(ValueError):
            build_heterogeneous_library(size_mix=((LLAMA2_7B, -1),))


class TestReplicationIdempotence:
    def test_replicating_twice_is_harmless(self, library):
        cluster = Cluster(sn40l_platform, library, num_nodes=3)
        hot = library.experts[0]
        cluster.replicate(hot)
        cluster.replicate(hot)
        assert len(cluster.owners_of(hot)) == 3

    def test_more_nodes_than_experts(self):
        small = build_samba_coe_library(2)
        with pytest.warns(UserWarning, match="exceeds the library size"):
            cluster = Cluster(sn40l_platform, small, num_nodes=5)
        assert cluster.num_nodes == 2  # empty shards are dropped

    def test_dropped_shards_keep_node_names_dense(self):
        small = build_samba_coe_library(3)
        with pytest.warns(UserWarning, match="exceeds the library size"):
            cluster = Cluster(sn40l_platform, small, num_nodes=6)
        assert [n.name for n in cluster.nodes] == ["node0", "node1", "node2"]
        # Every expert's owner index points at a live node.
        for expert in small.experts:
            (owner,) = cluster.owners_of(expert)
            assert owner in cluster.nodes
