"""Platform models against the paper's reported numbers."""

import pytest

from repro.models.catalog import LLAMA2_7B
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    gh200_capacity_bytes,
    sn40l_platform,
)
from repro.units import GiB

EXPERT = LLAMA2_7B.weight_bytes
RESERVED = LLAMA2_7B.weight_bytes + 8 * GiB  # router + KV headroom


@pytest.fixture(scope="module")
def platforms():
    return sn40l_platform(), dgx_a100_platform(), dgx_h100_platform()


class TestSwitchTimes:
    def test_paper_ratio_vs_a100(self, platforms):
        sn, a100, _ = platforms
        ratio = a100.switch_time(EXPERT) / sn.switch_time(EXPERT)
        assert 28 <= ratio <= 35  # paper: 31x

    def test_paper_ratio_vs_h100(self, platforms):
        sn, _, h100 = platforms
        ratio = h100.switch_time(EXPERT) / sn.switch_time(EXPERT)
        assert 14 <= ratio <= 18  # paper: 15-16x

    def test_sn40l_switch_is_about_13_ms(self, platforms):
        sn, _, _ = platforms
        assert sn.switch_time(EXPERT) == pytest.approx(12.9e-3, rel=0.1)


class TestDecodeOrdering:
    def test_sn40l_fastest_then_h100_then_a100(self, platforms):
        sn, a100, h100 = platforms
        times = [p.decode_token_time(LLAMA2_7B, 1, 1024) for p in (sn, h100, a100)]
        assert times[0] < times[1] < times[2]

    def test_expert_speedup_bands(self, platforms):
        sn, a100, h100 = platforms
        t_sn = sn.decode_token_time(LLAMA2_7B, 1, 1024)
        assert 1.8 <= a100.decode_token_time(LLAMA2_7B, 1, 1024) / t_sn <= 3.5
        assert 1.3 <= h100.decode_token_time(LLAMA2_7B, 1, 1024) / t_sn <= 2.5

    def test_kv_cache_growth_slows_decode(self, platforms):
        sn, _, _ = platforms
        short = sn.decode_token_time(LLAMA2_7B, 1, 128)
        long = sn.decode_token_time(LLAMA2_7B, 8, 4096)
        assert long > short


class TestCapacityCliffs:
    def test_dgx_hbm_holds_about_45_experts(self, platforms):
        _, a100, h100 = platforms
        for dgx in (a100, h100):
            slots = dgx.hbm_expert_slots(EXPERT, RESERVED)
            assert 40 <= slots <= 50  # paper: spill begins ~50 experts

    def test_dgx_ooms_near_150_experts(self, platforms):
        _, a100, _ = platforms
        hosted = a100.max_hosted_experts(EXPERT, RESERVED)
        assert 140 <= hosted <= 160  # paper: OOM at 150

    def test_sn40l_hosts_850_plus(self, platforms):
        sn, _, _ = platforms
        assert sn.max_hosted_experts(EXPERT, RESERVED) >= 850

    def test_sn40l_socket_capacity_vs_gh200(self):
        # Paper: ~2.5x higher aggregate capacity per socket than GH200.
        sn40l_socket_bytes = 64 * GiB + 1.5 * 1024 * GiB
        ratio = sn40l_socket_bytes / gh200_capacity_bytes()
        assert 2.4 <= ratio <= 3.1


class TestValidation:
    def test_bad_args_rejected(self, platforms):
        sn, _, _ = platforms
        with pytest.raises(ValueError):
            sn.decode_token_time(LLAMA2_7B, batch=0)
        with pytest.raises(ValueError):
            sn.switch_time(-1)
        with pytest.raises(ValueError):
            sn.generate_time(LLAMA2_7B, output_tokens=-1)
        with pytest.raises(ValueError):
            sn.hbm_expert_slots(0)
