"""Sensitivity of the reproduced conclusions to calibration constants."""

import pytest

from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.systems.sensitivity import (
    decode_win_sensitivity,
    fusion_direction_sensitivity,
    oom_point_sensitivity,
    switch_ratio_sensitivity,
    sweep_constant,
)


class TestSwitchRatio:
    def test_conclusion_robust_to_20_percent_bandwidth_error(self):
        result = switch_ratio_sensitivity()
        assert result.always_holds
        lo, hi = result.metric_range
        assert lo > 20 and hi < 45  # ratio moves linearly, stays ~30x

    def test_ratio_scales_linearly_with_bandwidth(self):
        result = switch_ratio_sensitivity(spread=(0.5, 1.0, 2.0))
        metrics = [p.metric for p in result.points]
        assert metrics[1] / metrics[0] == pytest.approx(2.0, rel=0.05)


class TestDecodeWin:
    def test_win_holds_down_to_70_percent_efficiency(self):
        result = decode_win_sensitivity()
        assert result.always_holds

    def test_win_shrinks_with_lower_efficiency(self):
        result = decode_win_sensitivity(efficiencies=(0.6, 0.9))
        assert result.points[0].metric < result.points[1].metric


class TestOOMPoint:
    def test_oom_stays_far_below_sn40l_capacity(self):
        points = oom_point_sensitivity()
        assert all(120 <= hosted <= 185 for hosted in points.values())

    def test_oom_moves_with_capacity(self):
        points = oom_point_sensitivity(host_fractions=(0.8, 1.2))
        assert points[0.8] < points[1.2]


class TestFusionDirection:
    def test_structural_win_across_efficiencies(self):
        result = fusion_direction_sensitivity()
        assert result.always_holds
        # Even at matched compute efficiency, materialisation and launch
        # overheads keep the fused plan ahead.
        assert min(p.metric for p in result.points) > 1.5


class TestSweepMachinery:
    def test_unknown_constant_rejected(self):
        with pytest.raises(ValueError, match="no constant"):
            sweep_constant("warp_core_efficiency", [1.0], "x",
                           lambda cal: (0.0, True))

    def test_sweep_preserves_order(self):
        result = sweep_constant(
            "hw_launch_s", [1e-6, 2e-6, 3e-6], "launches cost time",
            lambda cal: (cal.hw_launch_s, True),
        )
        assert [p.value for p in result.points] == [1e-6, 2e-6, 3e-6]
