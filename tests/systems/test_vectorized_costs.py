"""Vectorized platform cost math must be bitwise-equal to the scalar path.

The batched entry points exist purely for speed: the serving engine and
the sweep runner price whole request batches in one numpy call. Any
numeric divergence from the memoized scalar methods would silently change
simulated metrics, so equality here is exact (``==``), not approximate.
"""

import numpy as np
import pytest

from repro.models.catalog import LLAMA2_7B, LLAMA2_13B
from repro.systems.platforms import (
    Platform,
    clear_cost_caches,
    cost_cache_info,
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

PLATFORMS = [sn40l_platform(), dgx_a100_platform(), dgx_h100_platform()]
MODELS = [LLAMA2_7B, LLAMA2_13B]


@pytest.mark.parametrize("platform", PLATFORMS, ids=lambda p: p.name)
@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
class TestBitwiseEquality:
    def test_prefill_time_batch(self, platform, model):
        batches = np.array([1, 1, 2, 4, 8, 8, 16])
        seqs = np.array([1, 128, 256, 512, 1024, 4096, 32768])
        out = platform.prefill_time_batch(model, batches, seqs)
        for b, s, got in zip(batches, seqs, out):
            assert got == platform.prefill_time(model, int(b), int(s))

    def test_decode_token_time_batch(self, platform, model):
        batches = np.array([1, 1, 2, 4, 8, 16, 8])
        contexts = np.array([0, 1, 128, 1024, 4096, 16384, 131072])
        out = platform.decode_token_time_batch(model, batches, contexts)
        for b, c, got in zip(batches, contexts, out):
            assert got == platform.decode_token_time(model, int(b), int(c))

    def test_decode_span_time_batch(self, platform, model):
        outputs = np.array([0, 1, 7, 64, 256, 1000, 8192, 100000])
        batches = np.array([1, 2, 4, 8, 1, 8, 16, 4])
        prompts = np.array([0, 1, 64, 256, 1024, 512, 4096, 32768])
        out = platform.decode_span_time_batch(model, outputs, batches, prompts)
        for t, b, p, got in zip(outputs, batches, prompts, out):
            assert got == platform.decode_span_time(model, int(t), int(b), int(p))

    def test_switch_time_batch(self, platform, model):
        sizes = np.array([0, 1, model.weight_bytes, 7 * model.weight_bytes])
        out = platform.switch_time_batch(sizes)
        for size, got in zip(sizes, out):
            assert got == platform.switch_time(int(size))


class TestBatchValidationAndShape:
    def test_scalar_broadcast(self):
        platform = PLATFORMS[0]
        model = MODELS[0]
        out = platform.decode_span_time_batch(
            model, np.array([16, 32]), 8, 256
        )
        assert out.shape == (2,)
        assert out[0] == platform.decode_span_time(model, 16, 8, 256)

    def test_invalid_inputs_rejected(self):
        platform = PLATFORMS[0]
        model = MODELS[0]
        with pytest.raises(ValueError):
            platform.prefill_time_batch(model, [0], [1])
        with pytest.raises(ValueError):
            platform.decode_token_time_batch(model, [1], [-1])
        with pytest.raises(ValueError):
            platform.decode_span_time_batch(model, [-1], [1], [0])
        with pytest.raises(ValueError):
            platform.switch_time_batch([-1])


class TestBoundedCaches:
    def test_caches_have_explicit_bounds(self):
        for name, info in cost_cache_info().items():
            assert info.maxsize is not None, f"{name} cache is unbounded"

    def test_cache_stays_within_bound_under_churn(self):
        clear_cost_caches()
        platform = sn40l_platform()
        model = LLAMA2_7B
        for context in range(500):
            platform.decode_token_time(model, 1, context)
        info = Platform.decode_token_time.cache_info()
        assert info.currsize <= info.maxsize

    def test_clear_cost_caches_empties_everything(self):
        platform = sn40l_platform()
        model = LLAMA2_7B
        platform.prefill_time(model, 1, 128)
        platform.decode_span_time(model, 16, 1, 128)
        clear_cost_caches()
        for name, info in cost_cache_info().items():
            assert info.currsize == 0, f"{name} cache survived the clear"
