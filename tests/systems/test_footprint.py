"""Footprint analysis (paper Figure 13)."""

import pytest

from repro.models.catalog import LLAMA2_7B
from repro.systems.footprint import (
    dgx_nodes_required,
    footprint_sweep,
    max_experts_single_node,
    sn40l_nodes_required,
)
from repro.systems.platforms import dgx_a100_platform, sn40l_platform
from repro.units import GiB

EXPERT = LLAMA2_7B.weight_bytes
RESERVED = LLAMA2_7B.weight_bytes + 8 * GiB


class TestPaperHeadline:
    def test_850_experts_fit_one_sn40l_node(self):
        assert sn40l_nodes_required(sn40l_platform(), 850, EXPERT, RESERVED) == 1

    def test_same_coe_needs_about_19_dgx_nodes(self):
        nodes = dgx_nodes_required(dgx_a100_platform(), 850, EXPERT, RESERVED)
        assert 17 <= nodes <= 20  # paper: 19x footprint reduction


class TestScaling:
    def test_footprint_monotonic_in_experts(self):
        dgx = dgx_a100_platform()
        counts = [dgx_nodes_required(dgx, n, EXPERT, RESERVED)
                  for n in (10, 100, 400, 850)]
        assert counts == sorted(counts)

    def test_zero_experts_zero_nodes(self):
        assert dgx_nodes_required(dgx_a100_platform(), 0, EXPERT) == 0
        assert sn40l_nodes_required(sn40l_platform(), 0, EXPERT) == 0

    def test_max_experts_hbm_only_vs_tiered(self):
        sn = sn40l_platform()
        hbm_only = max_experts_single_node(sn, EXPERT, RESERVED, hbm_only=True)
        tiered = max_experts_single_node(sn, EXPERT, RESERVED)
        assert tiered > 10 * hbm_only  # DDR is the capacity story

    def test_sweep_covers_all_platforms(self):
        points = footprint_sweep(
            [dgx_a100_platform()], sn40l_platform(), [100, 850], EXPERT, RESERVED
        )
        assert {p.platform for p in points} == {"DGX-A100", "SN40L-Node"}
        assert len(points) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            dgx_nodes_required(dgx_a100_platform(), -1, EXPERT)
