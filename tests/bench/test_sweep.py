"""The sweep runner's determinism contract.

The load-bearing property: a parallel sweep is byte-identical to a
serial sweep of the same grid, because each point's seed derives from
``(grid index, base seed)`` alone and results merge in grid order.
"""

import json
import os

import pytest

from repro.bench.sweep import (
    SweepPoint,
    derive_seed,
    grid,
    run_sweep,
    sweep_points,
)
from repro.models.catalog import LLAMA2_7B
from repro.systems.platforms import cost_cache_info, sn40l_platform


# ----------------------------------------------------------------------
# Grid expansion and seeding
# ----------------------------------------------------------------------


def test_grid_is_row_major_last_axis_fastest():
    points = grid({"policy": ["fifo", "overlap"], "nodes": [1, 2]})
    assert points == [
        {"policy": "fifo", "nodes": 1},
        {"policy": "fifo", "nodes": 2},
        {"policy": "overlap", "nodes": 1},
        {"policy": "overlap", "nodes": 2},
    ]


def test_derive_seed_is_stable_and_nonnegative():
    # Pinned values: the mapping must never drift across versions, or
    # every committed BENCH_* payload silently changes.
    assert derive_seed(1234, 0) == derive_seed(1234, 0)
    assert derive_seed(1234, 0) != derive_seed(1234, 1)
    assert derive_seed(1234, 0) != derive_seed(1235, 0)
    for i in range(64):
        seed = derive_seed(0, i)
        assert 0 <= seed < 2**63


def test_sweep_points_carry_index_params_and_seed():
    points = sweep_points({"x": [10, 20]}, base_seed=7)
    assert [p.index for p in points] == [0, 1]
    assert [p["x"] for p in points] == [10, 20]
    assert points[0].seed == derive_seed(7, 0)
    assert points[1].seed == derive_seed(7, 1)
    assert points[0].get("missing", "d") == "d"


def test_sweep_points_accepts_explicit_param_list():
    points = sweep_points([{"run": "clean"}, {"run": "faulty"}])
    assert [p["run"] for p in points] == ["clean", "faulty"]


# ----------------------------------------------------------------------
# Execution: ordering, cache hygiene, parallel == serial
# ----------------------------------------------------------------------


def _echo_point(point: SweepPoint) -> dict:
    """Module-level so the fork pool can pickle it by name."""
    return {"index": point.index, "seed": point.seed, **point.params}


def _simulate_point(point: SweepPoint) -> dict:
    """A tiny real simulation: seed-dependent cost-model queries."""
    import random

    rng = random.Random(point.seed)
    platform = sn40l_platform()
    tokens = rng.randrange(8, 64)
    return {
        "index": point.index,
        "tokens": tokens,
        "span_s": platform.decode_span_time(LLAMA2_7B, tokens, 1, 128),
    }


def _cache_size_point(point: SweepPoint) -> int:
    """Populate the cost caches, report their size *on entry*."""
    entering = sum(i.currsize for i in cost_cache_info().values())
    platform = sn40l_platform()
    platform.decode_span_time(LLAMA2_7B, 16 + point.index, 1, 128)
    return entering


def test_serial_results_merge_in_grid_order():
    results = run_sweep(
        _echo_point, {"a": [1, 2], "b": ["x", "y"]}, base_seed=3,
        processes=1,
    )
    assert [r["index"] for r in results] == [0, 1, 2, 3]
    assert [(r["a"], r["b"]) for r in results] == [
        (1, "x"), (1, "y"), (2, "x"), (2, "y"),
    ]
    assert all(r["seed"] == derive_seed(3, r["index"]) for r in results)


def test_cost_caches_cleared_between_points():
    # Each point populates the memoized cost caches; the runner must
    # clear them before the next point, so every point enters cold.
    sizes = run_sweep(_cache_size_point, {"i": range(4)}, processes=1)
    assert sizes == [0, 0, 0, 0]


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork start method unavailable"
)
def test_parallel_run_is_byte_identical_to_serial():
    axes = {"workload": ["zipf", "drift"], "rep": [0, 1, 2]}
    serial = run_sweep(_simulate_point, axes, base_seed=99, processes=1)
    parallel = run_sweep(_simulate_point, axes, base_seed=99, processes=2)
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


def test_processes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "1")
    results = run_sweep(_echo_point, {"a": [1, 2]})
    assert [r["a"] for r in results] == [1, 2]
