"""Sessions: timing compiled models."""

import pytest

from repro.core.compile import compile_model
from repro.core.session import RunResult, Session
from repro.models.catalog import LLAMA2_7B
from repro.models.fftconv import fftconv_graph
from repro.models.transformer import decode_graph
from repro.perf.kernel_cost import Orchestration


@pytest.fixture(scope="module")
def decode_models():
    g = decode_graph(LLAMA2_7B, batch=1, context=1024, tp=8)
    return {
        policy: compile_model(g, sockets=8, policy=policy)
        for policy in ("unfused", "streaming")
    }


class TestSessionRuns:
    def test_streaming_beats_unfused(self, decode_models):
        session = Session(sockets=8)
        unf = session.run(decode_models["unfused"], Orchestration.SOFTWARE)
        fus = session.run(decode_models["streaming"], Orchestration.SOFTWARE)
        assert fus.total_s < unf.total_s

    def test_hardware_orchestration_helps(self, decode_models):
        session = Session(sockets=8)
        so = session.run(decode_models["streaming"], Orchestration.SOFTWARE)
        ho = session.run(decode_models["streaming"], Orchestration.HARDWARE)
        assert ho.total_s < so.total_s

    def test_socket_mismatch_rejected(self, decode_models):
        with pytest.raises(ValueError):
            Session(sockets=1).run(decode_models["streaming"])

    def test_fft_single_socket_single_kernel(self):
        model = compile_model(fftconv_graph(seqlen=1 << 15, channels=4),
                              sockets=1, policy="streaming")
        result = Session(sockets=1).run(model)
        assert result.num_launches <= 2
        assert result.total_s > 0

    def test_spill_overhead_nonnegative(self, decode_models):
        session = Session(sockets=8)
        result = session.run(decode_models["streaming"])
        assert result.spill_overhead_s >= 0.0


class TestScheduleReplay:
    """The AGCU orchestrator model and the kernel cost model agree."""

    @pytest.mark.parametrize("orch", [Orchestration.SOFTWARE,
                                      Orchestration.HARDWARE])
    def test_orchestrator_total_matches_cost_model(self, decode_models, orch):
        session = Session(sockets=8)
        model = decode_models["streaming"]
        cost = session.run(model, orch)
        schedule = session.schedule(model, orch)
        assert schedule.total_s == pytest.approx(cost.cost.total_s, rel=1e-9)

    def test_software_schedule_emits_three_commands_per_kernel(self, decode_models):
        session = Session(sockets=8)
        schedule = session.schedule(decode_models["streaming"],
                                    Orchestration.SOFTWARE)
        kernels = {e.kernel for e in schedule.events}
        commands_per_kernel = len(schedule.events) / len(kernels)
        assert commands_per_kernel == 3  # ProgramLoad, ArgLoad, Execute

    def test_hardware_schedule_has_minimal_overhead(self, decode_models):
        session = Session(sockets=8)
        sw = session.schedule(decode_models["streaming"], Orchestration.SOFTWARE)
        hw = session.schedule(decode_models["streaming"], Orchestration.HARDWARE)
        assert hw.overhead_s < sw.overhead_s / 10
        assert hw.exec_s == pytest.approx(sw.exec_s)


class TestRunResultTimeline:
    def test_kernel_and_launch_spans_cover_the_cost(self, decode_models):
        session = Session(sockets=8)
        result = session.run(decode_models["streaming"], Orchestration.SOFTWARE)
        timeline = result.to_timeline()
        assert {"kernel", "orchestration"} <= set(timeline.lanes)
        assert len(timeline.spans("kernel")) == result.cost.num_launches
        assert timeline.end_s == pytest.approx(result.cost.total_s, rel=1e-9)

    def test_spill_overhead_appears_as_memory_span(self, decode_models):
        session = Session(sockets=8)
        base = session.run(decode_models["streaming"])
        spilled = RunResult(
            model=base.model, cost=base.cost, spill_overhead_s=1.5e-3
        )
        timeline = spilled.to_timeline()
        spans = timeline.spans("memory", category="spill")
        assert len(spans) == 1
        assert spans[0].duration_s == pytest.approx(1.5e-3)
        assert timeline.end_s == pytest.approx(spilled.total_s, rel=1e-9)

    def test_no_spill_no_memory_lane(self, decode_models):
        result = Session(sockets=8).run(decode_models["streaming"])
        if result.spill_overhead_s == 0:
            assert "memory" not in result.to_timeline().lanes
