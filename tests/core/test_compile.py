"""The compile pipeline: fusion + symbols + memory planning."""

import pytest

from repro.core.compile import build_symbols, compile_model
from repro.dataflow import fusion
from repro.memory.tiers import TierKind
from repro.models.catalog import LLAMA2_7B
from repro.models.fftconv import monarch_fft_graph
from repro.models.transformer import decode_graph


class TestBuildSymbols:
    def test_weights_are_read_only_symbols(self):
        plan = fusion.streaming_fusion(monarch_fft_graph(m=64))
        symbols = {s.name: s for s in build_symbols(plan)}
        assert symbols["f0"].read_only
        assert symbols["f0"].is_weight
        assert not symbols["x"].is_weight

    def test_internal_tensors_make_no_symbols(self):
        plan = fusion.streaming_fusion(monarch_fft_graph(m=64))
        names = {s.name for s in build_symbols(plan)}
        assert "y" not in names and "z" not in names

    def test_unfused_materialises_intermediates(self):
        plan = fusion.unfused(monarch_fft_graph(m=64))
        names = {s.name for s in build_symbols(plan)}
        assert {"y", "z", "zt"} <= names

    def test_uses_span_producing_and_consuming_kernels(self):
        plan = fusion.unfused(monarch_fft_graph(m=64))
        symbols = {s.name: s for s in build_symbols(plan)}
        # y is produced by kernel 0 (gemm0) and consumed by kernel 1 (mul).
        assert symbols["y"].uses == (0, 1)


class TestCompileModel:
    def test_policies_produce_expected_kernel_counts(self):
        g = monarch_fft_graph(m=64)
        assert compile_model(g, policy="unfused").num_kernels == 4
        assert compile_model(g, policy="streaming").num_kernels == 1

    def test_memory_plan_fits_hbm(self):
        g = decode_graph(LLAMA2_7B, batch=1, context=512, tp=8)
        model = compile_model(g, sockets=8, policy="streaming")
        assert model.hbm_bytes <= 8 * 64 * 2**30
        assert not model.memory.spilled

    def test_weights_dominate_hbm_extent(self):
        g = decode_graph(LLAMA2_7B, batch=1, context=512, tp=8)
        model = compile_model(g, sockets=8)
        assert model.hbm_bytes >= LLAMA2_7B.weight_bytes

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="streaming"):
            compile_model(monarch_fft_graph(m=64), policy="magic")

    def test_bad_socket_count_rejected(self):
        with pytest.raises(ValueError):
            compile_model(monarch_fft_graph(m=64), sockets=0)
