"""Session behaviour when the memory plan is forced to spill."""

import pytest

from repro.arch.config import MemoryTierSpec, SocketConfig
from repro.core.compile import compile_model
from repro.core.session import Session
from repro.models.transformer import TransformerConfig, prefill_graph
from repro.units import GB, GiB, TB, TiB

SMALL = TransformerConfig("spilly", hidden=1024, layers=4, heads=8,
                          kv_heads=8, intermediate=2816, vocab=32000)


def _tiny_hbm_socket(hbm_gib: float) -> SocketConfig:
    return SocketConfig(
        hbm=MemoryTierSpec("HBM", int(hbm_gib * GiB), 2 * TB, 0.4e-6),
        ddr=MemoryTierSpec("DDR", int(1.5 * TiB), 200 * GB, 0.9e-6),
    )


class TestForcedSpill:
    def test_spill_overhead_appears_and_slows_the_run(self):
        graph = prefill_graph(SMALL, batch=8, seq=2048)
        # Weights ~0.2 GiB; activations at batch 8 overflow a small HBM.
        socket = _tiny_hbm_socket(0.4)
        model = compile_model(graph, socket=socket, policy="streaming")
        assert model.memory.spilled
        session = Session(socket=socket)
        spilled_run = session.run(model)
        assert spilled_run.spill_overhead_s > 0

        roomy = SocketConfig()
        fits = compile_model(graph, socket=roomy, policy="streaming")
        assert not fits.memory.spilled
        clean_run = Session(socket=roomy).run(fits)
        assert clean_run.spill_overhead_s == 0.0
        assert spilled_run.total_s > clean_run.total_s

    def test_summary_mentions_spill(self):
        graph = prefill_graph(SMALL, batch=8, seq=2048)
        socket = _tiny_hbm_socket(0.4)
        model = compile_model(graph, socket=socket)
        result = Session(socket=socket).run(model)
        assert "spill" in result.summary()
