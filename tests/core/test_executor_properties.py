"""Property tests: fused execution always equals unfused execution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executor import execute_graph, execute_plan, random_inputs
from repro.dataflow import fusion
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.operators import elementwise, gemm, softmax, tensor, transpose


@st.composite
def executable_graphs(draw):
    """Random shape-consistent graphs (square tensors throughout)."""
    num_ops = draw(st.integers(2, 12))
    dim = 8
    g = DataflowGraph("random-exec")
    produced = [tensor("x", (dim, dim))]
    for idx in range(num_ops):
        src = produced[draw(st.integers(0, len(produced) - 1))]
        kind = draw(st.sampled_from(["gemm", "mul", "transpose", "softmax"]))
        if kind == "gemm":
            w = tensor(f"w{idx}", (dim, dim), is_weight=True)
            op = gemm(f"op{idx}", w, src, f"t{idx}", dim, dim, dim)
        elif kind == "mul":
            op = elementwise(f"op{idx}", [src], f"t{idx}", 1.0)
        elif kind == "transpose":
            op = transpose(f"op{idx}", src, f"t{idx}")
        else:
            op = softmax(f"op{idx}", src, f"t{idx}")
        g.add(op)
        produced.append(op.outputs[0])
    return g


class TestExecutionEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(executable_graphs(), st.integers(0, 2**16))
    def test_every_policy_computes_the_same_outputs(self, graph, seed):
        inputs = random_inputs(graph, seed=seed)
        reference = execute_graph(graph, inputs)
        for policy in (fusion.unfused, fusion.conventional_fusion,
                       fusion.streaming_fusion):
            outputs = execute_plan(policy(graph), inputs)
            assert set(outputs) == set(reference)
            for name in reference:
                np.testing.assert_allclose(
                    outputs[name], reference[name], rtol=1e-3, atol=1e-3
                )

    @settings(max_examples=30, deadline=None)
    @given(executable_graphs())
    def test_outputs_are_finite(self, graph):
        outputs = execute_graph(graph, random_inputs(graph, seed=0))
        for value in outputs.values():
            assert np.all(np.isfinite(value))
