"""Functional graph execution."""

import numpy as np
import pytest

from repro.core.executor import (
    ExecutionError,
    execute_graph,
    execute_operator,
    execute_plan,
    random_inputs,
)
from repro.dataflow import fusion
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.operators import elementwise, softmax, tensor
from repro.models.fftconv import fftconv_graph, monarch_fft_graph, monarch_reference
from repro.models.moe import mixtral_8x7b, moe_decode_graph
from repro.models.transformer import TransformerConfig, decode_graph, prefill_graph

TINY = TransformerConfig("tiny", hidden=32, layers=2, heads=4, kv_heads=4,
                         intermediate=64, vocab=128, max_seq=64)


class TestExactSemantics:
    """Shape-consistent graphs execute with exact numerics."""

    def test_monarch_matches_reference(self):
        graph = monarch_fft_graph(m=16)
        inputs = random_inputs(graph, seed=3)
        outputs = execute_graph(graph, inputs)
        expected = monarch_reference(
            inputs["x"], inputs["f0"], inputs["twiddle"], inputs["f1"]
        )
        np.testing.assert_allclose(outputs["out"], expected, rtol=1e-4, atol=1e-4)

    def test_softmax_rows_sum_to_one(self):
        g = DataflowGraph()
        g.add(softmax("sm", tensor("x", (4, 8)), "y"))
        out = execute_graph(g, random_inputs(g))
        np.testing.assert_allclose(out["y"].sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_silu_and_gelu_semantics(self):
        g = DataflowGraph()
        x = tensor("x", (16,))
        g.add(elementwise("a.silu", [x], "s", 4.0))
        g.add(elementwise("b.gelu", [x], "t", 8.0))
        env = {"x": np.linspace(-3, 3, 16).astype(np.float32)}
        full = execute_graph(g, env, keep_intermediates=True)
        expected_silu = env["x"] / (1 + np.exp(-env["x"]))
        np.testing.assert_allclose(full["s"], expected_silu, rtol=1e-5)
        assert np.all(np.abs(full["t"]) <= np.abs(env["x"]))  # gelu shrinks


class TestFusedEquivalence:
    """Fusion must never change results: plan execution == graph execution."""

    @pytest.mark.parametrize("policy", [fusion.unfused, fusion.conventional_fusion,
                                        fusion.streaming_fusion])
    def test_monarch_policies_agree(self, policy):
        graph = monarch_fft_graph(m=16)
        inputs = random_inputs(graph, seed=1)
        reference = execute_graph(graph, inputs)
        plan = policy(graph)
        fused = execute_plan(plan, inputs)
        assert set(fused) == set(reference)
        for name in reference:
            np.testing.assert_allclose(fused[name], reference[name],
                                       rtol=1e-5, atol=1e-5)

    def test_fftconv_policies_agree(self):
        graph = fftconv_graph(seqlen=1 << 10, channels=2)
        inputs = random_inputs(graph, seed=2)
        reference = execute_graph(graph, inputs)
        fused = execute_plan(fusion.streaming_fusion(graph), inputs)
        for name in reference:
            np.testing.assert_allclose(fused[name], reference[name],
                                       rtol=1e-4, atol=1e-4)


class TestModelExecution:
    """Whole models run end to end with declared shapes."""

    def test_tiny_prefill_produces_token(self):
        graph = prefill_graph(TINY, batch=1, seq=8)
        outputs = execute_graph(graph, random_inputs(graph))
        assert outputs["next_token"].shape == (1, 1)
        assert outputs["next_token"].dtype == np.int32

    def test_tiny_decode_runs_and_writes_kv(self):
        graph = decode_graph(TINY, batch=2, context=16)
        outputs = execute_graph(graph, random_inputs(graph))
        assert outputs["next_token"].shape == (2, 1)
        assert outputs["l0.kcache"].shape == (2, 4, 16, 8)

    def test_moe_decode_runs(self):
        cfg = mixtral_8x7b()
        small = moe_decode_graph(
            type(cfg)(name="tiny-moe",
                      dense=TINY, num_experts=4, top_k=2),
            batch=1, context=8,
        )
        outputs = execute_graph(small, random_inputs(small))
        assert outputs["next_token"].shape == (1, 1)

    def test_execution_is_deterministic(self):
        graph = prefill_graph(TINY, batch=1, seq=8)
        a = execute_graph(graph, random_inputs(graph, seed=5))
        b = execute_graph(graph, random_inputs(graph, seed=5))
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])


class TestErrors:
    def test_missing_input_fails_loudly(self):
        graph = monarch_fft_graph(m=8)
        with pytest.raises(ExecutionError, match="missing external inputs"):
            execute_graph(graph, {})

    def test_operator_missing_tensor(self):
        graph = monarch_fft_graph(m=8)
        op = graph["mul"]
        with pytest.raises(ExecutionError):
            execute_operator(op, {})
