"""The command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "639 TFLOPS" in out
        assert "520.0 MiB" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "llama2-7b" in out
        assert "bloom-176b" in out

    def test_fusion_decode(self, capsys):
        assert main(["fusion", "llama2-7b", "decode", "--seq", "512"]) == 0
        out = capsys.readouterr().out
        assert "fused+HO" in out
        assert "x)" in out

    def test_fusion_unknown_model(self, capsys):
        assert main(["fusion", "gpt-99", "decode"]) == 2

    def test_coe(self, capsys):
        assert main(["coe", "--experts", "60", "--batch", "2",
                     "--tokens", "5"]) == 0
        out = capsys.readouterr().out
        assert "SN40L-Node" in out
        assert "slower than SN40L" in out

    def test_coe_reports_oom(self, capsys):
        assert main(["coe", "--experts", "200", "--batch", "1",
                     "--tokens", "5"]) == 0
        assert "OOM" in capsys.readouterr().out

    def test_footprint(self, capsys):
        assert main(["footprint", "--experts", "850"]) == 0
        out = capsys.readouterr().out
        assert "SN40L nodes : 1" in out

    def test_intensity(self, capsys):
        assert main(["intensity"]) == 0
        out = capsys.readouterr().out
        assert "410.4" in out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlanAndTrace:
    def test_plan_prints_kernels(self, capsys):
        assert main(["plan", "llama2-7b", "decode", "--seq", "256"]) == 0
        out = capsys.readouterr().out
        assert "stages :" in out
        assert "more kernels" in out

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.json"
        assert main(["trace", "llama2-7b", "decode", "--seq", "256",
                     "-o", str(path), "--hardware"]) == 0
        data = json.loads(path.read_text())
        assert data["traceEvents"]

    def test_plan_unknown_model(self):
        assert main(["plan", "nope", "decode"]) == 2
