"""Die-aware placement: splitting a pipeline across the two-die package."""

import pytest

from repro.dataflow import fusion
from repro.dataflow.placement import place_kernel, split_across_dies
from repro.models.fftconv import monarch_fft_graph


@pytest.fixture(scope="module")
def placed():
    kernel = fusion.streaming_fusion(monarch_fft_graph(m=512)).kernels[0]
    return kernel, place_kernel(kernel)


class TestDieSplit:
    def test_partitions_all_stages(self, placed):
        kernel, placement = placed
        split = split_across_dies(kernel, placement)
        assert set(split.die0_stages) | set(split.die1_stages) == {
            s.op_name for s in placement.stages
        }
        assert not set(split.die0_stages) & set(split.die1_stages)

    def test_balances_pcu_load(self, placed):
        kernel, placement = placed
        split = split_across_dies(kernel, placement)
        pcus = {s.op_name: s.pcus for s in placement.stages}
        die0 = sum(pcus[n] for n in split.die0_stages)
        die1 = sum(pcus[n] for n in split.die1_stages)
        total = die0 + die1
        # The two big GEMMs dominate; the cut puts one on each die.
        assert abs(die0 - die1) < 0.2 * total

    def test_crossing_traffic_identified(self, placed):
        kernel, placement = placed
        split = split_across_dies(kernel, placement)
        # The monarch pipeline is a chain: exactly one tensor crosses the
        # single contiguous cut (the transpose folds into its producer's
        # die, so z or zt carries the boundary).
        assert len(split.crossing_tensors) == 1
        assert split.crossing_bytes == 512 * 512 * 2

    def test_d2d_time(self, placed):
        kernel, placement = placed
        split = split_across_dies(kernel, placement)
        assert split.d2d_time(1e12) == pytest.approx(split.crossing_bytes / 1e12)
        with pytest.raises(ValueError):
            split.d2d_time(0)

    def test_empty_placement_rejected(self, placed):
        kernel, placement = placed
        from repro.dataflow.placement import KernelPlacement

        with pytest.raises(ValueError):
            split_across_dies(kernel, KernelPlacement(kernel_name="empty"))
