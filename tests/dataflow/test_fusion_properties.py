"""Property-based fusion invariants over randomly generated graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import fusion
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.operators import (
    elementwise,
    gemm,
    softmax,
    tensor,
    transpose,
)


@st.composite
def random_graphs(draw):
    """Random layered DAGs mixing GEMMs, elementwise ops, and transposes.

    Every op consumes the output of a randomly chosen earlier op (or the
    graph input), so graphs are connected, acyclic, and varied in shape.
    """
    num_ops = draw(st.integers(2, 18))
    dim = draw(st.sampled_from([4, 8, 16]))
    g = DataflowGraph("random")
    produced = [tensor("x", (dim, dim))]
    for idx in range(num_ops):
        src = produced[draw(st.integers(0, len(produced) - 1))]
        kind = draw(st.sampled_from(["gemm", "ew", "transpose", "softmax"]))
        if kind == "gemm":
            w = tensor(f"w{idx}", (dim, dim), is_weight=True)
            op = gemm(f"op{idx}", src, w, f"t{idx}", dim, dim, dim)
        elif kind == "ew":
            op = elementwise(f"op{idx}", [src], f"t{idx}", 2.0)
        elif kind == "transpose":
            op = transpose(f"op{idx}", src, f"t{idx}")
        else:
            op = softmax(f"op{idx}", src, f"t{idx}")
        g.add(op)
        produced.append(op.outputs[0])
    return g


POLICIES = [
    fusion.unfused,
    fusion.conventional_fusion,
    fusion.streaming_fusion,
]


class TestFusionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_graphs(), st.sampled_from(POLICIES))
    def test_plans_partition_the_graph(self, graph, policy):
        plan = policy(graph)
        plan.validate()  # every op in exactly one kernel

    @settings(max_examples=60, deadline=None)
    @given(random_graphs(), st.sampled_from(POLICIES))
    def test_flops_are_conserved(self, graph, policy):
        plan = policy(graph)
        assert plan.total_flops == pytest.approx(graph.total_flops)

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_fusion_never_increases_traffic(self, graph):
        """Minimal off-chip traffic is monotone: more fusion, less traffic."""
        unfused_traffic = fusion.unfused(graph).total_offchip_bytes
        streaming_traffic = fusion.streaming_fusion(graph).total_offchip_bytes
        assert streaming_traffic <= unfused_traffic

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_kernel_schedule_respects_dependencies(self, graph):
        """Each kernel only reads tensors produced earlier (or inputs)."""
        plan = fusion.streaming_fusion(graph)
        available = {t.name for t in graph.external_inputs()}
        for kernel in plan.kernels:
            internal = {t.name for op in kernel.ops for t in op.outputs}
            for op in kernel.ops:
                for t in op.inputs:
                    assert t.name in available or t.name in internal
            available |= internal

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_boundary_accounting_balances(self, graph):
        """Internal + external outputs of each kernel = its ops' outputs."""
        plan = fusion.conventional_fusion(graph)
        for kernel in plan.kernels:
            produced = {t.name for op in kernel.ops for t in op.outputs}
            accounted = (
                {t.name for t in kernel.internal_tensors}
                | {t.name for t in kernel.external_outputs}
            )
            assert produced == accounted

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_conventional_never_beats_streaming_on_intensity(self, graph):
        conventional = fusion.conventional_fusion(graph)
        streaming = fusion.streaming_fusion(graph)
        assert (
            streaming.operational_intensity
            >= conventional.operational_intensity * 0.999
        )
