"""Graph and plan rendering."""

import pytest

from repro.dataflow import fusion
from repro.dataflow.visualize import plan_summary, to_dot
from repro.models.fftconv import monarch_fft_graph
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import decode_graph


@pytest.fixture(scope="module")
def monarch():
    return monarch_fft_graph(m=64)


class TestDot:
    def test_every_op_and_edge_rendered(self, monarch):
        dot = to_dot(monarch)
        for op in monarch.operators:
            assert f'"{op.name}"' in dot
        assert '"gemm0" -> "mul"' in dot
        assert '"transpose" -> "gemm1"' in dot
        assert dot.startswith("digraph")
        assert dot.endswith("}")

    def test_plan_renders_kernel_clusters(self, monarch):
        plan = fusion.manual_plan(monarch, [["gemm0", "mul", "transpose"],
                                            ["gemm1"]])
        dot = to_dot(monarch, plan)
        assert dot.count("subgraph cluster_") == 2

    def test_edge_labels_carry_bytes(self, monarch):
        dot = to_dot(monarch)
        assert "KiB" in dot or "MiB" in dot

    def test_size_guard(self):
        big = decode_graph(LLAMA2_7B, batch=1, context=128, tp=1)
        with pytest.raises(ValueError, match="max_ops"):
            to_dot(big)
        assert to_dot(big, max_ops=10_000)  # explicit opt-in works


class TestPlanSummary:
    def test_shows_stages_and_folded_ops(self, monarch):
        plan = fusion.streaming_fusion(monarch)
        text = plan_summary(plan)
        assert "gemm0 -> mul -> gemm1" in text
        assert "folded : transpose" in text
        assert "buffers:" in text

    def test_truncates_long_plans(self):
        graph = decode_graph(LLAMA2_7B, batch=1, context=128, tp=1)
        plan = fusion.unfused(graph)
        text = plan_summary(plan, max_kernels=5)
        assert "more kernels" in text
