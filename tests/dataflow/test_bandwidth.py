"""Static bandwidth model (paper Section VII)."""

import pytest

from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.dataflow.bandwidth import (
    Channel,
    Stream,
    analyze_kernel_bandwidth,
    channel_capacities,
    kernel_streams,
    throttle_recommendations,
)
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import decode_graph


@pytest.fixture(scope="module")
def layer_kernel():
    graph = decode_graph(LLAMA2_7B, batch=1, context=2048, tp=8)
    plan = fusion.group_by_prefix(graph)
    return next(k for k in plan.kernels if k.ops[0].name.startswith("l0."))


class TestChannelCapacities:
    def test_all_channels_present(self):
        caps = channel_capacities(SocketConfig(), sockets=8)
        assert set(caps) == set(Channel)

    def test_hbm_scales_with_sockets(self):
        one = channel_capacities(SocketConfig(), 1)[Channel.HBM]
        eight = channel_capacities(SocketConfig(), 8)[Channel.HBM]
        assert eight == pytest.approx(8 * one)

    def test_host_link_does_not_scale(self):
        one = channel_capacities(SocketConfig(), 1)[Channel.HOST]
        eight = channel_capacities(SocketConfig(), 8)[Channel.HOST]
        assert eight == one


class TestKernelStreams:
    def test_every_boundary_tensor_becomes_a_stream(self, layer_kernel):
        streams = kernel_streams(layer_kernel, duration_s=1e-3)
        names = {s.name for s in streams}
        expected = len(layer_kernel.external_inputs) + len(
            layer_kernel.external_outputs
        ) + (1 if layer_kernel.comm_bytes else 0)
        assert len(names) == expected

    def test_rates_spread_bytes_over_duration(self, layer_kernel):
        fast = kernel_streams(layer_kernel, duration_s=1e-4)
        slow = kernel_streams(layer_kernel, duration_s=1e-2)
        assert sum(s.rate for s in fast) == pytest.approx(
            100 * sum(s.rate for s in slow)
        )

    def test_collectives_land_on_p2p(self, layer_kernel):
        streams = kernel_streams(layer_kernel, duration_s=1e-3)
        assert any(s.channel is Channel.P2P for s in streams)

    def test_spilled_weights_land_on_ddr(self, layer_kernel):
        streams = kernel_streams(layer_kernel, 1e-3, weight_channel=Channel.DDR)
        ddr_streams = [s for s in streams if s.channel is Channel.DDR]
        assert ddr_streams
        assert all(s.name.startswith("in:") for s in ddr_streams)

    def test_bad_duration_rejected(self, layer_kernel):
        with pytest.raises(ValueError):
            kernel_streams(layer_kernel, duration_s=0)


class TestAnalysis:
    def test_decode_layer_at_target_rate_is_feasible(self, layer_kernel):
        # The fused decoder saturates ~85% of HBM BW: at the per-layer
        # decode duration, HBM subscription should be near but below 1/0.85.
        duration = layer_kernel.weight_bytes / (8 * 2e12 * 0.85)
        report = analyze_kernel_bandwidth(layer_kernel, duration, sockets=8)
        assert 0.5 < report.budgets[Channel.HBM].subscription <= 1.0
        assert report.slowdown == 1.0

    def test_impossible_rate_is_flagged(self, layer_kernel):
        report = analyze_kernel_bandwidth(layer_kernel, 1e-6, sockets=8)
        assert report.budgets[Channel.HBM].oversubscribed
        assert report.slowdown > 1.0
        assert Channel.HBM in report.oversubscribed_channels()

    def test_ddr_resident_weights_bottleneck_on_ddr(self, layer_kernel):
        duration = layer_kernel.weight_bytes / (8 * 2e12 * 0.85)
        report = analyze_kernel_bandwidth(
            layer_kernel, duration, sockets=8, weight_channel=Channel.DDR
        )
        assert report.bottleneck.channel is Channel.DDR
        assert report.slowdown > 5  # the HBM-ablation story, statically

    def test_summary_mentions_busy_channels(self, layer_kernel):
        report = analyze_kernel_bandwidth(layer_kernel, 1e-3, sockets=8)
        assert "hbm" in report.summary()


class TestThrottling:
    def test_healthy_channels_untouched(self, layer_kernel):
        duration = layer_kernel.weight_bytes / (8 * 2e12 * 0.5)
        report = analyze_kernel_bandwidth(layer_kernel, duration, sockets=8)
        factors = throttle_recommendations(report)
        assert all(f == 1.0 for f in factors.values())

    def test_oversubscribed_streams_scaled_to_fit(self, layer_kernel):
        report = analyze_kernel_bandwidth(layer_kernel, 1e-6, sockets=8)
        factors = throttle_recommendations(report)
        hbm = report.budgets[Channel.HBM]
        scaled_demand = sum(
            s.rate * factors[s.name] for s in hbm.streams
        )
        assert scaled_demand <= hbm.capacity * 1.0001

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Stream("bad", Channel.HBM, rate=-1.0)
