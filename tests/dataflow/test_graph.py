"""Dataflow graph construction and analysis."""

import pytest

from repro.dataflow.graph import (
    AccessPattern,
    DataflowGraph,
    DType,
    GraphError,
    Operator,
    OpKind,
    TensorSpec,
)
from repro.dataflow.operators import elementwise, gemm, tensor


def _chain(n=3):
    """x -> e0 -> e1 -> ... -> e(n-1)."""
    g = DataflowGraph("chain")
    src = tensor("x", (4, 4))
    for i in range(n):
        op = elementwise(f"e{i}", [src], f"t{i}")
        g.add(op)
        src = op.outputs[0]
    return g


class TestTensorSpec:
    def test_size_accounting(self):
        t = TensorSpec("x", (8, 4), DType.BF16)
        assert t.num_elements == 32
        assert t.size_bytes == 64

    def test_fp32_doubles_bytes(self):
        assert TensorSpec("x", (8,), DType.FP32).size_bytes == 32

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("x", (0, 4))


class TestGraphStructure:
    def test_duplicate_op_rejected(self):
        g = DataflowGraph()
        op = elementwise("e", [tensor("x", (2,))], "y")
        g.add(op)
        with pytest.raises(GraphError):
            g.add(op)

    def test_duplicate_producer_rejected(self):
        g = DataflowGraph()
        g.add(elementwise("a", [tensor("x", (2,))], "y"))
        with pytest.raises(GraphError):
            g.add(elementwise("b", [tensor("x", (2,))], "y"))

    def test_producer_consumer_lookup(self):
        g = _chain(3)
        assert g.producer_of("t0").name == "e0"
        assert g.producer_of("x") is None
        assert [c.name for c in g.consumers_of("t0")] == ["e1"]

    def test_external_inputs_and_outputs(self):
        g = _chain(3)
        assert [t.name for t in g.external_inputs()] == ["x"]
        assert [t.name for t in g.external_outputs()] == ["t2"]

    def test_topological_order_respects_dependencies(self):
        g = _chain(5)
        order = [op.name for op in g.topological_order()]
        assert order == [f"e{i}" for i in range(5)]

    def test_weight_bytes_counts_distinct_weights(self):
        g = DataflowGraph()
        w = tensor("w", (4, 4), is_weight=True)
        x = tensor("x", (4, 4))
        g.add(gemm("m1", x, w, "y1", 4, 4, 4))
        y1 = g.producer_of("y1").outputs[0]
        g.add(gemm("m2", y1, w, "y2", 4, 4, 4))  # w reused
        assert g.weight_bytes == w.size_bytes


class TestOperatorValidation:
    def test_pattern_arity_checked(self):
        with pytest.raises(ValueError):
            Operator(
                name="bad",
                kind=OpKind.ELEMENTWISE,
                inputs=(tensor("x", (2,)),),
                outputs=(tensor("y", (2,)),),
                flops=1.0,
                input_patterns=(AccessPattern.CONTIGUOUS, AccessPattern.STRIDED),
            )

    def test_no_output_rejected(self):
        with pytest.raises(ValueError):
            Operator(
                name="bad",
                kind=OpKind.ELEMENTWISE,
                inputs=(tensor("x", (2,)),),
                outputs=(),
                flops=1.0,
            )

    def test_pattern_of_unknown_input_raises(self):
        op = elementwise("e", [tensor("x", (2,))], "y")
        with pytest.raises(KeyError):
            op.pattern_of("ghost")

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Operator(
                name="bad",
                kind=OpKind.ELEMENTWISE,
                inputs=(tensor("x", (2,)),),
                outputs=(tensor("y", (2,)),),
                flops=-1.0,
            )
