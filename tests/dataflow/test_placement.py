"""Spatial placement of fused kernels."""

import pytest

from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.dataflow.placement import PlacementError, place_kernel
from repro.models.fftconv import monarch_fft_graph


@pytest.fixture
def kernel():
    return fusion.streaming_fusion(monarch_fft_graph(m=256)).kernels[0]


class TestPlaceKernel:
    def test_gemms_get_the_lions_share(self, kernel):
        placement = place_kernel(kernel)
        gemm0 = placement.stage("gemm0").pcus
        mul = placement.stage("mul").pcus
        assert gemm0 > mul  # proportional to FLOPs (Figure 4)

    def test_transpose_gets_no_stage(self, kernel):
        placement = place_kernel(kernel)
        with pytest.raises(KeyError):
            placement.stage("transpose")

    def test_stays_within_budget(self, kernel):
        placement = place_kernel(kernel, SocketConfig(), sockets=1)
        assert placement.total_pcus <= 1040 * 0.9
        assert placement.total_pmus <= 1040 * 0.9

    def test_internal_tensors_get_buffers(self, kernel):
        placement = place_kernel(kernel)
        assert {b.tensor_name for b in placement.buffers} == {"y", "z", "zt"}

    def test_buffer_takes_max_of_capacity_and_bandwidth(self, kernel):
        placement = place_kernel(kernel)
        for buf in placement.buffers:
            assert buf.pmus == max(buf.pmus_for_capacity, buf.pmus_for_bandwidth, 1)

    def test_more_sockets_more_pcus(self, kernel):
        one = place_kernel(kernel, sockets=1)
        eight = place_kernel(kernel, sockets=8)
        assert eight.total_pcus > one.total_pcus

    def test_invalid_args_rejected(self, kernel):
        with pytest.raises(ValueError):
            place_kernel(kernel, sockets=0)
        with pytest.raises(ValueError):
            place_kernel(kernel, target_utilization=1.5)
