"""Analytic pipeline model vs the discrete-event simulator."""

import pytest

from repro.dataflow import fusion
from repro.dataflow.pipeline import analyze_pipeline, simulate
from repro.dataflow.placement import place_kernel
from repro.models.fftconv import monarch_fft_graph


@pytest.fixture
def estimate():
    kernel = fusion.streaming_fusion(monarch_fft_graph(m=256)).kernels[0]
    placement = place_kernel(kernel)
    return analyze_pipeline(kernel, placement, num_tiles=32)


class TestAnalyticModel:
    def test_bottleneck_is_slowest_stage(self, estimate):
        worst = max(s.time_per_tile_s for s in estimate.stages)
        assert estimate.bottleneck.time_per_tile_s == worst

    def test_total_is_fill_plus_steady_state(self, estimate):
        expected = estimate.fill_latency_s + 31 * estimate.bottleneck.time_per_tile_s
        assert estimate.total_s == pytest.approx(expected)

    def test_invalid_tiles_rejected(self, estimate):
        kernel = fusion.streaming_fusion(monarch_fft_graph(m=64)).kernels[0]
        placement = place_kernel(kernel)
        with pytest.raises(ValueError):
            analyze_pipeline(kernel, placement, num_tiles=0)


class TestSimulationAgreement:
    def test_des_matches_analytic_within_slack(self, estimate):
        simulated = simulate(estimate, buffer_capacity=2)
        # The event simulation includes injection polling; agreement
        # within 20% validates the analytic bottleneck model.
        assert simulated == pytest.approx(estimate.total_s, rel=0.2)

    def test_deeper_buffers_never_slow_down(self, estimate):
        shallow = simulate(estimate, buffer_capacity=1)
        deep = simulate(estimate, buffer_capacity=8)
        assert deep <= shallow * 1.01
