"""Operator FLOP and byte accounting."""

import pytest

from repro.dataflow.graph import AccessPattern, DType, OpKind
from repro.dataflow.operators import (
    allreduce,
    elementwise,
    embedding,
    gemm,
    linear,
    norm,
    reshape,
    rope,
    softmax,
    tensor,
    transpose,
)


class TestGemm:
    def test_flops_is_2mkn(self):
        op = gemm("g", tensor("a", (8, 16)), tensor("b", (16, 4)), "c", 8, 16, 4)
        assert op.flops == 2 * 8 * 16 * 4

    def test_batch_scales_flops(self):
        op = gemm("g", tensor("a", (2, 8, 16)), tensor("b", (16, 4)), "c",
                  8, 16, 4, batch=2)
        assert op.flops == 2 * 2 * 8 * 16 * 4
        assert op.gemm_dims == (16, 16, 4)

    def test_sparsity_reduces_flops(self):
        dense = gemm("d", tensor("a", (8, 8)), tensor("b", (8, 8)), "c", 8, 8, 8)
        sparse = gemm("s", tensor("a2", (8, 8)), tensor("b2", (8, 8)), "c2",
                      8, 8, 8, sparsity=0.875)
        assert sparse.flops == pytest.approx(dense.flops / 8)

    def test_bad_sparsity_rejected(self):
        with pytest.raises(ValueError):
            gemm("g", tensor("a", (2, 2)), tensor("b", (2, 2)), "c", 2, 2, 2,
                 sparsity=1.0)


class TestLinear:
    def test_creates_weight_tensor(self):
        op = linear("fc", tensor("x", (4, 16)), "fc.w", 16, 8, tokens=4)
        weight = op.inputs[1]
        assert weight.is_weight
        assert weight.num_elements == 16 * 8

    def test_sparse_weight_storage_shrinks(self):
        op = linear("fc", tensor("x", (4, 16)), "fc.w", 16, 8, tokens=4,
                    sparsity=0.875)
        assert op.inputs[1].num_elements == 16

    def test_gemm_dims_recorded(self):
        op = linear("fc", tensor("x", (4, 16)), "fc.w", 16, 8, tokens=4)
        assert op.gemm_dims == (4, 16, 8)


class TestElementwiseFamily:
    def test_softmax_is_5_flops_per_element(self):
        op = softmax("sm", tensor("x", (4, 8)), "y")
        assert op.flops == 5 * 32

    def test_rope_is_shuffled(self):
        op = rope("r", tensor("x", (4, 8)), "y")
        assert op.input_patterns[0] == AccessPattern.SHUFFLE
        assert op.flops == 6 * 32

    def test_norm_weight_broadcasts(self):
        op = norm("n", tensor("x", (4, 8)), "n.w", "y")
        assert op.input_patterns[1] == AccessPattern.BROADCAST
        assert op.inputs[1].shape == (8,)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            elementwise("e", [], "y")


class TestLayoutOps:
    def test_transpose_swaps_last_two_dims(self):
        op = transpose("t", tensor("x", (2, 4, 8)), "y")
        assert op.outputs[0].shape == (2, 8, 4)
        assert op.flops == 0.0

    def test_transpose_rank1_rejected(self):
        with pytest.raises(ValueError):
            transpose("t", tensor("x", (8,)), "y")

    def test_reshape_conserves_elements(self):
        op = reshape("r", tensor("x", (4, 8)), "y", (32,))
        assert op.outputs[0].num_elements == 32

    def test_reshape_element_change_rejected(self):
        with pytest.raises(ValueError):
            reshape("r", tensor("x", (4, 8)), "y", (33,))


class TestCollectivesAndGather:
    def test_allreduce_ring_bytes(self):
        src = tensor("x", (1024,))  # 2048 bytes bf16
        op = allreduce("ar", src, "y", participants=8)
        assert op.comm_bytes == pytest.approx(2 * 7 / 8 * 2048)

    def test_allreduce_single_participant_is_free(self):
        op = allreduce("ar", tensor("x", (8,)), "y", participants=1)
        assert op.comm_bytes == 0.0

    def test_embedding_is_gather(self):
        op = embedding("e", tensor("ids", (4,), DType.INT32), "table",
                       vocab=100, hidden=8, tokens=4)
        assert op.kind == OpKind.EMBEDDING
        assert op.input_patterns[1] == AccessPattern.GATHER
        assert op.inputs[1].is_weight
