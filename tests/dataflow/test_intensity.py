"""Operational intensity and the tiled traffic model (paper Table I)."""

import pytest

from repro.dataflow import fusion
from repro.dataflow.intensity import (
    GPU_FUSED,
    GPU_UNFUSED,
    SN40L_STREAMING,
    TrafficModel,
    is_memory_bound,
    kernel_traffic_bytes,
    operational_intensity,
    plan_traffic_bytes,
)
from repro.models.fftconv import monarch_fft_graph


@pytest.fixture
def monarch():
    return monarch_fft_graph(m=1024)


class TestTrafficModel:
    def test_tile_dim_grows_with_capacity(self):
        small = TrafficModel("s", 64 * 1024)
        big = TrafficModel("b", 64 * 1024 * 1024)
        assert big.tile_dim(2) > small.tile_dim(2)

    def test_tile_dim_never_zero(self):
        assert TrafficModel("tiny", 1).tile_dim(2) == 1


class TestTiledTraffic:
    def test_huge_sram_means_minimal_traffic(self, monarch):
        plan = fusion.unfused(monarch)
        for kernel in plan.kernels:
            assert kernel_traffic_bytes(kernel, SN40L_STREAMING) == kernel.offchip_bytes

    def test_small_onchip_adds_rereads(self, monarch):
        plan = fusion.unfused(monarch)
        gemm_kernel = next(k for k in plan.kernels if k.ops[0].name == "gemm0")
        assert kernel_traffic_bytes(gemm_kernel, GPU_UNFUSED) > gemm_kernel.offchip_bytes

    def test_internal_operands_pay_no_rereads(self, monarch):
        # gemm1's activation input is internal to the fully fused kernel:
        # only weights could be re-read, and they're resident in SRAM.
        plan = fusion.streaming_fusion(monarch)
        assert plan_traffic_bytes(plan, SN40L_STREAMING) == plan.kernels[0].offchip_bytes


class TestTableOneShape:
    """The paper's Table I: intensity rises with fusion level and only the
    fully fused version crosses the A100 ridge (~150 FLOPs/byte)."""

    A100_PEAK = 312e12
    A100_BW = 2.039e12

    def _levels(self, monarch):
        unfused_i = operational_intensity(fusion.unfused(monarch), GPU_UNFUSED)
        partial = fusion.manual_plan(monarch, [["gemm0", "mul", "transpose"], ["gemm1"]])
        partial_i = operational_intensity(partial, GPU_FUSED)
        full_i = operational_intensity(fusion.streaming_fusion(monarch), SN40L_STREAMING)
        return unfused_i, partial_i, full_i

    def test_strictly_increasing(self, monarch):
        unfused_i, partial_i, full_i = self._levels(monarch)
        assert unfused_i < partial_i < full_i

    def test_full_fusion_matches_paper_exactly(self, monarch):
        _, _, full_i = self._levels(monarch)
        assert full_i == pytest.approx(410.4, rel=0.01)

    def test_bound_classification_matches_paper(self, monarch):
        unfused_i, partial_i, full_i = self._levels(monarch)
        ridge_args = (self.A100_PEAK, self.A100_BW)
        assert is_memory_bound(unfused_i, *ridge_args)
        assert is_memory_bound(partial_i, *ridge_args)
        assert not is_memory_bound(full_i, *ridge_args)
