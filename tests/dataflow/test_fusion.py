"""Fusion policies and their invariants."""

import pytest

from repro.dataflow import fusion
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.operators import elementwise, gemm, tensor, transpose
from repro.models.fftconv import monarch_fft_graph
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import decode_graph


@pytest.fixture
def monarch():
    return monarch_fft_graph(m=64)


class TestUnfused:
    def test_one_kernel_per_op(self, monarch):
        plan = fusion.unfused(monarch)
        assert plan.num_kernels == len(monarch)
        assert all(k.num_ops == 1 for k in plan.kernels)

    def test_every_tensor_is_external(self, monarch):
        plan = fusion.unfused(monarch)
        assert all(not k.internal_tensors for k in plan.kernels)


class TestConventional:
    def test_breaks_at_transpose(self, monarch):
        plan = fusion.conventional_fusion(monarch)
        for kernel in plan.kernels:
            names = [op.name for op in kernel.ops]
            if "transpose" in names:
                # Transpose cannot bring the downstream GEMM with it.
                assert "gemm1" not in names

    def test_single_gemm_per_kernel(self, monarch):
        plan = fusion.conventional_fusion(monarch)
        for kernel in plan.kernels:
            gemms = [op for op in kernel.ops if op.kind.is_compute_heavy]
            assert len(gemms) <= 1

    def test_region_size_cap(self):
        g = DataflowGraph("long-chain")
        src = tensor("x", (8, 8))
        for i in range(12):
            op = elementwise(f"e{i}", [src], f"t{i}")
            g.add(op)
            src = op.outputs[0]
        plan = fusion.conventional_fusion(g, max_ops=5)
        assert plan.num_kernels == 3
        assert max(k.num_ops for k in plan.kernels) <= 5

    def test_multi_consumer_forces_materialization(self):
        g = DataflowGraph("diamond")
        x = tensor("x", (8, 8))
        a = g.add(elementwise("a", [x], "ta"))
        g.add(elementwise("b", [a.outputs[0]], "tb"))
        g.add(elementwise("c", [a.outputs[0]], "tc"))
        plan = fusion.conventional_fusion(g)
        # 'a' has two consumers: neither can fuse with it.
        a_kernel = next(k for k in plan.kernels if any(o.name == "a" for o in k.ops))
        assert a_kernel.num_ops == 1


class TestStreaming:
    def test_monarch_fuses_to_single_kernel(self, monarch):
        plan = fusion.streaming_fusion(monarch)
        assert plan.num_kernels == 1
        assert plan.kernels[0].internal_bytes > 0

    def test_transpose_consumes_no_compute_stage(self, monarch):
        plan = fusion.streaming_fusion(monarch)
        kernel = plan.kernels[0]
        assert kernel.compute_stages == kernel.num_ops - 1  # transpose free

    def test_pcu_budget_bounds_region(self, monarch):
        plan = fusion.streaming_fusion(monarch, pcu_budget=33)
        # Each GEMM wants 32 PCUs: gemm0+mul fit (34 > 33? 32+2=34) -> split.
        assert plan.num_kernels >= 2

    def test_fusion_reduces_offchip_traffic(self, monarch):
        unfused_traffic = fusion.unfused(monarch).total_offchip_bytes
        fused_traffic = fusion.streaming_fusion(monarch).total_offchip_bytes
        assert fused_traffic < unfused_traffic

    def test_intensity_increases_with_fusion(self, monarch):
        assert (
            fusion.streaming_fusion(monarch).operational_intensity
            > fusion.unfused(monarch).operational_intensity
        )


class TestGroupByPrefix:
    def test_one_kernel_per_decoder_layer(self):
        import re

        g = decode_graph(LLAMA2_7B, batch=1, context=128, tp=1)
        plan = fusion.group_by_prefix(g)
        layer_kernels = [
            k for k in plan.kernels if re.match(r"l\d+\.", k.ops[0].name)
        ]
        assert len(layer_kernels) == LLAMA2_7B.layers
        # Each decoder layer is one kernel with ~20 fused operators.
        assert all(k.num_ops > 15 for k in layer_kernels)

    def test_partition_is_validated(self):
        g = decode_graph(LLAMA2_7B, batch=1, context=128, tp=1)
        fusion.group_by_prefix(g).validate()  # must not raise


class TestManualPlan:
    def test_paper_table1_grouping(self, monarch):
        plan = fusion.manual_plan(
            monarch, [["gemm0", "mul", "transpose"], ["gemm1"]]
        )
        assert plan.num_kernels == 2
        assert plan.kernels[0].num_ops == 3

    def test_incomplete_partition_rejected(self, monarch):
        with pytest.raises(AssertionError):
            fusion.manual_plan(monarch, [["gemm0"]])


class TestKernelBoundaries:
    def test_internal_vs_external_accounting(self, monarch):
        plan = fusion.manual_plan(
            monarch, [["gemm0", "mul", "transpose"], ["gemm1"]]
        )
        k1 = plan.kernels[0]
        internal = {t.name for t in k1.internal_tensors}
        external_out = {t.name for t in k1.external_outputs}
        assert internal == {"y", "z"}
        assert external_out == {"zt"}

    def test_weight_bytes_in_kernel(self, monarch):
        plan = fusion.streaming_fusion(monarch)
        # f0, twiddle, f1 at 64x64 bf16 each.
        assert plan.kernels[0].weight_bytes == 3 * 64 * 64 * 2

    def test_kernel_call_ratio(self, monarch):
        fused = fusion.streaming_fusion(monarch)
        assert fusion.kernel_call_ratio(monarch, fused) == 4.0


class TestStreamingBudgets:
    def test_pmu_budget_bounds_region(self):
        from repro.models.fftconv import monarch_fft_graph

        g = monarch_fft_graph(m=64)
        # A PMU budget below one double-buffered stage tile forces every
        # op into its own kernel.
        plan = fusion.streaming_fusion(g, pmu_budget_bytes=4 * 1024,
                                       stage_buffer_bytes=64 * 1024)
        assert plan.num_kernels == len(g)

    def test_summary_strings(self):
        from repro.models.fftconv import monarch_fft_graph

        g = monarch_fft_graph(m=64)
        plan = fusion.streaming_fusion(g)
        assert "streaming" in plan.summary()
        assert "kernels" in plan.summary()
