"""Cost-driven optimal fusion."""

import pytest

from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.dataflow.autofusion import optimal_fusion, plan_time
from repro.models.catalog import LLAMA2_7B
from repro.models.fftconv import monarch_fft_graph
from repro.models.transformer import TransformerConfig, decode_graph
from repro.perf.kernel_cost import ExecutionTarget, Orchestration

TINY = TransformerConfig("tiny-af", hidden=256, layers=3, heads=4, kv_heads=4,
                         intermediate=512, vocab=1000)


@pytest.fixture(scope="module")
def target():
    return ExecutionTarget.from_socket(SocketConfig(), sockets=1)


class TestOptimalFusion:
    def test_monarch_fuses_to_one_kernel(self, target):
        graph = monarch_fft_graph(m=512)
        plan = optimal_fusion(graph, target)
        assert plan.num_kernels == 1

    def test_is_a_valid_partition(self, target):
        graph = decode_graph(TINY, batch=1, context=64)
        plan = optimal_fusion(graph, target)
        plan.validate()

    def test_never_worse_than_heuristics(self, target):
        """With an uncapped segment length, the DP is a lower bound over
        *all* contiguous segmentations, so the shipped heuristics can
        never beat it — a standing regression check on both sides of the
        model."""
        graph = decode_graph(TINY, batch=1, context=64)
        optimal = optimal_fusion(graph, target, max_segment=len(graph))
        optimal_t = plan_time(optimal, target)
        for heuristic in (fusion.unfused(graph),
                          fusion.group_by_prefix(graph),
                          fusion.streaming_fusion(graph)):
            assert optimal_t <= plan_time(heuristic, target) * 1.0001, (
                heuristic.policy
            )

    def test_respects_pcu_budget(self, target):
        graph = monarch_fft_graph(m=256)
        # Budget fits one GEMM stage (32) + elementwise, not two GEMMs.
        plan = optimal_fusion(graph, target, pcu_budget=40)
        for kernel in plan.kernels:
            gemms = sum(1 for op in kernel.ops if op.kind.is_compute_heavy)
            assert gemms <= 1

    def test_infeasible_budget_raises(self, target):
        graph = monarch_fft_graph(m=64)
        with pytest.raises(ValueError, match="PCU budget"):
            optimal_fusion(graph, target, pcu_budget=1)

    def test_bad_segment_cap_rejected(self, target):
        with pytest.raises(ValueError):
            optimal_fusion(monarch_fft_graph(m=64), target, max_segment=0)


class TestOrchestrationDependence:
    def test_software_launches_push_toward_bigger_kernels(self, target):
        """With expensive launches, the optimum fuses more aggressively
        than with cheap hardware launches (or at least as much)."""
        graph = decode_graph(TINY, batch=1, context=64)
        sw = optimal_fusion(graph, target, Orchestration.SOFTWARE)
        hw = optimal_fusion(graph, target, Orchestration.HARDWARE)
        assert sw.num_kernels <= hw.num_kernels


class TestScalesToRealModels:
    def test_llama_layer_segment(self, target):
        """DP over one real decoder layer's worth of ops stays fast and
        lands at (or below) the per-layer heuristic's time."""
        graph = decode_graph(LLAMA2_7B, batch=1, context=256, tp=1)
        # Restrict to a prefix for DP speed: embedding + first two layers.
        sub_ops = graph.topological_order()[:47]
        from repro.dataflow.graph import DataflowGraph

        sub = DataflowGraph("llama-prefix")
        for op in sub_ops:
            sub.add(op)
        plan = optimal_fusion(sub, target, max_segment=32)
        assert plan_time(plan, target) <= plan_time(fusion.unfused(sub), target)
