"""The fault-injection schedule: parsing, validation, determinism."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    CopyFault,
    FaultInjector,
    FaultSchedule,
    NodeCrash,
    SlowNode,
    parse_fault,
    random_schedule,
)


class TestParseFault:
    def test_bare_shorthand_is_a_crash(self):
        fault = parse_fault("node3:2.5")
        assert fault == NodeCrash(node=3, at_s=2.5)

    def test_bare_index_works_too(self):
        assert parse_fault("1:0.25") == NodeCrash(node=1, at_s=0.25)

    def test_explicit_crash(self):
        assert parse_fault("crash:node0:1.0") == NodeCrash(node=0, at_s=1.0)

    def test_slow_with_default_multiplier(self):
        fault = parse_fault("slow:node2:0.5:0.2")
        assert fault == SlowNode(node=2, at_s=0.5, duration_s=0.2,
                                 multiplier=2.0)

    def test_slow_with_multiplier(self):
        fault = parse_fault("slow:2:0.5:0.2:3.5")
        assert fault.multiplier == 3.5
        assert fault.end_s == pytest.approx(0.7)

    def test_copyfail_with_count(self):
        assert parse_fault("copyfail:node1:0.1:4") == CopyFault(
            node=1, at_s=0.1, count=4
        )

    def test_copyfail_default_count(self):
        assert parse_fault("copyfail:1:0.1").count == 1

    @pytest.mark.parametrize("spec", [
        "", "node3", "crash:node3", "slow:1:0.5", "bogus:stuff:here",
        "crash:node3:1:extra", "copyfail:1:0.1:2:9",
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="bad fault spec"):
            parse_fault(spec)

    @pytest.mark.parametrize("spec", [
        "node3:2.5", "crash:node0:1", "slow:node2:0.5:0.2:3.5",
        "copyfail:node1:0.1:4",
    ])
    def test_spec_round_trips(self, spec):
        assert parse_fault(parse_fault(spec).spec) == parse_fault(spec)


class TestFaultEvents:
    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node index"):
            NodeCrash(node=-1, at_s=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            NodeCrash(node=0, at_s=-0.1)

    def test_nonpositive_slow_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            SlowNode(node=0, at_s=0.0, duration_s=0.0)

    def test_speedup_multiplier_rejected(self):
        with pytest.raises(ValueError, match="multiplier"):
            SlowNode(node=0, at_s=0.0, duration_s=1.0, multiplier=0.5)

    def test_zero_copy_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            CopyFault(node=0, at_s=0.0, count=0)


class TestFaultSchedule:
    def test_sorted_by_time_then_node(self):
        schedule = FaultSchedule(faults=(
            NodeCrash(node=2, at_s=3.0),
            SlowNode(node=1, at_s=1.0, duration_s=0.5),
            NodeCrash(node=0, at_s=1.0),
        ))
        assert [(f.at_s, f.node) for f in schedule] == [
            (1.0, 0), (1.0, 1), (3.0, 2),
        ]

    def test_from_specs_and_back(self):
        specs = ["crash:node3:2.5", "slow:node1:0.5:0.2:2",
                 "copyfail:node0:0.1:1"]
        schedule = FaultSchedule.from_specs(specs)
        assert FaultSchedule.from_specs(schedule.specs()) == schedule

    def test_len_bool_for_node(self):
        schedule = FaultSchedule.from_specs(["node1:1.0", "node2:2.0"])
        assert len(schedule) == 2 and schedule
        assert not FaultSchedule()
        assert [f.node for f in schedule.for_node(2)] == [2]

    def test_crashes_filters_kind(self):
        schedule = FaultSchedule.from_specs(
            ["slow:0:0.1:0.2", "node1:1.0"]
        )
        assert [type(c) for c in schedule.crashes] == [NodeCrash]

    def test_validate_rejects_out_of_range_node(self):
        schedule = FaultSchedule.from_specs(["node7:1.0"])
        with pytest.raises(ValueError, match="node 7"):
            schedule.validate_for(4)

    def test_validate_rejects_crashing_every_node(self):
        schedule = FaultSchedule.from_specs(["node0:1.0", "node1:2.0"])
        with pytest.raises(ValueError, match="every node"):
            schedule.validate_for(2)
        schedule.validate_for(3)  # one survivor is enough


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        a = random_schedule(8, 2.0, seed=7, crashes=2, slow_nodes=2,
                            copy_faults=1)
        b = random_schedule(8, 2.0, seed=7, crashes=2, slow_nodes=2,
                            copy_faults=1)
        assert a == b
        assert a.specs() == b.specs()

    def test_different_seed_differs(self):
        a = random_schedule(8, 2.0, seed=1)
        b = random_schedule(8, 2.0, seed=2)
        assert a != b

    def test_never_crashes_every_node(self):
        with pytest.raises(ValueError, match="refusing"):
            random_schedule(4, 1.0, crashes=4)
        schedule = random_schedule(4, 1.0, seed=3, crashes=3)
        schedule.validate_for(4)

    def test_within_horizon(self):
        schedule = random_schedule(8, 2.0, seed=5, crashes=3, slow_nodes=3,
                                   copy_faults=3)
        assert all(0 <= f.at_s <= 2.0 for f in schedule)


class TestFaultInjector:
    def test_fires_handlers_at_scheduled_times(self):
        sim = Simulator()
        schedule = FaultSchedule.from_specs(
            ["crash:0:1.0", "slow:1:0.5:0.3", "copyfail:2:0.2"]
        )
        seen = []
        injector = FaultInjector(
            sim, schedule,
            on_crash=lambda f: seen.append(("crash", sim.now)),
            on_slow_start=lambda f: seen.append(("slow+", sim.now)),
            on_slow_end=lambda f: seen.append(("slow-", sim.now)),
            on_copy_fault=lambda f: seen.append(("copy", sim.now)),
        )
        assert injector.pending == 3
        sim.run()
        assert seen == [
            ("copy", 0.2), ("slow+", 0.5), ("slow-", 0.8), ("crash", 1.0),
        ]
        assert injector.pending == 0
        assert len(injector.delivered) == 3

    def test_slow_fault_retires_at_window_end(self):
        sim = Simulator()
        schedule = FaultSchedule.from_specs(["slow:0:0.5:1.0"])
        injector = FaultInjector(sim, schedule, on_crash=lambda f: None)
        sim.schedule_at(0.6, lambda: pending_mid.append(injector.pending))
        pending_mid = []
        sim.run()
        assert pending_mid == [1]  # still pending inside the window
        assert injector.pending == 0
