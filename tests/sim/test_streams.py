"""Streamed pipelines with credit flow control."""

import pytest

from repro.sim.streams import Pipeline, bursty_stage, uniform_stage


class TestUniformPipeline:
    def test_single_stage_is_serial(self):
        pipe = Pipeline([uniform_stage("a", 2.0)])
        assert pipe.run(10) == pytest.approx(20.0)

    def test_bottleneck_sets_throughput(self):
        pipe = Pipeline(
            [uniform_stage("a", 1.0), uniform_stage("slow", 3.0), uniform_stage("c", 1.0)]
        )
        makespan = pipe.run(20)
        # Steady state: 20 items x 3.0 at the bottleneck, plus fill/drain.
        assert makespan == pytest.approx(60.0 + pipe.fill_latency(), rel=0.15)

    def test_all_items_processed(self):
        pipe = Pipeline([uniform_stage("a", 1.0), uniform_stage("b", 1.0)])
        pipe.run(15)
        assert all(stage.stats.processed == 15 for stage in pipe.stages)

    def test_zero_items_is_instant(self):
        pipe = Pipeline([uniform_stage("a", 1.0)])
        assert pipe.run(0) == 0.0

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([uniform_stage("a", 1.0)]).run(-1)


class TestBackpressure:
    def test_slow_consumer_stalls_producer(self):
        pipe = Pipeline(
            [uniform_stage("fast", 0.1, buffer_capacity=1),
             uniform_stage("slow", 1.0, buffer_capacity=1)]
        )
        pipe.run(10)
        assert pipe.stages[0].stats.stalled_s > 0

    def test_bigger_buffers_absorb_bursts(self):
        def build(capacity):
            return Pipeline(
                [bursty_stage("bursty", 0.5, 3.0, burst_period=4,
                              buffer_capacity=capacity),
                 uniform_stage("sink", 1.0, buffer_capacity=capacity)]
            )

        shallow = build(1).run(24)
        deep = build(6).run(24)
        assert deep <= shallow

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            uniform_stage("a", 1.0, buffer_capacity=0)

    def test_bad_service_time_rejected(self):
        with pytest.raises(ValueError):
            uniform_stage("a", 0.0)
