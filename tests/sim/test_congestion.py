"""RDN link congestion analysis."""

import pytest

from repro.arch.config import RDNConfig
from repro.arch.perfcounters import Remedy, diagnose
from repro.arch.rdn import Mesh
from repro.sim.congestion import CongestionAnalyzer, PlacedFlow


@pytest.fixture
def analyzer():
    return CongestionAnalyzer(Mesh(6, 6), RDNConfig())


LINK_BW = RDNConfig().link_bandwidth


class TestPlacedFlow:
    def test_links_follow_dimension_order(self):
        flow = PlacedFlow("f", (0, 0), ((2, 0),), rate=1.0)
        assert flow.links() == [((0, 0), (1, 0)), ((1, 0), (2, 0))]

    def test_multicast_shares_tree_links(self):
        flow = PlacedFlow("f", (0, 0), ((3, 2), (3, 4)), rate=1.0)
        links = flow.links()
        assert links.count(((0, 0), (1, 0))) == 1  # trunk counted once

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacedFlow("f", (0, 0), (), rate=1.0)
        with pytest.raises(ValueError):
            PlacedFlow("f", (0, 0), ((1, 0),), rate=-1.0)


class TestAnalyzer:
    def test_disjoint_flows_stay_healthy(self, analyzer):
        analyzer.place(PlacedFlow("a", (0, 0), ((2, 0),), rate=LINK_BW * 0.5))
        analyzer.place(PlacedFlow("b", (0, 3), ((2, 3),), rate=LINK_BW * 0.5))
        assert analyzer.congested_links() == []
        assert analyzer.worst_utilization() == pytest.approx(0.5)

    def test_shared_link_congests(self, analyzer):
        for i in range(3):
            analyzer.place(
                PlacedFlow(f"f{i}", (0, 0), ((3, 0),), rate=LINK_BW * 0.5)
            )
        congested = analyzer.congested_links()
        assert congested
        assert congested[0].utilization == pytest.approx(1.5)

    def test_flow_slowdown_comes_from_worst_link(self, analyzer):
        analyzer.place(PlacedFlow("hot", (0, 0), ((4, 0),), rate=LINK_BW))
        victim = PlacedFlow("victim", (0, 0), ((4, 0),), rate=LINK_BW * 0.2)
        analyzer.place(victim)
        assert analyzer.flow_slowdown(victim) == pytest.approx(1.2)

    def test_off_mesh_flow_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.place(PlacedFlow("f", (0, 0), ((9, 9),), rate=1.0))

    def test_multicast_cheaper_than_unicasts(self):
        multicast = CongestionAnalyzer(Mesh(6, 6))
        multicast.place(
            PlacedFlow("m", (0, 0), ((5, 1), (5, 3), (5, 5)), rate=LINK_BW * 0.9)
        )
        unicasts = CongestionAnalyzer(Mesh(6, 6))
        for i, dst in enumerate(((5, 1), (5, 3), (5, 5))):
            unicasts.place(PlacedFlow(f"u{i}", (0, 0), (dst,), rate=LINK_BW * 0.9))
        assert multicast.worst_utilization() < unicasts.worst_utilization()


class TestCounterIntegration:
    def test_congestion_shows_up_as_switch_stalls(self, analyzer):
        for i in range(4):
            analyzer.place(
                PlacedFlow(f"f{i}", (0, 0), ((3, 0),), rate=LINK_BW * 0.5)
            )
        counters = analyzer.to_counters()
        hotspots = diagnose(counters)
        assert hotspots
        assert all(h.remedy is Remedy.THROTTLE_TRAFFIC for h in hotspots)

    def test_healthy_mesh_produces_no_hotspots(self, analyzer):
        analyzer.place(PlacedFlow("a", (0, 0), ((2, 0),), rate=LINK_BW * 0.3))
        assert diagnose(analyzer.to_counters()) == []
