"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def fire():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule(1.0, fire)

        sim.schedule(1.0, fire)
        end = sim.run()
        assert log == [1.0, 2.0, 3.0]
        assert end == 3.0

    def test_until_stops_the_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.pending_events == 1

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_exactly_at_deadline_runs(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("at-deadline"))
        sim.schedule(5.0 + 1e-9, lambda: log.append("past-deadline"))
        assert sim.run(until=5.0) == 5.0
        assert log == ["at-deadline"]
        assert sim.pending_events == 1

    def test_clock_advances_to_deadline_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_deadline_before_first_event_runs_nothing(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: pytest.fail("must not run"))
        assert sim.run(until=1.0) == 1.0
        assert sim.events_run == 0

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPerCallEventBudget:
    def test_budget_is_per_call_not_cumulative(self):
        """A second run() must not inherit the first call's spent budget."""
        sim = Simulator()
        for _ in range(60):
            sim.schedule(1.0, lambda: None)
        sim.run(until=100.0, max_events=100)
        assert sim.events_run == 60
        for _ in range(60):
            sim.schedule(200.0, lambda: None)
        # 60 + 60 > 100: the old cumulative guard tripped here.
        sim.run(max_events=100)
        assert sim.events_run == 120

    def test_budget_still_trips_within_one_call(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestSpanHooks:
    def test_record_span_is_noop_without_timeline(self):
        sim = Simulator()
        assert sim.record_span("x", "lane", "cat", duration_s=1.0) is None

    def test_spans_anchor_to_the_sim_clock(self):
        from repro.obs import Timeline

        timeline = Timeline()
        sim = Simulator(timeline=timeline)
        sim.schedule(2.5, lambda: sim.record_span("work", "l", "c", 1.0))
        sim.run()
        (span,) = timeline.spans("l")
        assert span.start_s == 2.5
        assert span.end_s == 3.5

    def test_explicit_bounds_override_the_clock(self):
        from repro.obs import Timeline

        sim = Simulator(timeline=Timeline())
        span = sim.record_span("w", "l", "c", start_s=1.0, end_s=4.0)
        assert (span.start_s, span.end_s) == (1.0, 4.0)

    def test_duration_or_end_required(self):
        from repro.obs import Timeline

        sim = Simulator(timeline=Timeline())
        with pytest.raises(ValueError):
            sim.record_span("w", "l", "c")

    def test_attach_and_detach(self):
        from repro.obs import Timeline

        sim = Simulator()
        timeline = Timeline()
        sim.attach_timeline(timeline)
        sim.record_span("w", "l", "c", duration_s=1.0)
        sim.attach_timeline(None)
        assert sim.record_span("x", "l", "c", duration_s=1.0) is None
        assert len(timeline) == 1
