"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def fire():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule(1.0, fire)

        sim.schedule(1.0, fire)
        end = sim.run()
        assert log == [1.0, 2.0, 3.0]
        assert end == 3.0

    def test_until_stops_the_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.pending_events == 1

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_exactly_at_deadline_runs(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("at-deadline"))
        sim.schedule(5.0 + 1e-9, lambda: log.append("past-deadline"))
        assert sim.run(until=5.0) == 5.0
        assert log == ["at-deadline"]
        assert sim.pending_events == 1

    def test_clock_advances_to_deadline_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_deadline_before_first_event_runs_nothing(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: pytest.fail("must not run"))
        assert sim.run(until=1.0) == 1.0
        assert sim.events_run == 0

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)
