"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def fire():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule(1.0, fire)

        sim.schedule(1.0, fire)
        end = sim.run()
        assert log == [1.0, 2.0, 3.0]
        assert end == 3.0

    def test_until_stops_the_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.pending_events == 1

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_exactly_at_deadline_runs(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("at-deadline"))
        sim.schedule(5.0 + 1e-9, lambda: log.append("past-deadline"))
        assert sim.run(until=5.0) == 5.0
        assert log == ["at-deadline"]
        assert sim.pending_events == 1

    def test_clock_advances_to_deadline_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_deadline_before_first_event_runs_nothing(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: pytest.fail("must not run"))
        assert sim.run(until=1.0) == 1.0
        assert sim.events_run == 0

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPerCallEventBudget:
    def test_budget_is_per_call_not_cumulative(self):
        """A second run() must not inherit the first call's spent budget."""
        sim = Simulator()
        for _ in range(60):
            sim.schedule(1.0, lambda: None)
        sim.run(until=100.0, max_events=100)
        assert sim.events_run == 60
        for _ in range(60):
            sim.schedule(200.0, lambda: None)
        # 60 + 60 > 100: the old cumulative guard tripped here.
        sim.run(max_events=100)
        assert sim.events_run == 120

    def test_budget_still_trips_within_one_call(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestScheduleMany:
    def test_bulk_insert_runs_in_time_order(self):
        sim = Simulator()
        log = []
        n = sim.schedule_many([
            (3.0, lambda: log.append("c")),
            (1.0, lambda: log.append("a")),
            (2.0, lambda: log.append("b")),
        ])
        assert n == 3
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_iteration_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("pushed"))
        sim.schedule_many([
            (1.0, lambda: log.append("bulk-1")),
            (1.0, lambda: log.append("bulk-2")),
        ])
        sim.run()
        assert log == ["pushed", "bulk-1", "bulk-2"]

    def test_interleaves_with_heappushed_events(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("push-2"))
        sim.schedule_many([(1.0, lambda: log.append("bulk-1")),
                           (3.0, lambda: log.append("bulk-3"))])
        sim.schedule(2.5, lambda: log.append("push-2.5"))
        sim.run()
        assert log == ["bulk-1", "push-2", "push-2.5", "bulk-3"]

    def test_past_times_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_many([(0.5, lambda: None)])

    def test_empty_batch_is_a_noop(self):
        sim = Simulator()
        assert sim.schedule_many([]) == 0
        assert sim.pending_events == 0

    def test_three_tuples_carry_kinds(self):
        sim = Simulator()
        seen = []
        sim.set_batch_handler("k", lambda batch: seen.append(len(batch)))
        sim.schedule_many([
            (1.0, lambda: None, "k"),
            (1.5, lambda: None, "k"),
        ])
        sim.run()
        assert seen == [2]


class TestBatchDraining:
    def test_consecutive_same_kind_events_drain_in_one_call(self):
        sim = Simulator()
        calls = []
        sim.set_batch_handler(
            "decode", lambda batch: calls.append([t for t, _ in batch])
        )
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None, kind="decode")
        sim.run()
        assert calls == [[1.0, 2.0, 3.0]]
        assert sim.events_run == 3

    def test_interleaved_other_kind_splits_the_run(self):
        sim = Simulator()
        calls = []
        log = []
        sim.set_batch_handler(
            "decode", lambda batch: calls.append([t for t, _ in batch])
        )
        sim.schedule_at(1.0, lambda: None, kind="decode")
        sim.schedule_at(2.0, lambda: log.append("other"))
        sim.schedule_at(3.0, lambda: None, kind="decode")
        sim.run()
        assert calls == [[1.0], [3.0]]
        assert log == ["other"]

    def test_untagged_events_never_batch(self):
        sim = Simulator()
        sim.set_batch_handler("k", lambda batch: pytest.fail("no tag"))
        log = []
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a"]

    def test_unregistered_kind_runs_event_by_event(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append("a"), kind="unhandled")
        sim.schedule_at(2.0, lambda: log.append("b"), kind="unhandled")
        sim.run()
        assert log == ["a", "b"]
        assert sim.events_run == 2

    def test_clock_lands_on_last_event_of_the_batch(self):
        sim = Simulator()
        sim.set_batch_handler("k", lambda batch: None)
        sim.schedule_at(1.0, lambda: None, kind="k")
        sim.schedule_at(4.0, lambda: None, kind="k")
        assert sim.run() == 4.0

    def test_handler_sees_clock_at_first_event(self):
        sim = Simulator()
        seen = []
        sim.set_batch_handler("k", lambda batch: seen.append(sim.now))
        sim.schedule_at(2.0, lambda: None, kind="k")
        sim.schedule_at(5.0, lambda: None, kind="k")
        sim.run()
        assert seen == [2.0]

    def test_until_truncates_the_batch(self):
        sim = Simulator()
        calls = []
        sim.set_batch_handler(
            "k", lambda batch: calls.append([t for t, _ in batch])
        )
        sim.schedule_at(1.0, lambda: None, kind="k")
        sim.schedule_at(2.0, lambda: None, kind="k")
        sim.schedule_at(9.0, lambda: None, kind="k")
        assert sim.run(until=5.0) == 5.0
        assert calls == [[1.0, 2.0]]
        assert sim.pending_events == 1

    def test_removing_the_handler_restores_event_by_event(self):
        sim = Simulator()
        log = []
        sim.set_batch_handler("k", lambda batch: None)
        sim.set_batch_handler("k", None)
        sim.schedule_at(1.0, lambda: log.append("ran"), kind="k")
        sim.run()
        assert log == ["ran"]

    def test_count_events_credits_lifetime_and_budget(self):
        sim = Simulator()

        def drain(batch):
            sim.count_events(500)  # logical events replayed inside

        sim.set_batch_handler("k", drain)
        sim.schedule_at(1.0, lambda: None, kind="k")
        sim.run()
        assert sim.events_run == 501  # 1 popped + 500 credited
        sim.schedule_at(2.0, lambda: None, kind="k")
        sim.schedule_at(3.0, lambda: None)  # budget is checked before this
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)  # the credit trips the per-call budget

    def test_negative_count_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.count_events(-1)


class TestClockAccessors:
    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek_next_time() == 1.0
        sim.run()
        assert sim.peek_next_time() is None

    def test_advance_to_is_monotonic(self):
        sim = Simulator()
        sim.advance_to(5.0)
        assert sim.now == 5.0
        sim.advance_to(3.0)  # earlier: no-op
        assert sim.now == 5.0

    def test_livelock_message_reports_queue_state(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError) as err:
            sim.run(max_events=50)
        message = str(err.value)
        assert "pending_events=1" in message
        assert "events_run=50" in message
        assert "t=0.0" in message


class TestSpanHooks:
    def test_record_span_is_noop_without_timeline(self):
        sim = Simulator()
        assert sim.record_span("x", "lane", "cat", duration_s=1.0) is None

    def test_spans_anchor_to_the_sim_clock(self):
        from repro.obs import Timeline

        timeline = Timeline()
        sim = Simulator(timeline=timeline)
        sim.schedule(2.5, lambda: sim.record_span("work", "l", "c", 1.0))
        sim.run()
        (span,) = timeline.spans("l")
        assert span.start_s == 2.5
        assert span.end_s == 3.5

    def test_explicit_bounds_override_the_clock(self):
        from repro.obs import Timeline

        sim = Simulator(timeline=Timeline())
        span = sim.record_span("w", "l", "c", start_s=1.0, end_s=4.0)
        assert (span.start_s, span.end_s) == (1.0, 4.0)

    def test_duration_or_end_required(self):
        from repro.obs import Timeline

        sim = Simulator(timeline=Timeline())
        with pytest.raises(ValueError):
            sim.record_span("w", "l", "c")

    def test_attach_and_detach(self):
        from repro.obs import Timeline

        sim = Simulator()
        timeline = Timeline()
        sim.attach_timeline(timeline)
        sim.record_span("w", "l", "c", duration_s=1.0)
        sim.attach_timeline(None)
        assert sim.record_span("x", "l", "c", duration_s=1.0) is None
        assert len(timeline) == 1
