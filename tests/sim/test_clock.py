"""The policy/clock split: protocols, conformance, and the wall clock."""

import asyncio

import pytest

from repro.obs import Timeline
from repro.sim.clock import Clock, EventSource, WallClock
from repro.sim.engine import Simulator


class TestProtocolConformance:
    def test_simulator_satisfies_both_protocols(self):
        sim = Simulator()
        assert isinstance(sim, Clock)
        assert isinstance(sim, EventSource)

    def test_wallclock_is_a_clock_but_not_an_event_source(self):
        clock = WallClock()
        assert isinstance(clock, Clock)
        assert not isinstance(clock, EventSource)

    def test_engines_bind_to_the_protocol_not_the_class(self):
        # The serving engines type their clock as EventSource; anything
        # structurally conforming is accepted (the split's whole point).
        from repro.coe.engine import ServingEngine
        from repro.coe.expert import build_samba_coe_library
        from repro.systems.platforms import sn40l_platform

        engine = ServingEngine(
            sn40l_platform(), build_samba_coe_library(4), policy="fifo"
        )
        engine.bind(Simulator())
        assert isinstance(engine._sim, EventSource)


class TestWallClock:
    def test_rejects_bad_time_scale(self):
        with pytest.raises(ValueError, match="time_scale"):
            WallClock(time_scale=0.0)
        with pytest.raises(ValueError, match="time_scale"):
            WallClock(time_scale=-1.0)

    def test_now_is_model_seconds(self):
        async def run():
            clock = WallClock(time_scale=0.01)
            clock.start()
            await clock.sleep(2.0)  # 2 model seconds = 20 wall ms
            return clock.now, clock.wall_elapsed_s

        model_now, wall = asyncio.run(run())
        assert model_now >= 2.0
        # now and wall_elapsed_s are separate monotonic reads
        assert wall == pytest.approx(model_now * 0.01, abs=1e-3)

    def test_sleep_until_past_time_is_a_noop(self):
        async def run():
            clock = WallClock(time_scale=0.001)
            clock.start()
            await clock.sleep(1.0)
            before = clock.wall_elapsed_s
            await clock.sleep_until(0.5)  # already in the past
            return clock.wall_elapsed_s - before

        assert asyncio.run(run()) < 0.05

    def test_sleep_until_waits_to_the_model_deadline(self):
        async def run():
            clock = WallClock(time_scale=0.01)
            clock.start()
            await clock.sleep_until(3.0)
            return clock.now

        assert asyncio.run(run()) >= 3.0

    def test_record_span_matches_simulator_contract(self):
        timeline = Timeline()
        clock = WallClock(time_scale=1.0, timeline=timeline)
        span = clock.record_span(
            "work", "lane", "compute", start_s=1.0, end_s=2.5,
            args={"k": 1},
        )
        assert span is not None
        spans = timeline.spans("lane")
        assert len(spans) == 1
        assert spans[0].start_s == 1.0 and spans[0].end_s == 2.5

    def test_record_span_duration_form(self):
        timeline = Timeline()
        clock = WallClock(timeline=timeline)
        clock.record_span("work", "lane", "compute", 0.5, start_s=1.0)
        (span,) = timeline.spans("lane")
        assert span.end_s == pytest.approx(1.5)

    def test_record_span_requires_an_extent(self):
        clock = WallClock(timeline=Timeline())
        with pytest.raises(ValueError, match="duration_s or end_s"):
            clock.record_span("work", "lane", "compute", start_s=1.0)

    def test_record_span_without_timeline_is_free(self):
        assert WallClock().record_span(
            "work", "lane", "compute", start_s=0.0, end_s=1.0
        ) is None

    def test_reads_need_no_event_loop(self):
        # Anchoring is monotonic-based, so reads (and protocol
        # isinstance checks, which evaluate properties) work anywhere.
        clock = WallClock()
        assert clock.now >= 0.0
        assert clock.wall_elapsed_s >= 0.0
