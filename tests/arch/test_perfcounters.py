"""Performance counters and the two-bucket hotspot triage."""

import pytest

from repro.arch.perfcounters import (
    CounterFile,
    Remedy,
    StallCounter,
    UnitClass,
    counter_span_args,
    diagnose,
    pmu_counter,
    record_counter_span,
)
from repro.arch.pmu import PMU
from repro.arch.config import PMUConfig
from repro.obs import Timeline


class TestStallCounter:
    def test_accumulates(self):
        c = StallCounter("s0", UnitClass.SWITCH)
        c.record(busy=10, stalled=5)
        c.record(busy=10, stalled=5)
        assert c.stall_fraction == pytest.approx(1 / 3)

    def test_saturates(self):
        c = StallCounter("s0", UnitClass.SWITCH, max_value=100)
        c.record(busy=500)
        assert c.busy_cycles == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StallCounter("s0", UnitClass.SWITCH).record(busy=-1)

    def test_reset(self):
        c = StallCounter("s0", UnitClass.SWITCH)
        c.record(busy=10, stalled=10)
        c.reset()
        assert c.total_cycles == 0


class TestCounterFile:
    def test_register_and_lookup(self):
        cf = CounterFile()
        cf.register(StallCounter("sw0", UnitClass.SWITCH))
        assert cf["sw0"].unit_class is UnitClass.SWITCH

    def test_duplicate_rejected(self):
        cf = CounterFile()
        cf.register(StallCounter("sw0", UnitClass.SWITCH))
        with pytest.raises(ValueError):
            cf.register(StallCounter("sw0", UnitClass.PMU))

    def test_snapshot_delta(self):
        cf = CounterFile()
        c = cf.register(StallCounter("sw0", UnitClass.SWITCH))
        c.record(busy=5, stalled=1)
        snap = cf.snapshot()
        c.record(busy=3, stalled=2)
        assert cf.delta(snap)["sw0"] == (3, 2)


class TestDiagnose:
    def _file(self):
        cf = CounterFile()
        congested = cf.register(StallCounter("sw3", UnitClass.SWITCH))
        congested.record(busy=40, stalled=60)
        conflicted = cf.register(StallCounter("pmu7", UnitClass.PMU))
        conflicted.record(busy=50, stalled=50)
        healthy = cf.register(StallCounter("sw1", UnitClass.SWITCH))
        healthy.record(busy=99, stalled=1)
        return cf

    def test_two_bucket_remedies(self):
        hotspots = diagnose(self._file())
        by_unit = {h.unit: h for h in hotspots}
        assert by_unit["sw3"].remedy is Remedy.THROTTLE_TRAFFIC
        assert by_unit["pmu7"].remedy is Remedy.REMAP_BANK_BITS

    def test_healthy_units_excluded(self):
        hotspots = diagnose(self._file())
        assert "sw1" not in {h.unit for h in hotspots}

    def test_sorted_worst_first(self):
        hotspots = diagnose(self._file())
        fractions = [h.stall_fraction for h in hotspots]
        assert fractions == sorted(fractions, reverse=True)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            diagnose(CounterFile(), stall_threshold=0.0)


class TestPMUIntegration:
    def test_conflicted_pmu_shows_stalls(self):
        pmu = PMU(PMUConfig(capacity_bytes=64 * 1024, num_banks=16))
        # Stride of num_banks: every access hits bank 0 -> conflicts.
        pmu.write([i * 16 for i in range(16)], [0.0] * 16)
        counter = pmu_counter("pmu0", pmu)
        assert counter.stall_fraction > 0.5

    def test_conflict_free_pmu_is_healthy(self):
        pmu = PMU(PMUConfig(capacity_bytes=64 * 1024, num_banks=16))
        pmu.write(list(range(16)), [0.0] * 16)
        counter = pmu_counter("pmu0", pmu)
        assert counter.stall_fraction == 0.0

    def test_fixing_bank_bits_clears_diagnosis(self):
        cfg = PMUConfig(capacity_bytes=64 * 1024, num_banks=16)
        addrs = [i * 16 for i in range(16)]
        broken = PMU(cfg)
        broken.write(addrs, [0.0] * 16)
        fixed = PMU(cfg)
        fixed.set_bank_bits(4)
        fixed.write(addrs, [0.0] * 16)
        cf = CounterFile()
        cf.register(pmu_counter("broken", broken))
        cf.register(pmu_counter("fixed", fixed))
        hotspots = {h.unit for h in diagnose(cf)}
        assert hotspots == {"broken"}


class TestTimelineBridge:
    def test_counter_span_args_shape(self):
        args = counter_span_args({"sw0": (10, 5), "pmu0": (7, 0)})
        assert args == {
            "counters": {
                "sw0": {"busy": 10, "stall": 5},
                "pmu0": {"busy": 7, "stall": 0},
            }
        }

    def test_record_counter_span_attaches_window_deltas(self):
        cf = CounterFile()
        sw = cf.register(StallCounter("sw0", UnitClass.SWITCH))
        sw.record(busy=100, stalled=50)  # before the window: excluded
        snap = cf.snapshot()
        sw.record(busy=30, stalled=12)

        timeline = Timeline()
        span = record_counter_span(
            timeline, cf, snap, "fft-step", "compute", 1.0, 2.5
        )
        assert span in list(timeline)
        assert span.lane == "compute"
        assert span.category == "counters"
        assert span.args["counters"]["sw0"] == {"busy": 30, "stall": 12}
