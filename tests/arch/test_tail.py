"""The PCU tail unit: LUT transcendentals, stochastic rounding, RNG."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.tail import (
    TailUnit,
    TranscendentalLUT,
    Xorshift32,
    bf16_ulp,
    fp32_to_bf16_trunc,
    stochastic_round_bf16,
)


class TestFormatConversion:
    def test_truncation_drops_low_mantissa(self):
        x = np.array([1.0 + 2**-10], dtype=np.float32)
        truncated = fp32_to_bf16_trunc(x)
        assert truncated[0] == 1.0  # 2^-10 is below BF16 precision at 1.0

    def test_bf16_values_pass_through(self):
        x = np.array([1.5, -2.0, 0.0, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(fp32_to_bf16_trunc(x), x)

    def test_ulp_scales_with_magnitude(self):
        ulps = bf16_ulp(np.array([1.0, 256.0], dtype=np.float32))
        assert ulps[1] == pytest.approx(256 * ulps[0])


class TestXorshift:
    def test_deterministic_sequence(self):
        a = Xorshift32(seed=42)
        b = Xorshift32(seed=42)
        assert [a.next_u32() for _ in range(10)] == [b.next_u32() for _ in range(10)]

    def test_uniform_in_unit_interval(self):
        draws = Xorshift32(seed=7).uniform(1000)
        assert np.all((0 <= draws) & (draws < 1))
        assert 0.4 < draws.mean() < 0.6

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Xorshift32(seed=0)


class TestStochasticRounding:
    def test_results_land_on_bf16_grid(self):
        rng = Xorshift32(seed=3)
        x = np.linspace(-5, 5, 101).astype(np.float32)
        rounded = stochastic_round_bf16(x, rng)
        np.testing.assert_array_equal(rounded, fp32_to_bf16_trunc(rounded))

    def test_unbiased_in_expectation(self):
        """The defining property: E[round(x)] == x."""
        x = np.full(20000, 1.0 + 0.25 * float(bf16_ulp(np.float32(1.0))),
                    dtype=np.float32)
        rounded = stochastic_round_bf16(x, Xorshift32(seed=11))
        assert rounded.mean() == pytest.approx(float(x[0]), rel=1e-3)

    def test_error_bounded_by_one_ulp(self):
        x = np.linspace(-100, 100, 5001).astype(np.float32)
        rounded = stochastic_round_bf16(x, Xorshift32(seed=5))
        assert np.all(np.abs(rounded - x) <= bf16_ulp(x) + 1e-12)

    def test_sign_preserved(self):
        x = np.array([-3.14159, 3.14159], dtype=np.float32)
        rounded = stochastic_round_bf16(x, Xorshift32(seed=9))
        assert rounded[0] < 0 < rounded[1]


class TestTranscendentalLUT:
    @pytest.mark.parametrize("fn", ["exp", "tanh", "sigmoid", "gelu", "rsqrt"])
    def test_error_fits_bf16(self, fn):
        lut = TailUnit()._luts[fn]
        # BF16 has ~3 decimal digits; the LUT must not be the bottleneck.
        assert lut.max_error() < 5e-3

    def test_geometric_grid_beats_linear_for_rsqrt(self):
        linear = TranscendentalLUT("rsqrt", 0.0625, 16.0)
        geometric = TranscendentalLUT("rsqrt", 0.0625, 16.0, geometric=True)
        assert geometric.max_error() < linear.max_error() / 10

    def test_geometric_needs_positive_range(self):
        with pytest.raises(ValueError):
            TranscendentalLUT("exp", -1.0, 1.0, geometric=True)

    def test_inputs_clamp_to_range(self):
        lut = TranscendentalLUT("tanh", -4.0, 4.0)
        assert lut.evaluate(np.array([100.0]))[0] == pytest.approx(np.tanh(4.0))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            TranscendentalLUT("exp", 1.0, -1.0)


class TestTailUnit:
    def test_apply_matches_reference(self):
        tail = TailUnit()
        x = np.linspace(-3, 3, 64).astype(np.float32)
        result, cycles = tail.apply(x, "sigmoid")
        np.testing.assert_allclose(result, 1 / (1 + np.exp(-x)), atol=5e-3)
        assert cycles == 2  # 64 elements / 32 lanes

    def test_fused_stochastic_conversion(self):
        tail = TailUnit()
        x = np.linspace(0.1, 4.0, 256).astype(np.float32)
        result, _ = tail.apply(x, "exp", stochastic_bf16=True)
        np.testing.assert_array_equal(result, fp32_to_bf16_trunc(result))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="supported"):
            TailUnit().apply(np.ones(4), "cosh")

    @settings(max_examples=30)
    @given(st.integers(1, 500))
    def test_cycles_are_ceil_of_vectors(self, n):
        tail = TailUnit(lanes=32)
        _, cycles = tail.apply(np.zeros(n, dtype=np.float32), "tanh")
        assert cycles == -(-n // 32)
