"""AGCU: kernel launch orchestration, P2P collectives, address generation."""

import pytest

from repro.arch.agcu import (
    AddressGenerator,
    KernelDescriptor,
    KernelOrchestrator,
    LaunchCommand,
    P2PLink,
    all_gather_time,
    ring_allreduce_time,
)
from repro.arch.config import AGCUConfig


@pytest.fixture
def orchestrator():
    return KernelOrchestrator(
        AGCUConfig(sw_launch_overhead_s=10e-6, hw_launch_overhead_s=0.5e-6),
        sw_per_arg_s=1e-6,
    )


SCHEDULE = [
    KernelDescriptor("k0", exec_time_s=100e-6, num_args=4),
    KernelDescriptor("k1", exec_time_s=50e-6, num_args=2),
]


class TestOrchestration:
    def test_software_overhead_includes_args(self, orchestrator):
        result = orchestrator.run_software(SCHEDULE)
        assert result.overhead_s == pytest.approx((10 + 4) * 1e-6 + (10 + 2) * 1e-6)
        assert result.exec_s == pytest.approx(150e-6)

    def test_hardware_overhead_is_tiny(self, orchestrator):
        result = orchestrator.run_hardware(SCHEDULE)
        assert result.overhead_s == pytest.approx(1e-6)

    def test_hardware_beats_software(self, orchestrator):
        sw = orchestrator.run_software(SCHEDULE)
        hw = orchestrator.run_hardware(SCHEDULE)
        assert hw.total_s < sw.total_s

    def test_software_issues_three_commands_per_kernel(self, orchestrator):
        result = orchestrator.run_software(SCHEDULE)
        k0_commands = [e.command for e in result.events if e.kernel == "k0"]
        assert k0_commands == list(LaunchCommand)

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ValueError):
            KernelDescriptor("bad", exec_time_s=-1.0)


class TestP2P:
    def test_ring_allreduce_time_formula(self):
        link = P2PLink(bandwidth=100e9, latency_s=1e-6)
        t = ring_allreduce_time(800e6, participants=8, link=link)
        expected = 14 * (1e-6 + 100e6 / 100e9)
        assert t == pytest.approx(expected)

    def test_single_participant_is_free(self):
        link = P2PLink(bandwidth=1e9)
        assert ring_allreduce_time(1e6, 1, link) == 0.0
        assert all_gather_time(1e6, 1, link) == 0.0

    def test_allgather_cheaper_than_allreduce(self):
        link = P2PLink(bandwidth=100e9)
        assert all_gather_time(1e6, 8, link) < ring_allreduce_time(1e6, 8, link)

    def test_zero_bytes_transfer_is_free(self):
        assert P2PLink(bandwidth=1e9).transfer_time(0) == 0.0


class TestAddressGenerator:
    def test_2d_walk(self):
        gen = AddressGenerator(base=100, strides=(10, 1), extents=(2, 3))
        assert gen.addresses() == [100, 101, 102, 110, 111, 112]

    def test_count(self):
        gen = AddressGenerator(base=0, strides=(4, 1), extents=(5, 4))
        assert gen.count == 20
        assert len(gen.addresses()) == 20

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AddressGenerator(base=0, strides=(1,), extents=(2, 2))
