"""PCU functional and timing model."""

import numpy as np
import pytest

from repro.arch.config import PCUConfig
from repro.arch.pcu import PCU


@pytest.fixture
def pcu():
    return PCU(PCUConfig(lanes=8, stages=4, clock_ghz=1.0))


class TestSystolicMatmul:
    def test_matches_numpy(self, pcu):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((20, 12)).astype(np.float32)
        b = rng.standard_normal((12, 10)).astype(np.float32)
        out, _ = pcu.systolic_matmul(a, b)
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-4)

    def test_irregular_tail_tiles(self, pcu):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((9, 5)).astype(np.float32)
        b = rng.standard_normal((5, 7)).astype(np.float32)
        out, _ = pcu.systolic_matmul(a, b)
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-4)

    def test_shape_mismatch_rejected(self, pcu):
        with pytest.raises(ValueError):
            pcu.systolic_matmul(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_cycle_count_formula(self, pcu):
        # 16x8 output = 2 tiles of (8 lanes x 4 stages) per row-block:
        # ceil(16/8) * ceil(8/4) = 4 tiles, k=12 cycles each.
        timing = pcu.gemm_cycles(16, 12, 8)
        assert timing.tiles == 4
        assert timing.cycles_per_tile == 12
        assert timing.total_cycles == 4 * 12 + (8 + 4)

    def test_time_uses_clock(self, pcu):
        t = pcu.gemm_time_s(8, 10, 4)
        assert t == pytest.approx(pcu.gemm_cycles(8, 10, 4).total_cycles / 1e9)

    def test_invalid_dims_rejected(self, pcu):
        with pytest.raises(ValueError):
            pcu.gemm_cycles(0, 1, 1)


class TestSIMD:
    def test_simd_map_applies_function(self, pcu):
        x = np.arange(20, dtype=np.float32)
        out, cycles = pcu.simd_map(x, lambda v: v * 2)
        np.testing.assert_array_equal(out, x * 2)
        assert cycles > 0

    def test_simd_cycles_scale_with_elements(self, pcu):
        c1 = pcu.simd_cycles(80)
        c2 = pcu.simd_cycles(160)
        assert c2 > c1

    def test_long_chains_take_multiple_passes(self, pcu):
        short = pcu.simd_cycles(64, ops_per_element=2)
        long = pcu.simd_cycles(64, ops_per_element=20)
        assert long > short


class TestCrossLaneReduce:
    def test_sum_is_exact(self, pcu):
        x = np.arange(100, dtype=np.float32)
        total, cycles = pcu.cross_lane_reduce(x)
        assert total == pytest.approx(x.sum())
        assert cycles > 0

    def test_log_depth_per_vector(self, pcu):
        _, cycles = pcu.cross_lane_reduce(np.ones(8, dtype=np.float32))
        assert cycles == 3  # log2(8)
