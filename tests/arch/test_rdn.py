"""RDN: routing, flow tables, multicast, reordering."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.config import RDNConfig
from repro.arch.rdn import FlowEntry, Mesh, Packet, Port, ReorderBuffer


class TestDimensionOrderRouting:
    def test_path_is_x_then_y(self):
        path = Mesh.dimension_order_path((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_self_route_is_trivial(self):
        assert Mesh.dimension_order_path((3, 3), (3, 3)) == [(3, 3)]

    def test_dynamic_route_latency(self):
        mesh = Mesh(4, 4, RDNConfig(hop_latency_cycles=2))
        pkt = Packet(payload=1)
        latency = mesh.route_dynamic(pkt, (0, 0), (3, 2))
        assert pkt.hops == 5
        assert latency == 10

    def test_out_of_bounds_rejected(self):
        mesh = Mesh(2, 2)
        with pytest.raises(ValueError):
            mesh.route_dynamic(Packet(payload=1), (0, 0), (5, 5))


class TestStaticFlowRouting:
    def test_unicast_delivery(self):
        mesh = Mesh(4, 4)
        fid = mesh.program_route((0, 0), [(3, 3)])
        deliveries = mesh.send_flow(Packet(payload="p"), (0, 0), fid)
        assert len(deliveries) == 1
        coord, pkt = deliveries[0]
        assert coord == (3, 3)
        assert pkt.hops == 6

    def test_multicast_reaches_every_destination(self):
        mesh = Mesh(6, 6)
        dests = [(5, 0), (2, 4), (0, 5)]
        fid = mesh.program_route((1, 1), dests)
        deliveries = mesh.send_flow(Packet(payload="m"), (1, 1), fid)
        assert sorted(c for c, _ in deliveries) == sorted(dests)

    def test_multicast_shares_tree_prefix(self):
        # Two destinations in the same column share the X leg of the route;
        # the fork switch must carry a single multicast entry, not two.
        mesh = Mesh(6, 6)
        mesh.program_route((0, 0), [(3, 2), (3, 4)])
        fork = mesh.switches[(3, 0)]
        assert fork.flows_used == 1

    def test_flow_ids_are_switch_local(self):
        # MPLS-like relabelling: two flows through disjoint switches can
        # reuse the same local flow ID (SN10 could not).
        mesh = Mesh(8, 1)
        fid_a = mesh.program_route((0, 0), [(1, 0)])
        fid_b = mesh.program_route((4, 0), [(5, 0)])
        assert fid_a == fid_b  # both allocated ID 0 locally

    def test_flow_table_capacity_enforced(self):
        mesh = Mesh(2, 1, RDNConfig(flow_table_entries=2))
        mesh.program_route((0, 0), [(1, 0)])
        mesh.program_route((0, 0), [(1, 0)])
        with pytest.raises(RuntimeError):
            mesh.program_route((0, 0), [(1, 0)])

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            Mesh(2, 2).program_route((0, 0), [])


class TestFlowEntry:
    def test_mismatched_ports_and_ids_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(out_ports=(Port.EAST,), next_flow_ids=(1, 2))

    def test_empty_entry_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(out_ports=(), next_flow_ids=())


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        rb = ReorderBuffer()
        released = [p.sequence_id for s in range(4) for p in rb.push(Packet(payload=s, sequence_id=s))]
        assert released == [0, 1, 2, 3]

    def test_duplicate_rejected(self):
        rb = ReorderBuffer()
        rb.push(Packet(payload=0, sequence_id=0))
        with pytest.raises(ValueError):
            rb.push(Packet(payload=0, sequence_id=0))

    def test_missing_sequence_id_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer().push(Packet(payload=0))

    @given(st.permutations(list(range(12))))
    def test_any_arrival_order_releases_sorted(self, order):
        rb = ReorderBuffer()
        released = []
        for sid in order:
            released.extend(p.sequence_id for p in rb.push(Packet(payload=sid, sequence_id=sid)))
        assert released == sorted(order)
        assert rb.pending == 0
