"""RDU tile inventory and allocation."""

import pytest

from repro.arch.config import TileConfig
from repro.arch.tile import RDUTile, UnitKind


@pytest.fixture
def tile():
    return RDUTile(TileConfig(rows=4, cols=4))


class TestInventory:
    def test_checkerboard_splits_evenly(self, tile):
        assert tile.num_pcus + tile.num_pmus == 4 * 8
        assert tile.num_pcus == tile.num_pmus

    def test_default_tile_matches_socket_aggregate(self):
        tile = RDUTile()
        assert tile.num_pcus == 130  # x8 tiles = 1040 per socket
        assert tile.num_pmus == 130


class TestAllocation:
    def test_allocate_reduces_free_count(self, tile):
        before = tile.free_pcus
        tile.allocate(UnitKind.PCU, 5, owner="kernelA")
        assert tile.free_pcus == before - 5

    def test_release_returns_everything(self, tile):
        tile.allocate(UnitKind.PCU, 5, owner="kernelA")
        tile.allocate(UnitKind.PMU, 3, owner="kernelA")
        assert tile.release("kernelA") == 8
        assert tile.free_pcus == tile.num_pcus

    def test_over_allocation_raises(self, tile):
        with pytest.raises(RuntimeError):
            tile.allocate(UnitKind.PCU, tile.num_pcus + 1, owner="big")

    def test_utilization_tracks_allocations(self, tile):
        tile.allocate(UnitKind.PCU, tile.num_pcus // 2, owner="half")
        assert tile.utilization(UnitKind.PCU) == pytest.approx(0.5)

    def test_allocations_are_clustered(self, tile):
        slots = tile.allocate(UnitKind.PCU, 4, owner="k")
        rows = {s.coord[1] for s in slots}
        assert len(rows) <= 2  # row-major packing keeps stages together
