"""Configs must reproduce the paper's published aggregates."""

import pytest

from repro.arch.config import (
    MemoryTierSpec,
    NodeConfig,
    PCUConfig,
    PMUConfig,
    SocketConfig,
    sn10_like_socket,
    sn40l_node,
    sn40l_socket,
)
from repro.units import GiB, MiB, TB, TiB


class TestPublishedAggregates:
    def test_socket_peak_flops_is_638_tflops(self):
        assert sn40l_socket().peak_flops == pytest.approx(638e12, rel=0.01)

    def test_socket_has_1040_pcus_and_pmus(self):
        sock = sn40l_socket()
        assert sock.num_pcus == 1040
        assert sock.num_pmus == 1040

    def test_socket_sram_is_520_mib(self):
        assert sn40l_socket().sram_capacity_bytes == 520 * MiB

    def test_socket_sram_bandwidth_is_hundreds_of_tbps(self):
        assert sn40l_socket().sram_bandwidth > 100e12

    def test_hbm_tier_matches_paper(self):
        hbm = sn40l_socket().hbm
        assert hbm.capacity_bytes == 64 * GiB
        assert hbm.bandwidth == pytest.approx(2e12)

    def test_ddr_tier_matches_paper(self):
        ddr = sn40l_socket().ddr
        assert ddr.capacity_bytes == int(1.5 * TiB)
        assert ddr.bandwidth >= 200e9

    def test_node_is_eight_sockets(self):
        node = sn40l_node()
        assert node.sockets == 8
        assert node.hbm_capacity_bytes == 8 * 64 * GiB
        assert node.ddr_capacity_bytes == 8 * int(1.5 * TiB)

    def test_node_ddr_to_hbm_exceeds_1_tbps(self):
        assert sn40l_node().ddr_to_hbm_bandwidth > 1e12


class TestPCUConfig:
    def test_systolic_macs(self):
        cfg = PCUConfig(lanes=32, stages=6)
        assert cfg.systolic_macs == 192

    def test_simd_is_slower_than_systolic(self):
        cfg = PCUConfig()
        assert cfg.simd_flops < cfg.peak_flops


class TestPMUConfig:
    def test_bank_capacity_divides_evenly(self):
        cfg = PMUConfig()
        assert cfg.bank_bytes * cfg.num_banks == cfg.capacity_bytes

    def test_read_and_write_ports_are_independent(self):
        cfg = PMUConfig()
        assert cfg.read_bandwidth > 0
        assert cfg.write_bandwidth > 0


class TestMemoryTierSpec:
    def test_transfer_time_includes_latency(self):
        spec = MemoryTierSpec("X", 100, bandwidth=100.0, latency_s=1.0)
        assert spec.transfer_time(100) == pytest.approx(2.0)

    def test_zero_transfer_is_free(self):
        spec = MemoryTierSpec("X", 100, bandwidth=100.0, latency_s=1.0)
        assert spec.transfer_time(0) == 0.0

    def test_negative_transfer_rejected(self):
        spec = MemoryTierSpec("X", 100, bandwidth=100.0, latency_s=1.0)
        with pytest.raises(ValueError):
            spec.transfer_time(-1)


class TestAblationConfigs:
    def test_sn10_like_has_no_hbm(self):
        assert sn10_like_socket().hbm.capacity_bytes == 0

    def test_sn10_like_keeps_compute(self):
        assert sn10_like_socket().peak_flops == sn40l_socket().peak_flops
