"""PMU banking, predication, and diagonal transpose striping."""

import numpy as np
import pytest

from repro.arch.config import PMUConfig
from repro.arch.pmu import PMU, DiagonalTileBuffer, row_major_conflict_cycles


@pytest.fixture
def pmu():
    return PMU(PMUConfig(capacity_bytes=64 * 1024, num_banks=16))


class TestScratchpad:
    def test_write_then_read_round_trips(self, pmu):
        addrs = list(range(0, 64, 2))
        vals = [float(i) for i in range(32)]
        pmu.write(addrs, vals)
        out, _ = pmu.read(addrs)
        np.testing.assert_array_equal(out, np.array(vals, dtype=np.float32))

    def test_conflict_free_interleaved_access(self, pmu):
        # Consecutive word addresses hit distinct banks: 1 cycle per vector.
        cycles = pmu.write(list(range(16)), [0.0] * 16)
        assert cycles == 1

    def test_same_bank_access_serializes(self, pmu):
        # Stride of num_banks keeps hitting bank 0.
        addrs = [i * 16 for i in range(16)]
        cycles = pmu.write(addrs, [0.0] * 16)
        assert cycles == 16

    def test_programmable_bank_bits_remove_conflicts(self, pmu):
        addrs = [i * 16 for i in range(16)]
        pmu.set_bank_bits(4)  # bank = addr >> 4: now consecutive per stride
        cycles = pmu.write(addrs, [0.0] * 16)
        assert cycles == 1

    def test_mismatched_write_rejected(self, pmu):
        with pytest.raises(ValueError):
            pmu.write([1, 2, 3], [0.0])


class TestPredication:
    def test_out_of_range_addresses_dropped(self, pmu):
        pmu.set_valid_range(0, 8)
        pmu.write([4, 100], [1.0, 2.0])
        out, _ = pmu.read([4, 100])
        assert out[0] == 1.0
        assert out[1] == 0.0  # dropped on write, predicated on read

    def test_interleaving_across_two_pmus(self):
        cfg = PMUConfig(capacity_bytes=64 * 1024, num_banks=16)
        lo, hi = PMU(cfg), PMU(cfg)
        lo.set_valid_range(0, 8)
        hi.set_valid_range(8, 16)
        addrs = list(range(16))
        vals = [float(i) for i in range(16)]
        lo.write(addrs, vals)
        hi.write(addrs, vals)
        lo_out, _ = lo.read(addrs)
        hi_out, _ = hi.read(addrs)
        combined = lo_out + hi_out  # disjoint slices sum to the tensor
        np.testing.assert_array_equal(combined, np.array(vals, dtype=np.float32))

    def test_bad_range_rejected(self, pmu):
        with pytest.raises(ValueError):
            pmu.set_valid_range(10, 5)


class TestDiagonalStriping:
    def test_transposed_read_is_exact(self):
        buf = DiagonalTileBuffer(16)
        tile = np.arange(256, dtype=np.float32).reshape(16, 16)
        buf.write_tile(tile)
        out, _ = buf.read_transposed()
        np.testing.assert_array_equal(out, tile.T)

    def test_row_and_col_reads_conflict_free(self):
        cfg = PMUConfig()
        buf = DiagonalTileBuffer(cfg.num_banks, cfg)
        tile = np.ones((cfg.num_banks, cfg.num_banks), dtype=np.float32)
        buf.write_tile(tile)
        _, row_cycles = buf.read_row(3)
        _, col_cycles = buf.read_col(3)
        assert row_cycles == 1
        assert col_cycles == 1

    def test_naive_layout_serializes_column_reads(self):
        row_cycles, col_cycles = row_major_conflict_cycles(32, 32)
        assert row_cycles == 1
        assert col_cycles == 32  # full serialization — why striping exists

    def test_wrong_tile_shape_rejected(self):
        buf = DiagonalTileBuffer(8)
        with pytest.raises(ValueError):
            buf.write_tile(np.zeros((4, 4), dtype=np.float32))
