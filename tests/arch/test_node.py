"""Socket and node device models."""

import pytest

from repro.arch.node import RDUNode, RDUSocket
from repro.memory.tiers import TierKind
from repro.models.catalog import LLAMA2_7B


class TestSocket:
    def test_memory_has_three_tiers(self):
        sock = RDUSocket()
        for kind in (TierKind.SRAM, TierKind.HBM, TierKind.DDR):
            assert sock.memory.has_tier(kind)

    def test_unit_counts_match_config(self):
        sock = RDUSocket()
        assert sock.num_pcus == 1040
        assert sock.num_pmus == 1040


class TestNode:
    def test_pools_socket_capacity(self):
        node = RDUNode()
        assert node.memory[TierKind.HBM].capacity_bytes == 8 * 64 * 2**30

    def test_ddr_to_hbm_uses_calibrated_path(self):
        node = RDUNode()
        bw = node.memory.transfer_bandwidth(TierKind.DDR, TierKind.HBM)
        assert bw == pytest.approx(1.05e12)

    def test_switch_time_for_7b_expert_is_milliseconds(self):
        node = RDUNode()
        t = node.model_switch_time(LLAMA2_7B.weight_bytes)
        assert 5e-3 < t < 20e-3  # ~13 ms: the paper's fast-switching story

    def test_dma_trace_records_transfers(self):
        node = RDUNode()
        node.dma.submit(TierKind.DDR, TierKind.HBM, 10**9, label="expert")
        assert node.dma.total_bytes == 10**9
        assert node.dma.trace[0].label == "expert"


class TestCrossModelConsistency:
    def test_node_switch_time_matches_platform_model(self):
        """RDUNode's DMA path and the serving Platform use the same
        calibrated DDR->HBM bandwidth — they must agree."""
        from repro.systems.platforms import sn40l_platform

        node = RDUNode()
        platform = sn40l_platform()
        weight = LLAMA2_7B.weight_bytes
        assert node.model_switch_time(weight) == pytest.approx(
            platform.switch_time(weight), rel=0.01
        )
