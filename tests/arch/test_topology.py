"""Inter-socket P2P topologies."""

import pytest

from repro.arch.agcu import P2PLink
from repro.arch.topology import (
    SocketFabric,
    Topology,
    best_topology,
    _factor_2d,
)

LINK = P2PLink(bandwidth=200e9, latency_s=2e-6)


class TestFactoring:
    def test_most_square(self):
        assert _factor_2d(8) == (2, 4)
        assert _factor_2d(16) == (4, 4)
        assert _factor_2d(6) == (2, 3)

    def test_primes_are_flat(self):
        assert _factor_2d(7) == (1, 7)


class TestRing:
    def test_allreduce_formula(self):
        fabric = SocketFabric(8, LINK, Topology.RING)
        expected = 14 * LINK.transfer_time(1e9 / 8)
        assert fabric.allreduce_time(1e9) == pytest.approx(expected)

    def test_single_socket_is_free(self):
        assert SocketFabric(1, LINK).allreduce_time(1e9) == 0.0

    def test_zero_bytes_is_free(self):
        assert SocketFabric(8, LINK).allreduce_time(0) == 0.0

    def test_two_ports_per_socket(self):
        assert SocketFabric(8, LINK, Topology.RING).links_per_socket == 2


class TestFullyConnected:
    def test_two_steps_regardless_of_size(self):
        fabric = SocketFabric(8, LINK, Topology.FULLY_CONNECTED)
        assert fabric.allreduce_time(1e9) == pytest.approx(
            2 * LINK.transfer_time(1e9 / 8)
        )

    def test_needs_p_minus_1_ports(self):
        fabric = SocketFabric(8, LINK, Topology.FULLY_CONNECTED)
        assert fabric.links_per_socket == 7

    def test_beats_ring_on_small_messages(self):
        # Latency-bound decode collectives: fewer steps win.
        ring = SocketFabric(8, LINK, Topology.RING)
        full = SocketFabric(8, LINK, Topology.FULLY_CONNECTED)
        small = 64 * 1024
        assert full.allreduce_time(small) < ring.allreduce_time(small)


class TestMesh2D:
    def test_decomposes_into_two_ring_phases(self):
        fabric = SocketFabric(8, LINK, Topology.MESH_2D)
        rows, cols = 2, 4
        expected = (
            SocketFabric(cols, LINK).allreduce_time(1e9)
            + SocketFabric(rows, LINK).allreduce_time(1e9 / cols)
        )
        assert fabric.allreduce_time(1e9) == pytest.approx(expected)

    def test_fewer_steps_than_flat_ring(self):
        ring = SocketFabric(16, LINK, Topology.RING)
        mesh = SocketFabric(16, LINK, Topology.MESH_2D)
        small = 32 * 1024
        assert mesh.allreduce_time(small) < ring.allreduce_time(small)

    def test_prime_socket_count_rejected(self):
        with pytest.raises(ValueError):
            SocketFabric(7, LINK, Topology.MESH_2D)


class TestAllGather:
    def test_ring_allgather_cheaper_than_allreduce(self):
        fabric = SocketFabric(8, LINK)
        assert fabric.allgather_time(1e9) < fabric.allreduce_time(1e9)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SocketFabric(8, LINK).allgather_time(-1)


class TestBestTopology:
    def test_sorted_fastest_first(self):
        times = best_topology(8, LINK, 1e6)
        values = list(times.values())
        assert values == sorted(values)

    def test_small_messages_prefer_low_step_count(self):
        times = best_topology(8, LINK, 16 * 1024)
        assert next(iter(times)) is Topology.FULLY_CONNECTED

    def test_prime_counts_skip_mesh(self):
        times = best_topology(7, LINK, 1e6)
        assert Topology.MESH_2D not in times


class TestSquareMesh:
    def test_2x2_needs_four_ports(self):
        fabric = SocketFabric(4, LINK, Topology.MESH_2D)
        assert fabric.links_per_socket == 4

    def test_allgather_zero_and_negative_paths(self):
        fabric = SocketFabric(4, LINK, Topology.FULLY_CONNECTED)
        assert fabric.allgather_time(0) == 0.0
        with pytest.raises(ValueError):
            fabric.allreduce_time(-1)
