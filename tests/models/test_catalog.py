"""The model zoo must match published parameter counts."""

import pytest

from repro.models.catalog import (
    BLOOM_176B,
    CATALOG,
    FALCON_40B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    MISTRAL_7B,
    SPARSEGPT_13B,
    get_model,
)


class TestPublishedSizes:
    @pytest.mark.parametrize(
        "cfg,published_billions,tol",
        [
            (LLAMA2_7B, 6.74, 0.02),
            (LLAMA2_13B, 13.02, 0.02),
            (LLAMA2_70B, 68.98, 0.02),
            (MISTRAL_7B, 7.24, 0.02),
            (FALCON_40B, 41.8, 0.06),
            (BLOOM_176B, 176.2, 0.03),
        ],
    )
    def test_param_count(self, cfg, published_billions, tol):
        assert cfg.param_count / 1e9 == pytest.approx(published_billions, rel=tol)

    def test_llama7b_weight_bytes_about_13_gib(self):
        assert LLAMA2_7B.weight_bytes / 2**30 == pytest.approx(12.6, rel=0.02)

    def test_sparse_model_stores_about_an_eighth(self):
        dense_equiv = LLAMA2_13B.weight_bytes
        assert SPARSEGPT_13B.weight_bytes < dense_equiv / 5

    def test_gqa_shrinks_kv_cache(self):
        assert MISTRAL_7B.kv_bytes_per_token() == LLAMA2_7B.kv_bytes_per_token() / 4


class TestCatalog:
    def test_lookup_by_name(self):
        assert get_model("llama2-7b") is LLAMA2_7B

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="llama2-7b"):
            get_model("gpt-5")

    def test_all_entries_keyed_by_their_name(self):
        for name, cfg in CATALOG.items():
            assert cfg.name == name


class TestLlama3:
    def test_llama3_8b_published_size(self):
        from repro.models.catalog import LLAMA3_8B

        assert LLAMA3_8B.param_count / 1e9 == pytest.approx(8.03, rel=0.01)

    def test_llama3_gqa_and_big_vocab(self):
        from repro.models.catalog import LLAMA3_8B

        assert LLAMA3_8B.kv_heads == 8
        assert LLAMA3_8B.vocab == 128256
