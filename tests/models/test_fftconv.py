"""Monarch FFT / FlashFFTConv graphs."""

import numpy as np
import pytest

from repro.models.fftconv import fftconv_graph, monarch_fft_graph, monarch_reference


class TestMonarchGraph:
    def test_has_the_four_figure3_ops(self):
        g = monarch_fft_graph(m=64)
        assert sorted(op.name for op in g.operators) == [
            "gemm0", "gemm1", "mul", "transpose"
        ]

    def test_flop_count(self):
        m = 64
        g = monarch_fft_graph(m=m)
        assert g.total_flops == 2 * m**3 + 8 * m**2 + 2 * m**3

    def test_small_m_rejected(self):
        with pytest.raises(ValueError):
            monarch_fft_graph(m=1)

    def test_reference_numerics(self):
        rng = np.random.default_rng(7)
        m = 16
        x = rng.standard_normal((m, m))
        f0 = rng.standard_normal((m, m))
        tw = rng.standard_normal((m, m))
        f1 = rng.standard_normal((m, m))
        out = monarch_reference(x, f0, tw, f1)
        expected = f1 @ (tw * (f0 @ x)).T
        np.testing.assert_allclose(out, expected)


class TestFFTConvGraph:
    def test_million_token_conv_builds(self):
        # 1M = 64*128*128: three levels per direction of small GEMMs with
        # twiddles and transposes in between, plus permutes and filter mul.
        g = fftconv_graph(seqlen=1 << 20, channels=4)
        gemms = [op for op in g.operators if op.gemm_dims is not None]
        assert len(gemms) == 6  # 3 forward + 3 inverse levels
        assert all(op.gemm_dims[1] <= 128 for op in gemms)

    def test_flops_match_radix_decomposition(self):
        seqlen, channels = 1 << 20, 4
        g = fftconv_graph(seqlen=seqlen, channels=channels)
        gemm_flops = sum(op.flops for op in g.operators if op.gemm_dims)
        # One 2*N*r GEMM per level per direction, radices (64, 128, 128).
        assert gemm_flops == 2 * 2 * channels * seqlen * (64 + 128 + 128)

    def test_has_hostile_access_patterns(self):
        g = fftconv_graph(seqlen=32**3, channels=2)
        movement = [op for op in g.operators if op.kind.is_data_movement]
        assert len(movement) >= 6  # two permutes + four level transposes

    def test_non_power_seqlen_rejected(self):
        with pytest.raises(ValueError):
            fftconv_graph(seqlen=1000)
        with pytest.raises(ValueError):
            fftconv_graph(seqlen=1 << 20, radices=(64, 64))

    def test_filter_is_a_weight(self):
        g = fftconv_graph(seqlen=32**3, channels=2)
        weights = {t.name for t in g.external_inputs() if t.is_weight}
        assert "filter_fft" in weights
