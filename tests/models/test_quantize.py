"""Quantized experts."""

import pytest

from repro.dataflow.graph import DType
from repro.models.catalog import LLAMA2_7B
from repro.models.quantize import compression_ratio, quantize


class TestQuantize:
    def test_int8_halves_weight_bytes(self):
        q = quantize(LLAMA2_7B, DType.INT8)
        assert q.weight_bytes * 2 == LLAMA2_7B.weight_bytes
        assert compression_ratio(LLAMA2_7B) == pytest.approx(2.0)

    def test_same_dtype_is_identity(self):
        assert quantize(LLAMA2_7B, DType.BF16) is LLAMA2_7B

    def test_widening_rejected(self):
        with pytest.raises(ValueError):
            quantize(LLAMA2_7B, DType.FP32)

    def test_name_records_dtype(self):
        assert quantize(LLAMA2_7B).name == "llama2-7b-int8"

    def test_quantized_expert_doubles_hbm_slots(self):
        from repro.systems.platforms import sn40l_platform

        platform = sn40l_platform()
        bf16_slots = platform.hbm_expert_slots(LLAMA2_7B.weight_bytes)
        int8_slots = platform.hbm_expert_slots(quantize(LLAMA2_7B).weight_bytes)
        assert int8_slots >= 2 * bf16_slots

    def test_quantized_decode_is_faster(self):
        from repro.systems.platforms import sn40l_platform

        platform = sn40l_platform()
        bf16 = platform.decode_token_time(LLAMA2_7B, 1, 1024)
        int8 = platform.decode_token_time(quantize(LLAMA2_7B), 1, 1024)
        assert int8 < bf16
