"""MoE-as-expert models."""

import pytest

from repro.models.catalog import MISTRAL_7B
from repro.models.moe import MoEConfig, mixtral_8x7b, moe_decode_graph


class TestMoEConfig:
    def test_mixtral_published_sizes(self):
        cfg = mixtral_8x7b()
        assert cfg.param_count / 1e9 == pytest.approx(46.7, rel=0.01)
        assert cfg.active_param_count / 1e9 == pytest.approx(12.9, rel=0.01)

    def test_sparsity_ratio(self):
        cfg = mixtral_8x7b()
        assert 3.0 < cfg.sparsity_ratio < 4.0

    def test_single_expert_moe_equals_dense_plus_router(self):
        cfg = MoEConfig("m", MISTRAL_7B, num_experts=1, top_k=1)
        extra = cfg.layers * cfg._router_params_per_layer
        assert cfg.param_count == MISTRAL_7B.param_count + extra

    def test_bad_topk_rejected(self):
        with pytest.raises(ValueError):
            MoEConfig("m", MISTRAL_7B, num_experts=4, top_k=5)


class TestMoEGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return moe_decode_graph(mixtral_8x7b(), batch=1, context=512, tp=8)

    def test_graph_weights_are_active_weights(self, graph):
        cfg = mixtral_8x7b()
        assert graph.weight_bytes == pytest.approx(
            cfg.active_weight_bytes, rel=0.01
        )

    def test_topk_expert_blocks_per_layer(self, graph):
        layer0_experts = {
            op.name.split(".")[1]
            for op in graph.operators
            if op.name.startswith("l0.e")
        }
        assert layer0_experts == {"e0", "e1"}

    def test_router_present_per_layer(self, graph):
        routers = [op for op in graph.operators if op.name.endswith("moe_router")]
        assert len(routers) == mixtral_8x7b().layers

    def test_graph_is_acyclic_and_connected(self, graph):
        order = graph.topological_order()
        assert len(order) == len(graph)


class TestMoEAsCoEExpert:
    def test_moe_decode_cheaper_than_stored_size_suggests(self):
        """The CoE hosts the full 46.7B, but decode reads only 12.9B."""
        cfg = mixtral_8x7b()
        from repro.systems.platforms import sn40l_platform

        platform = sn40l_platform()
        switch = platform.switch_time(cfg.weight_bytes)
        # Decode traffic uses active weights: model it via the dense twin
        # scaled to active params.
        assert cfg.weight_bytes > 3 * cfg.active_weight_bytes
        assert switch > platform.switch_time(cfg.active_weight_bytes)
