"""Sparse training workload."""

import pytest

from repro.models.catalog import LLAMA2_13B, SPARSEGPT_13B
from repro.models.sparse import (
    dense_counterpart,
    sparsegpt_train_graph,
    sparsity_flop_ratio,
)
from repro.models.transformer import train_graph


class TestSparseWorkload:
    def test_flop_ratio_is_8x_at_87_5_percent(self):
        assert sparsity_flop_ratio(SPARSEGPT_13B) == pytest.approx(8.0)

    def test_sparse_train_cheaper_than_dense(self):
        sparse = sparsegpt_train_graph(batch=1, seq=256)
        dense = train_graph(dense_counterpart(SPARSEGPT_13B), batch=1, seq=256)
        assert sparse.total_flops < dense.total_flops / 3

    def test_dense_counterpart_matches_13b(self):
        dense = dense_counterpart(SPARSEGPT_13B)
        assert dense.param_count == LLAMA2_13B.param_count
        assert dense.sparsity == 0.0

    def test_dense_counterpart_of_dense_is_identity(self):
        assert dense_counterpart(LLAMA2_13B) is LLAMA2_13B
