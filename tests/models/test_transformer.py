"""Transformer graph builders."""

import pytest

from repro.dataflow.graph import OpKind
from repro.models.catalog import LLAMA2_7B, MISTRAL_7B
from repro.models.transformer import (
    TransformerConfig,
    decode_graph,
    prefill_graph,
    train_graph,
)


class TestConfigValidation:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", hidden=100, layers=1, heads=3, kv_heads=3,
                              intermediate=10, vocab=10)

    def test_bad_kv_grouping_rejected(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", hidden=64, layers=1, heads=8, kv_heads=3,
                              intermediate=10, vocab=10)

    def test_kv_bytes_per_token(self):
        # 2 (K and V) * layers * kv_dim * 2 bytes.
        assert LLAMA2_7B.kv_bytes_per_token() == 2 * 32 * 4096 * 2


class TestPrefillGraph:
    def test_flops_close_to_2_params_tokens(self):
        seq = 2048
        g = prefill_graph(LLAMA2_7B, batch=1, seq=seq)
        dense = 2.0 * LLAMA2_7B.param_count * seq
        # Attention score/value GEMMs add on top of the 2*P*T rule.
        assert dense < g.total_flops < dense * 1.6

    def test_weight_bytes_match_model(self):
        g = prefill_graph(LLAMA2_7B, batch=1, seq=128)
        assert g.weight_bytes == pytest.approx(LLAMA2_7B.weight_bytes, rel=0.01)

    def test_tp_adds_allreduces(self):
        g_tp1 = prefill_graph(LLAMA2_7B, 1, 128, tp=1)
        g_tp8 = prefill_graph(LLAMA2_7B, 1, 128, tp=8)
        ar = [op for op in g_tp8.operators if op.kind == OpKind.ALLREDUCE]
        assert len(ar) == 2 * LLAMA2_7B.layers
        assert not [op for op in g_tp1.operators if op.kind == OpKind.ALLREDUCE]

    def test_seq_beyond_max_rejected(self):
        with pytest.raises(ValueError):
            prefill_graph(LLAMA2_7B, 1, LLAMA2_7B.max_seq + 1)


class TestDecodeGraph:
    def test_decode_flops_tiny_vs_prefill(self):
        p = prefill_graph(LLAMA2_7B, 1, 2048)
        d = decode_graph(LLAMA2_7B, 1, 2048)
        assert d.total_flops < p.total_flops / 500

    def test_kv_cache_is_external_traffic(self):
        g = decode_graph(LLAMA2_7B, batch=1, context=2048)
        cache_inputs = [t for t in g.external_inputs() if "cache_r" in t.name]
        assert len(cache_inputs) == 2 * LLAMA2_7B.layers
        total = sum(t.size_bytes for t in cache_inputs)
        assert total == 2048 * LLAMA2_7B.kv_bytes_per_token()

    def test_sliding_window_caps_attention(self):
        # Mistral at 8K context attends to at most its 4K window.
        wide = decode_graph(MISTRAL_7B, 1, 8192)
        window = decode_graph(MISTRAL_7B, 1, 4096)
        wide_scores = wide["l0.scores"]
        window_scores = window["l0.scores"]
        assert wide_scores.flops == window_scores.flops

    def test_batch_scales_tokens(self):
        b1 = decode_graph(LLAMA2_7B, 1, 512)
        b8 = decode_graph(LLAMA2_7B, 8, 512)
        assert b8["l0.q"].flops == 8 * b1["l0.q"].flops


class TestTrainGraph:
    def test_train_flops_about_3x_prefill(self):
        p = prefill_graph(LLAMA2_7B, 1, 2048)
        t = train_graph(LLAMA2_7B, 1, 2048)
        assert 2.5 < t.total_flops / p.total_flops < 3.6

    def test_has_optimizer_update(self):
        t = train_graph(LLAMA2_7B, 1, 128)
        assert "adam_update" in t

    def test_topologically_valid(self):
        t = train_graph(LLAMA2_7B, 1, 128)
        assert len(t.topological_order()) == len(t)
