"""LLaVA multimodal graph stitching."""

from repro.models.catalog import LLAVA_15_LLM, VIT_L_14
from repro.models.llava import IMAGE_TOKENS, llava_decode_graph, llava_prefill_graph


class TestLLaVAPrefill:
    def test_contains_both_towers(self):
        g = llava_prefill_graph(batch=1, text_tokens=64)
        names = {op.name for op in g.operators}
        assert any(n.startswith("vis:") for n in names)
        assert any(n.startswith("llm:") for n in names)
        assert "proj.fc1" in names and "proj.fc2" in names

    def test_llm_sees_image_plus_text_tokens(self):
        text = 64
        g = llava_prefill_graph(batch=1, text_tokens=text)
        q = g["llm:l0.q"]
        assert q.outputs[0].shape[0] == IMAGE_TOKENS + text

    def test_graph_is_acyclic(self):
        g = llava_prefill_graph(batch=1, text_tokens=32)
        assert len(g.topological_order()) == len(g)

    def test_weights_include_both_models(self):
        g = llava_prefill_graph(batch=1, text_tokens=32)
        # Vision tower + projector + LLM weights together.
        assert g.weight_bytes > LLAVA_15_LLM.weight_bytes


class TestLLaVADecode:
    def test_decode_is_pure_llm(self):
        g = llava_decode_graph(batch=1, context=IMAGE_TOKENS + 64)
        assert not any(op.name.startswith("vis:") for op in g.operators)
