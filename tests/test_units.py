"""Unit constants and formatting helpers."""

import pytest

from repro import units


class TestConstants:
    def test_binary_vs_decimal(self):
        assert units.GiB == 2**30
        assert units.GB == 10**9
        assert units.TiB / units.TB == pytest.approx(1.0995, rel=1e-3)

    def test_conversions(self):
        assert units.to_gib(2**31) == 2.0
        assert units.to_mib(2**20) == 1.0
        assert units.to_ms(0.25) == 250.0
        assert units.to_us(1e-3) == pytest.approx(1000.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (512, "512.0 B"),
            (2048, "2.0 KiB"),
            (64 * units.GiB, "64.0 GiB"),
            (3 * units.TiB, "3.0 TiB"),
        ],
    )
    def test_fmt_bytes(self, value, expected):
        assert units.fmt_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.5, "2.50 s"),
            (1.2e-3, "1.20 ms"),
            (42e-6, "42.00 us"),
            (5e-9, "5.0 ns"),
        ],
    )
    def test_fmt_time(self, value, expected):
        assert units.fmt_time(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (500, "500.0 B/s"),
            (2e12, "2.0 TB/s"),
            (32e9, "32.0 GB/s"),
        ],
    )
    def test_fmt_bandwidth(self, value, expected):
        assert units.fmt_bandwidth(value) == expected
