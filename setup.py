"""Setuptools shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy `setup.py develop`-style editable installs offline.
"""
from setuptools import setup

setup()
