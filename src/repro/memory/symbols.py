"""Tensor symbols and static lifetime analysis (paper Section V-A).

The SN40L programming model has neither dynamic memory allocation nor
pointer aliasing, so the compiler can compute every symbol's live range
statically and perform "garbage collection" by assigning multiple logical
symbols to the same device addresses whenever their lifetimes don't overlap.

A :class:`Symbol` is one logical tensor in a compiled program. Its lifetime
is the half-open interval ``[first_def, last_use + 1)`` over the program's
kernel schedule. Symbols also carry the attributes the allocator and the CoE
runtime need:

- ``read_only`` — weights etc.; the runtime skips copying these back to DDR
  on eviction (paper Section V-B),
- ``is_weight`` — participates in the "weights get HBM priority" spill
  heuristic,
- ``uses`` — the schedule steps that touch the symbol, from which we derive
  its aggregate transfer footprint for spill ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Symbol:
    """One logical tensor symbol in a compiled program."""

    name: str
    size_bytes: int
    #: Schedule steps (kernel indices) at which the symbol is read or
    #: written. Must be non-empty and sorted ascending.
    uses: Tuple[int, ...]
    read_only: bool = False
    is_weight: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"{self.name}: negative size {self.size_bytes}")
        if not self.uses:
            raise ValueError(f"{self.name}: a symbol must have at least one use")
        if list(self.uses) != sorted(self.uses):
            raise ValueError(f"{self.name}: uses must be sorted, got {self.uses}")

    @property
    def first_use(self) -> int:
        return self.uses[0]

    @property
    def last_use(self) -> int:
        return self.uses[-1]

    @property
    def live_range(self) -> Tuple[int, int]:
        """Half-open live interval ``[first_use, last_use + 1)``."""
        return (self.first_use, self.last_use + 1)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    @property
    def transfer_footprint_bytes(self) -> int:
        """Total bytes this symbol moves over the whole program.

        Every use touches the full tensor once. This is the quantity the
        spill heuristic ranks by: a symbol touched many times wants to be in
        the high-bandwidth tier (paper Section V-A: "we analyze the temporal
        locality of each symbol and its transfer footprint to estimate the
        total bandwidth requirement ... sorted by their aggregate transfer
        size, spill symbols with the smallest bandwidth requirement first").
        """
        return self.size_bytes * self.num_uses


def lifetimes_overlap(a: Symbol, b: Symbol) -> bool:
    """Whether two symbols are ever live at the same schedule step."""
    a_start, a_end = a.live_range
    b_start, b_end = b.live_range
    return a_start < b_end and b_start < a_end


def validate_program(symbols: Sequence[Symbol]) -> None:
    """Check that a symbol table is well-formed (unique names)."""
    seen = set()
    for sym in symbols:
        if sym.name in seen:
            raise ValueError(f"duplicate symbol name: {sym.name!r}")
        seen.add(sym.name)


def peak_live_bytes(symbols: Iterable[Symbol]) -> int:
    """Maximum bytes simultaneously live at any schedule step.

    This is the information-theoretic lower bound on memory needed by any
    allocator that never spills; used to sanity-check allocator results.
    """
    events: List[Tuple[int, int]] = []
    for sym in symbols:
        start, end = sym.live_range
        events.append((start, sym.size_bytes))
        events.append((end, -sym.size_bytes))
    events.sort()
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
