"""The AGCU's address-translation layer (paper Section IV-D).

"It also provides an address translation layer for memory management."

Device virtual addresses decouple compiled binaries from physical
placement: the static allocator emits VAs; at activation time the CoE
runtime maps each model's segments to whatever physical HBM/DDR ranges
are free. This module provides that translation unit:

- page-granular VA -> PA mapping per tier,
- contiguous-VA segments backed by possibly discontiguous physical pages
  (what lets an evicted-and-reloaded expert land at different physical
  addresses without recompilation),
- a small TLB model with hit-rate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.tiers import TierKind


class TranslationFault(Exception):
    """Raised on access to an unmapped virtual address."""


@dataclass(frozen=True)
class Mapping:
    """One page's translation."""

    virtual_page: int
    physical_page: int
    tier: TierKind


class PageAllocator:
    """Physical page pool for one tier (bitmap-free free-list model)."""

    def __init__(self, tier: TierKind, num_pages: int) -> None:
        if num_pages < 0:
            raise ValueError(f"negative page count: {num_pages}")
        self.tier = tier
        self._free: List[int] = list(range(num_pages - 1, -1, -1))
        self.num_pages = num_pages

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def allocate(self, count: int) -> List[int]:
        """Grab ``count`` physical pages (not necessarily contiguous)."""
        if count < 0:
            raise ValueError(f"negative allocation: {count}")
        if count > len(self._free):
            raise MemoryError(
                f"{self.tier.name}: need {count} pages, {len(self._free)} free"
            )
        return [self._free.pop() for _ in range(count)]

    def release(self, pages: List[int]) -> None:
        for page in pages:
            if not 0 <= page < self.num_pages:
                raise ValueError(f"page {page} outside pool")
            self._free.append(page)


class TranslationUnit:
    """Page-granular VA -> (tier, PA) translation with a tiny TLB."""

    def __init__(self, page_bytes: int = 2 * 1024 * 1024, tlb_entries: int = 64) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        if tlb_entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.page_bytes = page_bytes
        self.tlb_entries = tlb_entries
        self._table: Dict[int, Mapping] = {}
        self._tlb: Dict[int, Mapping] = {}
        self.tlb_hits = 0
        self.tlb_misses = 0

    # ------------------------------------------------------------------
    def map_segment(
        self,
        virtual_base: int,
        num_bytes: int,
        allocator: PageAllocator,
    ) -> List[Mapping]:
        """Map a contiguous VA segment onto pages from ``allocator``.

        Physical pages may be discontiguous; the VA range must be unmapped
        and page-aligned.
        """
        if virtual_base % self.page_bytes:
            raise ValueError(f"virtual base {virtual_base} not page-aligned")
        if num_bytes <= 0:
            raise ValueError(f"segment bytes must be positive, got {num_bytes}")
        first = virtual_base // self.page_bytes
        count = -(-num_bytes // self.page_bytes)
        for vp in range(first, first + count):
            if vp in self._table:
                raise ValueError(f"virtual page {vp} already mapped")
        physical = allocator.allocate(count)
        mappings = []
        for offset, pp in enumerate(physical):
            mapping = Mapping(
                virtual_page=first + offset, physical_page=pp, tier=allocator.tier
            )
            self._table[mapping.virtual_page] = mapping
            mappings.append(mapping)
        return mappings

    def unmap_segment(self, virtual_base: int, num_bytes: int,
                      allocator: PageAllocator) -> int:
        """Unmap a segment, returning its pages to ``allocator``."""
        first = virtual_base // self.page_bytes
        count = -(-num_bytes // self.page_bytes)
        pages = []
        for vp in range(first, first + count):
            mapping = self._table.pop(vp, None)
            if mapping is None:
                raise TranslationFault(f"virtual page {vp} not mapped")
            self._tlb.pop(vp, None)
            pages.append(mapping.physical_page)
        allocator.release(pages)
        return count

    # ------------------------------------------------------------------
    def translate(self, virtual_address: int) -> Tuple[TierKind, int]:
        """VA -> (tier, physical address), through the TLB."""
        if virtual_address < 0:
            raise ValueError(f"negative address {virtual_address}")
        vp = virtual_address // self.page_bytes
        offset = virtual_address % self.page_bytes
        mapping = self._tlb.get(vp)
        if mapping is not None:
            self.tlb_hits += 1
        else:
            self.tlb_misses += 1
            mapping = self._table.get(vp)
            if mapping is None:
                raise TranslationFault(f"unmapped virtual address {virtual_address}")
            if len(self._tlb) >= self.tlb_entries:
                self._tlb.pop(next(iter(self._tlb)))  # FIFO eviction
            self._tlb[vp] = mapping
        return mapping.tier, mapping.physical_page * self.page_bytes + offset

    @property
    def tlb_hit_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_hits / total if total else 0.0

    @property
    def mapped_pages(self) -> int:
        return len(self._table)
