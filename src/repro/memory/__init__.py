"""Three-tier memory system: tiers, symbols, allocator, transfers."""

from repro.memory.allocator import (
    AllocationError,
    MemoryPlan,
    Placement,
    assign_addresses,
    naive_spill_order,
    plan_memory,
    spill_order,
)
from repro.memory.interleave import (
    InterleaveMode,
    InterleavePlan,
    InterleavedTensor,
    units_for_bandwidth,
    units_for_capacity,
)
from repro.memory.hierarchy import (
    EdgeCost,
    MemoryHierarchy,
    TierLevel,
)
from repro.memory.symbols import Symbol, lifetimes_overlap, peak_live_bytes
from repro.memory.tiers import CapacityError, MemorySystem, MemoryTier, TierKind
from repro.memory.translation import (
    PageAllocator,
    TranslationFault,
    TranslationUnit,
)
from repro.memory.transfer import TransferEngine, TransferRecord

__all__ = [
    "AllocationError", "MemoryPlan", "Placement", "assign_addresses",
    "naive_spill_order", "plan_memory", "spill_order", "Symbol",
    "lifetimes_overlap", "peak_live_bytes", "CapacityError", "MemorySystem",
    "MemoryTier", "TierKind", "TransferEngine", "TransferRecord",
    "EdgeCost", "MemoryHierarchy", "TierLevel",
    "InterleaveMode", "InterleavePlan", "InterleavedTensor",
    "units_for_bandwidth", "units_for_capacity", "PageAllocator",
    "TranslationFault", "TranslationUnit",
]
