"""N-tier memory hierarchy with per-edge transfer costs.

:class:`MemoryHierarchy` generalizes the runtime's hard-coded DDR→HBM
pair (paper Section III-B) to an ordered stack of capacity levels —
fastest first — with an explicit cost on every adjacent edge. The CoE
runtime asks one question of it: *how long does it take to move
``num_bytes`` from tier A to tier B?* Multi-hop transfers (NVMe→HBM)
sum the per-hop edge costs, which models the store-and-forward path a
real promotion takes through DDR.

Two cost formulas coexist in this codebase and they are **not** the
same:

* :class:`EdgeCost` — ``latency_s + num_bytes / bandwidth`` — matches
  :meth:`repro.systems.platforms.Platform.switch_time` bitwise, which
  is what keeps the three-way drain equivalence and the sim/live
  cross-check byte-identical when a hierarchy replaces the legacy
  ``upgrade_time`` callable.
* :meth:`repro.memory.tiers.MemorySystem.transfer_time` — *source*
  latency plus *destination* latency plus the wire time — models the
  device tier stack. Do not substitute one for the other.

This module is deliberately stateless: residency lives in the runtime
(:class:`repro.coe.runtime.CoERuntime`), costs live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.memory.tiers import TierKind
from repro.units import GB

#: Default NVMe edge characteristics (PCIe 4.0 x4 datacenter drive):
#: ~7 GB/s sequential read, ~5 GB/s sustained write, ~100 µs access.
DEFAULT_NVME_READ_BANDWIDTH = 7 * GB
DEFAULT_NVME_WRITE_BANDWIDTH = 5 * GB
DEFAULT_NVME_LATENCY_S = 100e-6

TierLike = Union[str, TierKind]
#: An edge cost: either a declarative :class:`EdgeCost` or an opaque
#: ``bytes -> seconds`` callable (the legacy ``upgrade_time`` shape).
EdgeLike = Union["EdgeCost", Callable[[int], float]]


def _tier_name(tier: TierLike) -> str:
    """Normalize a tier reference to its lowercase name."""
    if isinstance(tier, TierKind):
        return tier.name.lower()
    return str(tier).lower()


@dataclass(frozen=True)
class TierLevel:
    """One level of the hierarchy: a name and an optional byte budget.

    ``capacity_bytes=None`` means unbounded — the backing store at the
    bottom of the stack always fits the whole expert library.
    """

    name: str
    capacity_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a TierLevel needs a non-empty name")
        object.__setattr__(self, "name", _tier_name(self.name))
        if self.capacity_bytes is not None and self.capacity_bytes < 0:
            raise ValueError(
                f"tier {self.name!r}: negative capacity {self.capacity_bytes}"
            )

    @property
    def bounded(self) -> bool:
        return self.capacity_bytes is not None


@dataclass(frozen=True)
class EdgeCost:
    """Bandwidth/latency cost of one hierarchy edge.

    ``time_s`` reproduces :meth:`Platform.switch_time` exactly —
    zero bytes cost nothing (no transfer is issued), otherwise one
    latency plus the wire time.
    """

    bandwidth: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency_s < 0:
            raise ValueError(f"negative latency: {self.latency_s}")

    def time_s(self, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth


def _edge_time(edge: EdgeLike, num_bytes: int) -> float:
    if isinstance(edge, EdgeCost):
        return edge.time_s(num_bytes)
    return edge(num_bytes)


class MemoryHierarchy:
    """Ordered memory levels (fastest first) plus per-edge costs.

    ``levels`` orders the stack top-down — ``("hbm", "ddr", "nvme")``
    for the full SN40L node. ``edges`` maps ``(src, dst)`` name pairs
    to an :class:`EdgeCost` or a ``bytes -> seconds`` callable; every
    *adjacent* pair must have an edge in both directions so any
    multi-hop transfer can be priced. Non-adjacent direct edges (a DMA
    path that bypasses DDR, say) are optional overrides: when present
    they win over the hop-sum.
    """

    def __init__(
        self,
        levels: Sequence[TierLevel],
        edges: Mapping[Tuple[TierLike, TierLike], EdgeLike],
    ) -> None:
        if len(levels) < 2:
            raise ValueError("a MemoryHierarchy needs at least two levels")
        self._levels: Tuple[TierLevel, ...] = tuple(levels)
        self._index: Dict[str, int] = {}
        for i, level in enumerate(self._levels):
            if level.name in self._index:
                raise ValueError(f"duplicate tier name {level.name!r}")
            self._index[level.name] = i
        self._edges: Dict[Tuple[str, str], EdgeLike] = {}
        for (src, dst), cost in edges.items():
            src_name, dst_name = _tier_name(src), _tier_name(dst)
            for name in (src_name, dst_name):
                if name not in self._index:
                    raise ValueError(
                        f"edge references unknown tier {name!r}; "
                        f"levels are {self.names}"
                    )
            if src_name == dst_name:
                raise ValueError(f"self-edge on tier {src_name!r}")
            self._edges[(src_name, dst_name)] = cost
        for i in range(len(self._levels) - 1):
            upper, lower = self._levels[i].name, self._levels[i + 1].name
            for pair in ((lower, upper), (upper, lower)):
                if pair not in self._edges:
                    raise ValueError(
                        f"missing edge {pair[0]!r}->{pair[1]!r}: every "
                        "adjacent pair needs costs in both directions"
                    )

    # ------------------------------------------------------------------
    @property
    def levels(self) -> Tuple[TierLevel, ...]:
        return self._levels

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(level.name for level in self._levels)

    def __contains__(self, tier: TierLike) -> bool:
        return _tier_name(tier) in self._index

    def index(self, tier: TierLike) -> int:
        """Position of ``tier`` in the stack (0 = fastest)."""
        name = _tier_name(tier)
        try:
            return self._index[name]
        except KeyError:
            raise ValueError(
                f"unknown tier {name!r}; levels are {self.names}"
            ) from None

    def level(self, tier: TierLike) -> TierLevel:
        return self._levels[self.index(tier)]

    def capacity_bytes(self, tier: TierLike) -> Optional[int]:
        """Byte budget of ``tier`` (``None`` = unbounded)."""
        return self.level(tier).capacity_bytes

    def below(self, tier: TierLike) -> Optional[str]:
        """Name of the next (slower) level below ``tier``, if any."""
        i = self.index(tier) + 1
        return self._levels[i].name if i < len(self._levels) else None

    # ------------------------------------------------------------------
    def path(self, src: TierLike, dst: TierLike) -> List[Tuple[str, str]]:
        """The adjacent hops a ``src``→``dst`` transfer traverses."""
        si, di = self.index(src), self.index(dst)
        step = 1 if di > si else -1
        return [
            (self._levels[i].name, self._levels[i + step].name)
            for i in range(si, di, step)
        ]

    def transfer_time(
        self, src: TierLike, dst: TierLike, num_bytes: int
    ) -> float:
        """Seconds to move ``num_bytes`` from ``src`` to ``dst``.

        Uses the direct ``(src, dst)`` edge when one exists, otherwise
        sums the adjacent-hop costs along the level order. Zero-length
        paths (``src == dst``) cost nothing.
        """
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        src_name, dst_name = _tier_name(src), _tier_name(dst)
        if src_name == dst_name:
            self.index(src_name)  # still validate the tier exists
            return 0.0
        direct = self._edges.get((src_name, dst_name))
        if direct is not None:
            return _edge_time(direct, num_bytes)
        return sum(
            _edge_time(self._edges[hop], num_bytes)
            for hop in self.path(src_name, dst_name)
        )

    def with_capacities(
        self, overrides: Mapping[TierLike, Optional[int]]
    ) -> "MemoryHierarchy":
        """A copy with some level capacities replaced."""
        named = {_tier_name(t): cap for t, cap in overrides.items()}
        unknown = set(named) - set(self.names)
        if unknown:
            raise ValueError(
                f"unknown tiers {sorted(unknown)}; levels are {self.names}"
            )
        levels = [
            TierLevel(level.name, named.get(level.name, level.capacity_bytes))
            for level in self._levels
        ]
        return MemoryHierarchy(levels, dict(self._edges))

    def __repr__(self) -> str:
        stack = " > ".join(
            f"{lvl.name}[{lvl.capacity_bytes if lvl.bounded else '∞'}]"
            for lvl in self._levels
        )
        return f"MemoryHierarchy({stack})"

    # ------------------------------------------------------------------
    @classmethod
    def from_platform(
        cls,
        platform,
        *,
        nvme_read_bandwidth: float = DEFAULT_NVME_READ_BANDWIDTH,
        nvme_write_bandwidth: float = DEFAULT_NVME_WRITE_BANDWIDTH,
        nvme_latency_s: float = DEFAULT_NVME_LATENCY_S,
    ) -> "MemoryHierarchy":
        """The hbm > ddr > nvme stack of a serving platform.

        The DDR↔HBM edges reproduce ``platform.switch_time`` bitwise in
        both directions (the legacy runtime priced downgrades with the
        upgrade callable), so swapping the legacy pair for this
        hierarchy changes no simulated number. NVMe hangs below DDR as
        the unbounded backing store.
        """
        levels = (
            TierLevel("hbm", platform.hbm_capacity_bytes),
            TierLevel("ddr", platform.second_tier_capacity_bytes),
            TierLevel("nvme", None),
        )
        switch = EdgeCost(platform.switch_bandwidth, platform.switch_latency_s)
        edges = {
            ("ddr", "hbm"): switch,
            ("hbm", "ddr"): switch,
            ("nvme", "ddr"): EdgeCost(nvme_read_bandwidth, nvme_latency_s),
            ("ddr", "nvme"): EdgeCost(nvme_write_bandwidth, nvme_latency_s),
        }
        return cls(levels, edges)

    @classmethod
    def from_edge_times(
        cls,
        upgrade_time: Callable[[int], float],
        downgrade_time: Optional[Callable[[int], float]] = None,
    ) -> "MemoryHierarchy":
        """The legacy two-level pair from raw cost callables.

        This is how :class:`CoERuntime` adapts its deprecated
        ``upgrade_time``/``downgrade_time`` constructor arguments: the
        callables become the DDR↔HBM edges verbatim, so every historic
        cost (including test doubles) is preserved bit for bit.
        """
        levels = (TierLevel("hbm", None), TierLevel("ddr", None))
        edges = {
            ("ddr", "hbm"): upgrade_time,
            ("hbm", "ddr"): downgrade_time or upgrade_time,
        }
        return cls(levels, edges)


__all__ = [
    "DEFAULT_NVME_LATENCY_S",
    "DEFAULT_NVME_READ_BANDWIDTH",
    "DEFAULT_NVME_WRITE_BANDWIDTH",
    "EdgeCost",
    "MemoryHierarchy",
    "TierLevel",
]
