"""Static device-memory allocation with lifetime-based reuse and spilling.

This reproduces the SN40L compiler's automatic heterogeneous memory
management (paper Section V-A):

1. **Static garbage collection.** The programming model has no dynamic
   allocation and no aliasing, so symbol lifetimes are known statically.
   Two symbols may share device addresses whenever their live ranges do not
   overlap. :func:`assign_addresses` performs this address reuse with a
   first-fit placement over live intervals.

2. **HBM-first with bandwidth-ranked spilling.** Everything goes to HBM by
   default. When a model's resident set exceeds HBM capacity, symbols are
   spilled to DDR in order of *smallest aggregate transfer footprint first*
   (size x number of uses), so the symbols that would consume the most
   memory bandwidth stay in the fast tier. In practice this keeps weights
   in HBM and spills activations/intermediates first, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.symbols import Symbol, lifetimes_overlap, validate_program
from repro.memory.tiers import TierKind


class AllocationError(Exception):
    """Raised when a program cannot be placed even with spilling."""


@dataclass(frozen=True)
class Placement:
    """Where one symbol lives: a tier and a byte offset within it."""

    symbol: Symbol
    tier: TierKind
    offset: int

    @property
    def end(self) -> int:
        return self.offset + self.symbol.size_bytes


@dataclass
class MemoryPlan:
    """The result of planning one compiled program's device memory."""

    placements: Dict[str, Placement]
    #: Peak address-space bytes used per tier (reuse included).
    tier_extent: Dict[TierKind, int] = field(default_factory=dict)
    #: Names of symbols spilled out of HBM, in spill order.
    spilled: List[str] = field(default_factory=list)

    def tier_of(self, name: str) -> TierKind:
        return self.placements[name].tier

    def symbols_in(self, tier: TierKind) -> List[Placement]:
        return [p for p in self.placements.values() if p.tier == tier]

    def extent(self, tier: TierKind) -> int:
        """Peak bytes of address space used in ``tier``."""
        return self.tier_extent.get(tier, 0)

    @property
    def spill_traffic_bytes(self) -> int:
        """Extra DDR traffic caused by spilling, over the whole program."""
        return sum(
            self.placements[name].symbol.transfer_footprint_bytes for name in self.spilled
        )

    def validate(self) -> None:
        """Check the no-overlap invariant: concurrently-live symbols in the
        same tier must occupy disjoint address ranges."""
        by_tier: Dict[TierKind, List[Placement]] = {}
        for placement in self.placements.values():
            by_tier.setdefault(placement.tier, []).append(placement)
        for tier, placements in by_tier.items():
            for i, a in enumerate(placements):
                for b in placements[i + 1 :]:
                    if not lifetimes_overlap(a.symbol, b.symbol):
                        continue
                    if a.offset < b.end and b.offset < a.end:
                        raise AssertionError(
                            f"overlap in {tier.name}: {a.symbol.name} "
                            f"[{a.offset}, {a.end}) vs {b.symbol.name} "
                            f"[{b.offset}, {b.end})"
                        )


def assign_addresses(
    symbols: Sequence[Symbol], tier: TierKind, alignment: int = 64
) -> Tuple[Dict[str, Placement], int]:
    """First-fit address assignment with lifetime-based reuse.

    Symbols are placed in order of (first_use, -size): each symbol takes the
    lowest aligned offset that does not collide with any already-placed
    symbol whose lifetime overlaps. Returns the placements and the total
    extent (peak offset reached).
    """
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    order = sorted(symbols, key=lambda s: (s.first_use, -s.size_bytes, s.name))
    placements: Dict[str, Placement] = {}
    extent = 0
    for sym in order:
        # Collect occupied intervals that are live at the same time.
        busy = sorted(
            (p.offset, p.end)
            for p in placements.values()
            if lifetimes_overlap(p.symbol, sym)
        )
        offset = 0
        for start, end in busy:
            if offset + sym.size_bytes <= start:
                break
            offset = max(offset, _align(end, alignment))
        placements[sym.name] = Placement(symbol=sym, tier=tier, offset=offset)
        extent = max(extent, offset + sym.size_bytes)
    return placements, extent


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def spill_order(symbols: Sequence[Symbol]) -> List[Symbol]:
    """Rank symbols by spill priority: cheapest-to-spill first.

    Ranking key: weights last (highest priority to stay in HBM), then
    ascending aggregate transfer footprint, then ascending size. The paper
    notes that under this ranking "weights receive highest priority to
    remain in HBM, while activation symbols and other intermediate results
    can be spilled if necessary".
    """
    return sorted(
        symbols,
        key=lambda s: (s.is_weight, s.transfer_footprint_bytes, s.size_bytes, s.name),
    )


def plan_memory(
    symbols: Sequence[Symbol],
    hbm_capacity_bytes: int,
    ddr_capacity_bytes: int,
    alignment: int = 64,
    spill_ranker=spill_order,
) -> MemoryPlan:
    """Place a program's symbols across HBM and DDR.

    Starts with everything in HBM; spills symbols (ranked by
    ``spill_ranker``) until the HBM extent fits. Raises
    :class:`AllocationError` if even full spilling cannot fit the program.

    ``spill_ranker`` is injectable so the spill-policy ablation benchmark
    can compare the paper's bandwidth ranking against naive alternatives.
    """
    validate_program(symbols)
    symbols = list(symbols)

    in_hbm = list(symbols)
    spilled: List[Symbol] = []
    candidates = spill_ranker(symbols)
    hbm_placements, hbm_extent = assign_addresses(in_hbm, TierKind.HBM, alignment)

    # Two passes over the ranked candidates. The first pass skips victims
    # whose removal does not actually shrink the HBM extent (a symbol off
    # the peak frees no address space — spilling it would cost DDR traffic
    # for nothing). The second pass, reached only if skipping cannot fit
    # the program, spills unconditionally in rank order.
    for must_spill in (False, True):
        if hbm_extent <= hbm_capacity_bytes:
            break
        for victim in list(candidates):
            if hbm_extent <= hbm_capacity_bytes:
                break
            remaining = [s for s in in_hbm if s.name != victim.name]
            if len(remaining) == len(in_hbm):
                continue  # already spilled
            new_placements, new_extent = assign_addresses(
                remaining, TierKind.HBM, alignment
            )
            if not must_spill and new_extent >= hbm_extent:
                continue  # useless spill: frees no address space
            in_hbm = remaining
            spilled.append(victim)
            candidates = [c for c in candidates if c.name != victim.name]
            hbm_placements, hbm_extent = new_placements, new_extent
    if hbm_extent > hbm_capacity_bytes:
        raise AllocationError(
            f"program needs {hbm_extent} bytes in HBM even after spilling "
            f"everything spillable (capacity {hbm_capacity_bytes})"
        )

    ddr_placements, ddr_extent = assign_addresses(spilled, TierKind.DDR, alignment)
    if ddr_extent > ddr_capacity_bytes:
        raise AllocationError(
            f"spilled symbols need {ddr_extent} bytes of DDR "
            f"(capacity {ddr_capacity_bytes})"
        )

    placements = dict(hbm_placements)
    placements.update(ddr_placements)
    plan = MemoryPlan(
        placements=placements,
        tier_extent={TierKind.HBM: hbm_extent, TierKind.DDR: ddr_extent},
        spilled=[s.name for s in spilled],
    )
    plan.validate()
    return plan


def weight_agnostic_spill_order(symbols: Sequence[Symbol]) -> List[Symbol]:
    """Ablation baseline: footprint ranking *without* weight awareness.

    Identical to :func:`spill_order` except it ignores ``is_weight``. Tiny
    weight tensors (norm scales, biases) have the smallest transfer
    footprints of all, so this policy evicts weights early — and every
    spilled weight is then re-read from DDR on every subsequent model
    invocation, which is the failure mode the paper's weight priority
    avoids.
    """
    return sorted(
        symbols,
        key=lambda s: (s.transfer_footprint_bytes, s.size_bytes, s.name),
    )


def naive_spill_order(symbols: Sequence[Symbol]) -> List[Symbol]:
    """Ablation baseline: spill the *largest* symbols first.

    This frees HBM fastest per spilled symbol but ignores how often the
    symbol is touched, so it tends to evict weights — exactly what the
    paper's bandwidth-aware ranking avoids.
    """
    return sorted(symbols, key=lambda s: (-s.size_bytes, s.name))
