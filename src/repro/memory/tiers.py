"""The three-tier memory system of the SN40L (paper Sections III-B, IV).

The SN40L exposes three software-managed memory tiers:

1. **SRAM** — 520 MiB distributed across 1040 PMUs, hundreds of TB/s,
2. **HBM** — 64 GiB per socket at ~2 TB/s,
3. **DDR** — up to 1.5 TiB per socket at >200 GB/s.

A fourth tier, **host DRAM**, exists behind the PCIe link; the paper's DGX
baselines are forced to use it once experts overflow HBM, which is exactly
the cliff shown in the paper's Figure 1.

This module models tiers as capacity+bandwidth+latency budgets with explicit
byte accounting. It deliberately does *not* model addresses — address-level
placement lives in :mod:`repro.memory.allocator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.config import MemoryTierSpec


class TierKind(enum.Enum):
    """Which level of the hierarchy a tier occupies (fastest first)."""

    SRAM = 0
    HBM = 1
    DDR = 2
    HOST = 3
    #: NVMe/disk backing store below DDR — the constrained-memory
    #: serving scenario (CoServe, arXiv:2503.02354) keeps cold experts
    #: here and promotes through DDR on demand.
    NVME = 4

    @property
    def is_on_chip(self) -> bool:
        return self is TierKind.SRAM


class CapacityError(Exception):
    """Raised when an allocation does not fit in a tier."""


@dataclass
class MemoryTier:
    """A stateful memory tier: a spec plus current occupancy.

    Occupancy is tracked per named *region* so tests and the CoE runtime can
    reason about who owns what. Regions are just byte budgets; byte-exact
    layout is the allocator's job.
    """

    kind: TierKind
    spec: MemoryTierSpec
    _regions: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    @property
    def bandwidth(self) -> float:
        return self.spec.bandwidth

    @property
    def used_bytes(self) -> int:
        return sum(self._regions.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, num_bytes: int) -> bool:
        """Whether ``num_bytes`` more can be reserved."""
        return num_bytes <= self.free_bytes

    def reserve(self, region: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` under ``region``.

        Raises :class:`CapacityError` if the tier would overflow and
        ``ValueError`` if the region already exists (regions are unique so
        double-reservation bugs surface immediately).
        """
        if num_bytes < 0:
            raise ValueError(f"negative reservation: {num_bytes}")
        if region in self._regions:
            raise ValueError(f"region {region!r} already reserved in {self.name}")
        if not self.fits(num_bytes):
            raise CapacityError(
                f"{self.name}: cannot reserve {num_bytes} bytes for {region!r} "
                f"(free: {self.free_bytes} of {self.capacity_bytes})"
            )
        self._regions[region] = num_bytes

    def release(self, region: str) -> int:
        """Release a region, returning the bytes freed."""
        try:
            return self._regions.pop(region)
        except KeyError:
            raise KeyError(f"region {region!r} not reserved in {self.name}") from None

    def region_bytes(self, region: str) -> Optional[int]:
        """Bytes reserved under ``region``, or ``None`` if absent."""
        return self._regions.get(region)

    def regions(self) -> Dict[str, int]:
        """A snapshot of all reservations (copy; safe to mutate)."""
        return dict(self._regions)

    def clear(self) -> None:
        """Release every region (used between experiments)."""
        self._regions.clear()


@dataclass
class MemorySystem:
    """The tier stack of one device (or one node, if byte budgets are pooled).

    ``transfer_bandwidth(src, dst)`` answers "at what rate can bytes move
    between these two tiers", which drives every model-switching experiment.
    By default a transfer runs at the slower of the two tiers' bandwidths;
    explicit overrides model paths whose bottleneck is elsewhere (e.g. the
    DDR->HBM path of the full SN40L node is TLN-limited to ~1.05 TB/s, and
    DGX host->HBM is PCIe-limited).
    """

    tiers: Dict[TierKind, MemoryTier]
    _bandwidth_overrides: Dict[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a MemorySystem needs at least one tier")

    def __getitem__(self, kind: TierKind) -> MemoryTier:
        return self.tiers[kind]

    def __contains__(self, kind: TierKind) -> bool:
        return kind in self.tiers

    def has_tier(self, kind: TierKind) -> bool:
        """Whether the tier exists *and* has non-zero capacity."""
        tier = self.tiers.get(kind)
        return tier is not None and tier.capacity_bytes > 0

    def set_transfer_bandwidth(self, src: TierKind, dst: TierKind, bandwidth: float) -> None:
        """Override the bandwidth of the ``src -> dst`` path."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._bandwidth_overrides[(src, dst)] = bandwidth

    def transfer_bandwidth(self, src: TierKind, dst: TierKind) -> float:
        """Bytes/s achievable moving data from ``src`` to ``dst``."""
        override = self._bandwidth_overrides.get((src, dst))
        if override is not None:
            return override
        return min(self.tiers[src].bandwidth, self.tiers[dst].bandwidth)

    def transfer_time(self, src: TierKind, dst: TierKind, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` from ``src`` to ``dst``."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        latency = self.tiers[src].spec.latency_s + self.tiers[dst].spec.latency_s
        return latency + num_bytes / self.transfer_bandwidth(src, dst)

    def clear(self) -> None:
        for tier in self.tiers.values():
            tier.clear()
