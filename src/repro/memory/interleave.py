"""Composable memory units: interleaving one tensor across many PMUs.

Paper Section III-A, requirement 1: "A single memory unit provides a fixed
capacity and bandwidth. As capacity and bandwidth needs vary across
on-chip tensors, hardware should support programmable interleaving of
logical addresses across memory units." Section IV-B implements it with
per-PMU address predication.

This module computes interleaving plans and programs real
:class:`~repro.arch.pmu.PMU` instances to realise them:

- **BLOCK** interleaving splits the address space into contiguous chunks
  (capacity-driven partitioning, like S0-S3 in Figure 4),
- **CYCLIC** interleaving stripes consecutive vectors round-robin across
  units (bandwidth-driven partitioning, like I00/I01 in Figure 4).

Both modes produce per-unit predication so a broadcast write reaches
exactly one owner per address — the paper's mechanism, where each PMU
drops addresses outside its programmed valid range or predicate.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.arch.pmu import PMU


class InterleaveMode(enum.Enum):
    BLOCK = "block"
    CYCLIC = "cyclic"


@dataclass(frozen=True)
class InterleavePlan:
    """How one logical tensor spreads across ``num_units`` memory units."""

    num_words: int
    num_units: int
    mode: InterleaveMode
    #: Stripe width in words for CYCLIC mode (one vector's worth).
    stripe_words: int = 16

    def __post_init__(self) -> None:
        if self.num_words < 1 or self.num_units < 1:
            raise ValueError("num_words and num_units must be >= 1")
        if self.stripe_words < 1:
            raise ValueError("stripe_words must be >= 1")

    @property
    def words_per_unit(self) -> int:
        """Worst-case words any one unit must hold."""
        if self.mode is InterleaveMode.BLOCK:
            return math.ceil(self.num_words / self.num_units)
        stripes = math.ceil(self.num_words / self.stripe_words)
        return math.ceil(stripes / self.num_units) * self.stripe_words

    def owner_of(self, address: int) -> int:
        """Which unit owns a logical word address."""
        if not 0 <= address < self.num_words:
            raise ValueError(f"address {address} outside [0, {self.num_words})")
        if self.mode is InterleaveMode.BLOCK:
            return min(address // self.words_per_unit, self.num_units - 1)
        return (address // self.stripe_words) % self.num_units

    def local_address(self, address: int) -> int:
        """The unit-local word address of a logical address."""
        owner = self.owner_of(address)
        if self.mode is InterleaveMode.BLOCK:
            return address - owner * self.words_per_unit
        stripe = address // self.stripe_words
        local_stripe = stripe // self.num_units
        return local_stripe * self.stripe_words + address % self.stripe_words

    def units_touched(self, addresses: Sequence[int]) -> int:
        """Distinct units a vector of addresses hits — the achieved
        bandwidth multiplier for that access."""
        return len({self.owner_of(a) for a in addresses})


class InterleavedTensor:
    """A logical tensor physically spread across several PMUs.

    Writes and reads broadcast the logical addresses to every unit; each
    unit's predication keeps only its slice (the hardware mechanism). The
    aggregate behaves as one tensor with the combined bandwidth.
    """

    def __init__(self, plan: InterleavePlan, pmus: Sequence[PMU]) -> None:
        if len(pmus) != plan.num_units:
            raise ValueError(
                f"plan wants {plan.num_units} units, got {len(pmus)} PMUs"
            )
        for pmu in pmus:
            if plan.words_per_unit > pmu.num_words:
                raise ValueError(
                    f"unit needs {plan.words_per_unit} words, "
                    f"PMU holds {pmu.num_words}"
                )
        self.plan = plan
        self.pmus = list(pmus)

    def write(self, addresses: Sequence[int], values: Sequence[float]) -> int:
        """Broadcast-write; returns the max cycles across units."""
        addresses = list(addresses)
        values = list(values)
        cycles = 0
        for unit, pmu in enumerate(self.pmus):
            local_addrs, local_vals = [], []
            for addr, val in zip(addresses, values):
                if self.plan.owner_of(addr) == unit:
                    local_addrs.append(self.plan.local_address(addr))
                    local_vals.append(val)
            if local_addrs:
                cycles = max(cycles, pmu.write(local_addrs, local_vals))
        return cycles

    def read(self, addresses: Sequence[int]) -> Tuple[np.ndarray, int]:
        """Gather across units; returns (values, max unit cycles)."""
        addresses = list(addresses)
        out = np.zeros(len(addresses), dtype=np.float32)
        cycles = 0
        for unit, pmu in enumerate(self.pmus):
            idx = [i for i, a in enumerate(addresses)
                   if self.plan.owner_of(a) == unit]
            if not idx:
                continue
            local = [self.plan.local_address(addresses[i]) for i in idx]
            values, cyc = pmu.read(local)
            out[idx] = values
            cycles = max(cycles, cyc)
        return out, cycles


def units_for_capacity(tensor_bytes: int, pmu_capacity_bytes: int) -> int:
    """PMUs needed to *hold* a tensor (the S0-S3 case of Figure 4)."""
    if tensor_bytes < 0 or pmu_capacity_bytes <= 0:
        raise ValueError("sizes must be positive")
    return max(1, math.ceil(tensor_bytes / pmu_capacity_bytes))


def units_for_bandwidth(required_bw: float, pmu_port_bw: float) -> int:
    """PMUs needed to *feed* a consumer (the I00/I01 case of Figure 4)."""
    if required_bw < 0 or pmu_port_bw <= 0:
        raise ValueError("bandwidths must be positive")
    return max(1, math.ceil(required_bw / pmu_port_bw))
