"""DMA transfer engine model: timed bulk copies between memory tiers.

Model switching in a CoE is dominated by bulk weight copies (DDR -> HBM on
the SN40L; host DRAM -> HBM over PCIe on a DGX). This module provides a
small queued-engine model: each engine executes transfers in FIFO order at
the path bandwidth given by the owning :class:`~repro.memory.tiers.MemorySystem`,
and records a trace that benchmarks and tests can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.memory.tiers import MemorySystem, TierKind


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer."""

    src: TierKind
    dst: TierKind
    num_bytes: int
    start_s: float
    end_s: float
    label: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TransferEngine:
    """A FIFO DMA engine between the tiers of one memory system.

    The engine keeps a running clock: ``submit`` returns the completion time
    of the transfer given everything already queued. ``now`` can be advanced
    by callers that interleave transfers with compute.
    """

    memory: MemorySystem
    now_s: float = 0.0
    trace: List[TransferRecord] = field(default_factory=list)

    def advance_to(self, time_s: float) -> None:
        """Move the engine clock forward (never backward)."""
        if time_s > self.now_s:
            self.now_s = time_s

    def submit(self, src: TierKind, dst: TierKind, num_bytes: int, label: str = "") -> float:
        """Queue a copy and return its completion time in seconds."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        duration = self.memory.transfer_time(src, dst, num_bytes)
        record = TransferRecord(
            src=src,
            dst=dst,
            num_bytes=num_bytes,
            start_s=self.now_s,
            end_s=self.now_s + duration,
            label=label,
        )
        self.trace.append(record)
        self.now_s = record.end_s
        return record.end_s

    @property
    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self.trace)

    @property
    def busy_time_s(self) -> float:
        return sum(r.duration_s for r in self.trace)

    def reset(self) -> None:
        self.now_s = 0.0
        self.trace.clear()
