"""``repro.obs`` — the unified span/timeline observability substrate.

Every layer that reconstructs timing (the kernel cost model, the
discrete-event simulator, the CoE serving engine, the expert runtime)
records :class:`Span` intervals into one :class:`Timeline`, which is
queryable (busy time, cross-lane overlap, hidden fractions) and
exportable (Chrome trace for Perfetto, JSON summaries). See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    lane_metadata_events,
    to_chrome_events,
    to_summary,
    write_chrome_trace,
    write_summary,
)
from repro.obs.timeline import Span, Timeline

__all__ = [
    "Span",
    "Timeline",
    "lane_metadata_events",
    "to_chrome_events",
    "to_summary",
    "write_chrome_trace",
    "write_summary",
]
