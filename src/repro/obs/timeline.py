"""The span/timeline substrate every timing layer records into.

The paper tells its performance story in timelines — kernel schedules
with launch gaps (Figure 10), model-switch windows hidden behind decode
(Section VI-B) — and the reproduction's layers each need the same
artifact: a set of named :class:`Span` intervals on named lanes, with
real (simulated) start/end timestamps, queryable for busy time and
cross-lane overlap and exportable to Perfetto.

Invariants, enforced at record time:

- a span's end never precedes its start,
- spans within one lane never overlap (lanes model serial resources:
  a compute pipeline, a DMA engine, an orchestration sequencer);
  touching endpoints are fine.

Concurrency lives *across* lanes, which is exactly what the overlap
queries measure: :meth:`Timeline.overlap_s` is how the serving engine
derives its hidden-switch fraction instead of keeping ad-hoc counters.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """One named interval on one lane of a timeline."""

    name: str
    lane: str
    category: str
    start_s: float
    end_s: float
    #: Free-form annotations (bytes copied, batch size, counter deltas...).
    args: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r}: end {self.end_s} < start {self.start_s}"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def overlap_s(self, other: "Span") -> float:
        """Length of the intersection with another span."""
        return max(
            0.0, min(self.end_s, other.end_s) - max(self.start_s, other.start_s)
        )


class Timeline:
    """An append-only recording of spans with per-lane non-overlap.

    ``tolerance_s`` absorbs floating-point slop when a span starts at
    (what should be) exactly the previous span's end.
    """

    def __init__(self, tolerance_s: float = 1e-12) -> None:
        if tolerance_s < 0:
            raise ValueError(f"negative tolerance: {tolerance_s}")
        self.tolerance_s = tolerance_s
        #: lane -> spans sorted by start time (disjoint by invariant).
        self._lanes: "Dict[str, List[Span]]" = {}
        #: lane -> start times, parallel to ``_lanes``: the bisect key
        #: for record(), maintained incrementally so recording N spans
        #: is O(N log N + inserts), not O(N^2) key-list rebuilds.
        self._starts: "Dict[str, List[float]]" = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        lane: str,
        category: str,
        start_s: float,
        end_s: float,
        args: Optional[Mapping] = None,
    ) -> Span:
        """Record one span; raises if it overlaps its lane's spans."""
        span = Span(
            name=name,
            lane=lane,
            category=category,
            start_s=start_s,
            end_s=end_s,
            args=dict(args or {}),
        )
        spans = self._lanes.setdefault(lane, [])
        starts = self._starts.setdefault(lane, [])
        index = bisect_right(starts, span.start_s)
        if index > 0:
            prev = spans[index - 1]
            if span.start_s < prev.end_s - self.tolerance_s:
                raise ValueError(
                    f"lane {lane!r}: span {span.name!r} "
                    f"[{span.start_s}, {span.end_s}] overlaps "
                    f"{prev.name!r} [{prev.start_s}, {prev.end_s}]"
                )
        if index < len(spans):
            nxt = spans[index]
            if span.end_s > nxt.start_s + self.tolerance_s:
                raise ValueError(
                    f"lane {lane!r}: span {span.name!r} "
                    f"[{span.start_s}, {span.end_s}] overlaps "
                    f"{nxt.name!r} [{nxt.start_s}, {nxt.end_s}]"
                )
        spans.insert(index, span)
        starts.insert(index, span.start_s)
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> List[str]:
        """Lane names in first-recorded order."""
        return list(self._lanes)

    def spans(
        self, lane: Optional[str] = None, category: Optional[str] = None
    ) -> List[Span]:
        """Spans (optionally filtered), sorted by start time."""
        if lane is not None:
            selected = list(self._lanes.get(lane, ()))
        else:
            selected = sorted(
                (s for spans in self._lanes.values() for s in spans),
                key=lambda s: (s.start_s, s.end_s),
            )
        if category is not None:
            selected = [s for s in selected if s.category == category]
        return selected

    def __len__(self) -> int:
        return sum(len(spans) for spans in self._lanes.values())

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    @property
    def start_s(self) -> float:
        """Earliest span start (0.0 when empty)."""
        if not self._lanes:
            return 0.0
        return min(spans[0].start_s for spans in self._lanes.values() if spans)

    @property
    def end_s(self) -> float:
        """Latest span end (0.0 when empty)."""
        if not self._lanes:
            return 0.0
        return max(
            (s.end_s for spans in self._lanes.values() for s in spans),
            default=0.0,
        )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def busy_s(self, lane: str, category: Optional[str] = None) -> float:
        """Total occupied time on a lane (spans are disjoint, so a sum)."""
        return sum(s.duration_s for s in self.spans(lane, category))

    def busy_fraction(self, lane: str) -> float:
        """Occupied fraction of the whole timeline's duration."""
        duration = self.duration_s
        return self.busy_s(lane) / duration if duration > 0 else 0.0

    def overlap_s(
        self,
        lane_a: str,
        lane_b: str,
        category_a: Optional[str] = None,
        category_b: Optional[str] = None,
    ) -> float:
        """Total time both lanes are simultaneously occupied.

        Two-pointer sweep over the (disjoint, sorted) interval lists;
        O(n + m). This is the primitive behind every hidden-time stat.
        """
        a = self.spans(lane_a, category_a)
        b = self.spans(lane_b, category_b)
        total = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            total += a[i].overlap_s(b[j])
            if a[i].end_s <= b[j].end_s:
                i += 1
            else:
                j += 1
        return total

    def hidden_fraction(self, lane: str, behind_lane: str) -> float:
        """Fraction of ``lane``'s busy time overlapped by ``behind_lane``.

        E.g. ``hidden_fraction("switch", "compute")`` is the paper-style
        "model switching hidden behind execution" stat.
        """
        busy = self.busy_s(lane)
        return self.overlap_s(lane, behind_lane) / busy if busy > 0 else 0.0

    def gaps(self, lane: str) -> List[Tuple[float, float]]:
        """Idle intervals between consecutive spans of one lane."""
        spans = self.spans(lane)
        return [
            (prev.end_s, nxt.start_s)
            for prev, nxt in zip(spans, spans[1:])
            if nxt.start_s > prev.end_s
        ]
