"""Timeline export: Chrome-trace JSON (Perfetto) and summary dicts.

The Chrome tracing format (``chrome://tracing`` / https://ui.perfetto.dev)
wants complete events (``ph: "X"``) with microsecond timestamps and an
integer thread id per lane; ``thread_name`` metadata events label the
lanes so a trace opens self-describing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.timeline import Timeline

_US = 1e6  # chrome traces use microsecond timestamps


def _lane_tids(
    timeline: Timeline, lanes: Optional[Sequence[str]] = None
) -> Dict[str, int]:
    """Stable lane -> thread-id mapping (pinned order first, then others)."""
    order = list(lanes) if lanes is not None else []
    for lane in timeline.lanes:
        if lane not in order:
            order.append(lane)
    return {lane: tid for tid, lane in enumerate(order)}


def to_chrome_events(
    timeline: Timeline,
    pid: int = 0,
    lanes: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Complete (``ph: "X"``) events for every span, sorted by time.

    ``lanes`` pins the lane -> tid assignment (useful for stable track
    ordering across exports); unlisted lanes follow in recording order.
    """
    tids = _lane_tids(timeline, lanes)
    events = [
        {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_s * _US,
            "dur": span.duration_s * _US,
            "pid": pid,
            "tid": tids[span.lane],
            "args": dict(span.args),
        }
        for span in timeline.spans()
    ]
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return events


def lane_metadata_events(
    timeline: Timeline,
    pid: int = 0,
    lanes: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """``thread_name`` metadata events labelling each lane's track."""
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in _lane_tids(timeline, lanes).items()
    ]


def write_chrome_trace(
    timeline: Timeline,
    path: str,
    pid: int = 0,
    lanes: Optional[Sequence[str]] = None,
) -> int:
    """Write a Perfetto-loadable trace file; returns the span count."""
    events = lane_metadata_events(timeline, pid, lanes) + to_chrome_events(
        timeline, pid, lanes
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(timeline)


def to_summary(timeline: Timeline) -> Dict:
    """JSON-friendly rollup: per-lane busy time and category breakdown."""
    lanes: Dict[str, Dict] = {}
    for lane in timeline.lanes:
        spans = timeline.spans(lane)
        categories: Dict[str, Dict] = {}
        for span in spans:
            bucket = categories.setdefault(
                span.category, {"spans": 0, "busy_s": 0.0}
            )
            bucket["spans"] += 1
            bucket["busy_s"] += span.duration_s
        lanes[lane] = {
            "spans": len(spans),
            "busy_s": timeline.busy_s(lane),
            "busy_fraction": timeline.busy_fraction(lane),
            "categories": categories,
        }
    return {
        "start_s": timeline.start_s,
        "end_s": timeline.end_s,
        "duration_s": timeline.duration_s,
        "num_spans": len(timeline),
        "lanes": lanes,
    }


def write_summary(timeline: Timeline, path: str) -> Dict:
    """Write :func:`to_summary` as JSON; returns the summary."""
    summary = to_summary(timeline)
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=2)
    return summary
