"""Performance models: calibration, roofline, kernel costs."""

from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.kernel_cost import (
    ExecutionTarget,
    KernelCost,
    Orchestration,
    PlanCost,
    cost_kernel,
    cost_plan,
    speedup,
)
from repro.perf.roofline import Roofline
from repro.perf.trace import plan_cost_trace, serve_result_trace, write_trace

__all__ = [
    "DEFAULT_CALIBRATION", "Calibration", "ExecutionTarget", "KernelCost",
    "Orchestration", "PlanCost", "cost_kernel", "cost_plan", "speedup",
    "Roofline", "plan_cost_trace", "serve_result_trace", "write_trace",
]
