"""Chrome-trace export of execution timelines (adapter over ``repro.obs``).

Historically this module serialized plan costs and serving results into
Chrome tracing JSON directly, inventing timestamps as it went. It is now
a thin backward-compatible adapter over the span/timeline substrate:
every export builds (or receives) a :class:`repro.obs.Timeline` and
hands it to :mod:`repro.obs.export`. In particular, serving traces from
the throughput engine carry *real simulated timestamps* — an overlapped
expert switch visibly overlaps the previous group's decode span instead
of being serialized after it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.obs import Timeline, to_chrome_events
from repro.perf.kernel_cost import PlanCost

if TYPE_CHECKING:  # avoid a perf -> coe layering inversion at runtime
    from repro.coe.engine import EngineReport
    from repro.coe.serving import ServeResult

_US = 1e6  # chrome traces use microsecond timestamps

#: Pinned lane -> tid orders, for stable track layout across exports.
PLAN_LANES = ("orchestration", "kernel")
SERVE_LANES = ("router", "switch", "prefill", "decode")
ENGINE_LANES = ("compute", "switch", "prefetch")


def plan_cost_trace(cost: PlanCost) -> List[Dict]:
    """Trace a kernel schedule: launch and execute phases per kernel.

    Track 0 carries the launch/orchestration lane; track 1 the execution
    lane — making orchestration overhead visually obvious (the Figure 10
    HO story).
    """
    return to_chrome_events(cost.to_timeline(), lanes=PLAN_LANES)


def serve_result_timeline(result: "ServeResult") -> Timeline:
    """Timeline of a latency-path batch (:class:`ServeResult`).

    The latency server really is serial — one request at a time, switch
    before execute — so its phases lay end-to-end by construction.
    """
    timeline = Timeline()
    now = 0.0
    for request in result.requests:
        phases = [
            ("router", request.router_s),
            ("switch", request.switch_s),
            ("prefill", request.prefill_s),
            ("decode", request.decode_s),
        ]
        for phase, duration in phases:
            if duration <= 0:
                continue
            timeline.record(
                f"{phase}:{request.expert}", lane=phase, category=phase,
                start_s=now, end_s=now + duration,
            )
            now += duration
    return timeline


def serve_result_trace(
    result: "Union[ServeResult, EngineReport]",
) -> List[Dict]:
    """Trace a served CoE workload.

    Accepts either a latency-path :class:`ServeResult` (serial phases on
    router / switch / prefill / decode lanes) or a throughput-engine
    :class:`EngineReport`, whose attached timeline carries the *actual*
    simulated schedule — overlapped switches and speculative prefetches
    included.
    """
    timeline: Optional[Timeline] = getattr(result, "timeline", None)
    if timeline is not None:
        return to_chrome_events(timeline, lanes=ENGINE_LANES)
    return to_chrome_events(serve_result_timeline(result), lanes=SERVE_LANES)


def write_trace(events: List[Dict], path: str) -> None:
    """Write events as a Chrome trace file."""
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)


def total_duration_s(events: List[Dict]) -> float:
    """End timestamp of the last event, in seconds."""
    if not events:
        return 0.0
    return max(e["ts"] + e["dur"] for e in events) / _US
