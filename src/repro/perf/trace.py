"""Chrome-trace export of execution timelines.

Serialises plan costs and CoE serving results into the Chrome tracing
JSON format (`chrome://tracing` / Perfetto), giving the same kind of
timeline view SN40L performance engineers use to debug kernel schedules
and model-switching behaviour.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.perf.kernel_cost import PlanCost

if TYPE_CHECKING:  # avoid a perf -> coe layering inversion at runtime
    from repro.coe.serving import ServeResult

_US = 1e6  # chrome traces use microsecond timestamps


def _event(name: str, category: str, start_s: float, duration_s: float,
           tid: int, args: Optional[Dict] = None) -> Dict:
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "ts": start_s * _US,
        "dur": duration_s * _US,
        "pid": 0,
        "tid": tid,
        "args": args or {},
    }


def plan_cost_trace(cost: PlanCost) -> List[Dict]:
    """Trace a kernel schedule: launch and execute phases per kernel.

    Track 0 carries the launch/orchestration lane; track 1 the execution
    lane — making orchestration overhead visually obvious (the Figure 10
    HO story).
    """
    events: List[Dict] = []
    now = 0.0
    for kernel in cost.kernels:
        if kernel.launch_s > 0:
            events.append(
                _event(f"launch:{kernel.kernel_name}", "orchestration",
                       now, kernel.launch_s, tid=0,
                       args={"orchestration": cost.orchestration.value})
            )
            now += kernel.launch_s
        events.append(
            _event(kernel.kernel_name, "kernel", now, kernel.exec_s, tid=1,
                   args={
                       "ops": kernel.num_ops,
                       "compute_ms": kernel.compute_s * 1e3,
                       "memory_ms": kernel.memory_s * 1e3,
                       "pipelined": kernel.pipelined,
                   })
        )
        now += kernel.exec_s
    return events


def serve_result_trace(result: "ServeResult") -> List[Dict]:
    """Trace a served CoE batch: router / switch / prefill / decode lanes."""
    events: List[Dict] = []
    now = 0.0
    lanes = {"router": 0, "switch": 1, "prefill": 2, "decode": 3}
    for request in result.requests:
        phases = [
            ("router", request.router_s),
            ("switch", request.switch_s),
            ("prefill", request.prefill_s),
            ("decode", request.decode_s),
        ]
        for phase, duration in phases:
            if duration <= 0:
                continue
            events.append(
                _event(f"{phase}:{request.expert}", phase, now, duration,
                       tid=lanes[phase])
            )
            now += duration
    return events


def write_trace(events: List[Dict], path: str) -> None:
    """Write events as a Chrome trace file."""
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)


def total_duration_s(events: List[Dict]) -> float:
    """End timestamp of the last event, in seconds."""
    if not events:
        return 0.0
    return max(e["ts"] + e["dur"] for e in events) / _US
