"""The roofline model (Williams et al., CACM 2009) for any accelerator.

The paper uses roofline reasoning throughout: an A100's ridge point of
~150 FLOPs/byte decides which rows of Table I are memory-bound, and the
whole motivation for fusion is moving kernels to the right of the ridge.

This module is the *single* roofline core: the kernel cost model
(:mod:`repro.perf.kernel_cost`) and the serving platform models
(:mod:`repro.systems.platforms`) both derive their compute/memory terms
from :class:`Roofline` instances derated by the sustained efficiencies
in :mod:`repro.perf.calibration`, so the two formulations cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Roofline:
    """Peak compute and memory bandwidth of one machine."""

    name: str
    peak_flops: float
    mem_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"{self.name}: peaks must be positive")

    @property
    def ridge_point(self) -> float:
        """Operational intensity at which compute and memory balance."""
        return self.peak_flops / self.mem_bandwidth

    def attainable_flops(self, intensity: float) -> float:
        """Attainable FLOP/s at a given operational intensity."""
        if intensity < 0:
            raise ValueError(f"negative intensity: {intensity}")
        return min(self.peak_flops, intensity * self.mem_bandwidth)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_point

    def with_efficiency(
        self,
        compute_efficiency: float,
        mem_efficiency: float,
        name: Optional[str] = None,
    ) -> "Roofline":
        """The *effective* roofline at sustained (derated) peaks.

        Calibration constants enter the model exactly once, here; every
        consumer then computes times off the derated machine.
        """
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError(f"compute efficiency out of (0,1]: {compute_efficiency}")
        if not 0.0 < mem_efficiency <= 1.0:
            raise ValueError(f"memory efficiency out of (0,1]: {mem_efficiency}")
        return Roofline(
            name=name or f"{self.name}@sustained",
            peak_flops=self.peak_flops * compute_efficiency,
            mem_bandwidth=self.mem_bandwidth * mem_efficiency,
        )

    def compute_time(self, flops: float) -> float:
        """Time of the compute phase alone."""
        if flops < 0:
            raise ValueError(f"negative flops: {flops}")
        return flops / self.peak_flops

    def memory_time(self, traffic_bytes: float) -> float:
        """Time of the memory phase alone."""
        if traffic_bytes < 0:
            raise ValueError(f"negative traffic: {traffic_bytes}")
        return traffic_bytes / self.mem_bandwidth

    def time(self, flops: float, traffic_bytes: float) -> float:
        """Ideal execution time: the slower of compute and memory.

        This is the perfectly-overlapped (pipelined) bound; callers apply
        efficiency factors and launch overheads on top.
        """
        return max(self.compute_time(flops), self.memory_time(traffic_bytes))

    def serial_time(self, flops: float, traffic_bytes: float) -> float:
        """Non-overlapped execution: load/store then compute, summed.

        Models an unfused kernel that cannot overlap its memory phases with
        compute (no cross-operator pipeline)."""
        return self.compute_time(flops) + self.memory_time(traffic_bytes)

    # ------------------------------------------------------------------
    # Vectorized entry points (array-in / array-out)
    # ------------------------------------------------------------------
    # The scalar methods stay the single source of the *formulas*; these
    # apply the identical arithmetic elementwise over numpy arrays so hot
    # loops (per-request cost batches, sweep grids) pay one call instead
    # of N. Division and max of float64 arrays are IEEE-754 operations —
    # bitwise-equal to the scalar path, which the vectorized-cost tests
    # assert.

    def compute_time_batch(self, flops) -> np.ndarray:
        """Elementwise :meth:`compute_time` over an array of FLOP counts."""
        flops = np.asarray(flops, dtype=np.float64)
        if np.any(flops < 0):
            raise ValueError("negative flops in batch")
        return flops / self.peak_flops

    def memory_time_batch(self, traffic_bytes) -> np.ndarray:
        """Elementwise :meth:`memory_time` over an array of byte counts."""
        traffic = np.asarray(traffic_bytes, dtype=np.float64)
        if np.any(traffic < 0):
            raise ValueError("negative traffic in batch")
        return traffic / self.mem_bandwidth

    def time_batch(self, flops, traffic_bytes) -> np.ndarray:
        """Elementwise :meth:`time` (overlapped bound) over arrays."""
        return np.maximum(
            self.compute_time_batch(flops), self.memory_time_batch(traffic_bytes)
        )

    def serial_time_batch(self, flops, traffic_bytes) -> np.ndarray:
        """Elementwise :meth:`serial_time` (summed phases) over arrays."""
        return self.compute_time_batch(flops) + self.memory_time_batch(
            traffic_bytes
        )
