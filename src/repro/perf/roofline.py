"""The roofline model (Williams et al., CACM 2009) for any accelerator.

The paper uses roofline reasoning throughout: an A100's ridge point of
~150 FLOPs/byte decides which rows of Table I are memory-bound, and the
whole motivation for fusion is moving kernels to the right of the ridge.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Roofline:
    """Peak compute and memory bandwidth of one machine."""

    name: str
    peak_flops: float
    mem_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"{self.name}: peaks must be positive")

    @property
    def ridge_point(self) -> float:
        """Operational intensity at which compute and memory balance."""
        return self.peak_flops / self.mem_bandwidth

    def attainable_flops(self, intensity: float) -> float:
        """Attainable FLOP/s at a given operational intensity."""
        if intensity < 0:
            raise ValueError(f"negative intensity: {intensity}")
        return min(self.peak_flops, intensity * self.mem_bandwidth)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_point

    def time(self, flops: float, traffic_bytes: float) -> float:
        """Ideal execution time: the slower of compute and memory.

        This is the perfectly-overlapped (pipelined) bound; callers apply
        efficiency factors and launch overheads on top.
        """
        if flops < 0 or traffic_bytes < 0:
            raise ValueError("flops and traffic must be non-negative")
        compute = flops / self.peak_flops
        memory = traffic_bytes / self.mem_bandwidth
        return max(compute, memory)

    def serial_time(self, flops: float, traffic_bytes: float) -> float:
        """Non-overlapped execution: load/store then compute, summed.

        Models an unfused kernel that cannot overlap its memory phases with
        compute (no cross-operator pipeline)."""
        if flops < 0 or traffic_bytes < 0:
            raise ValueError("flops and traffic must be non-negative")
        return flops / self.peak_flops + traffic_bytes / self.mem_bandwidth
