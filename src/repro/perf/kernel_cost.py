"""Kernel and plan execution-time estimation on SN40L execution targets.

The model (paper Sections III, VI):

- A **streaming-fused** kernel is a spatial pipeline: compute, memory
  traffic, and fused collectives all overlap, so kernel time is the *max*
  of the three, divided by the sustained-efficiency calibration constants.
- An **unfused** kernel loads inputs, computes, and stores outputs without
  cross-operator pipelining, so its phases *sum*, at lower sustained
  efficiency.
- Every kernel launch pays an orchestration overhead: software-orchestrated
  launches cost a fixed host round-trip plus a per-argument marshalling
  cost; hardware-orchestrated launches replay a static AGCU schedule for
  well under a microsecond (paper Section IV-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.config import NodeConfig, SocketConfig
from repro.dataflow.fusion import FusionPlan, Kernel
from repro.dataflow.intensity import SN40L_STREAMING, TrafficModel, kernel_traffic_bytes
from repro.obs import Timeline
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.roofline import Roofline


class Orchestration(enum.Enum):
    """Who sequences kernel launches (paper Section IV-D)."""

    SOFTWARE = "software"
    HARDWARE = "hardware"


@dataclass(frozen=True)
class ExecutionTarget:
    """Aggregate compute/memory peaks of the sockets running one program."""

    name: str
    sockets: int
    peak_flops: float
    hbm_bandwidth: float
    p2p_bandwidth: float
    calibration: Calibration = DEFAULT_CALIBRATION

    @classmethod
    def from_socket(
        cls,
        socket: SocketConfig,
        sockets: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: Optional[str] = None,
    ) -> "ExecutionTarget":
        """Build a target from ``sockets`` copies of one socket config.

        Tensor-parallel mapping: peaks aggregate linearly across sockets
        (the paper runs all large benchmarks as TP8 over eight sockets).
        """
        if sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {sockets}")
        return cls(
            name=name or f"SN40L-x{sockets}",
            sockets=sockets,
            peak_flops=socket.peak_flops * sockets,
            hbm_bandwidth=socket.hbm.bandwidth * sockets,
            p2p_bandwidth=socket.p2p_bandwidth,
            calibration=calibration,
        )

    @classmethod
    def from_node(
        cls, node: NodeConfig, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> "ExecutionTarget":
        return cls.from_socket(
            node.socket, sockets=node.sockets, calibration=calibration, name="SN40L-Node"
        )

    def roofline(self, pipelined: bool) -> Roofline:
        """The effective (efficiency-derated) roofline for a kernel class.

        Shared core with :meth:`repro.systems.platforms.Platform.roofline`
        — both draw their compute/memory terms from
        :class:`repro.perf.roofline.Roofline` derated by
        :meth:`Calibration.efficiencies`.
        """
        compute_eff, hbm_eff = self.calibration.efficiencies(pipelined)
        kind = "fused" if pipelined else "unfused"
        return Roofline(
            name=f"{self.name}/{kind}",
            peak_flops=self.peak_flops,
            mem_bandwidth=self.hbm_bandwidth,
        ).with_efficiency(compute_eff, hbm_eff, name=f"{self.name}/{kind}")


@dataclass(frozen=True)
class KernelCost:
    """Timed breakdown of one kernel launch."""

    kernel_name: str
    num_ops: int
    pipelined: bool
    compute_s: float
    memory_s: float
    comm_s: float
    launch_s: float

    @property
    def exec_s(self) -> float:
        """Execution time excluding launch overhead."""
        if self.pipelined:
            return max(self.compute_s, self.memory_s, self.comm_s)
        return self.compute_s + self.memory_s + self.comm_s

    @property
    def total_s(self) -> float:
        return self.exec_s + self.launch_s


@dataclass
class PlanCost:
    """Timed breakdown of a whole fusion plan."""

    plan_policy: str
    target_name: str
    orchestration: Orchestration
    kernels: List[KernelCost] = field(default_factory=list)

    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    @property
    def exec_s(self) -> float:
        return sum(k.exec_s for k in self.kernels)

    @property
    def launch_s(self) -> float:
        return sum(k.launch_s for k in self.kernels)

    @property
    def total_s(self) -> float:
        return self.exec_s + self.launch_s

    @property
    def compute_s(self) -> float:
        return sum(k.compute_s for k in self.kernels)

    @property
    def memory_s(self) -> float:
        return sum(k.memory_s for k in self.kernels)

    def summary(self) -> str:
        return (
            f"{self.plan_policy}/{self.orchestration.value} on {self.target_name}: "
            f"{self.total_s * 1e3:.3f} ms "
            f"({self.num_launches} launches, {self.launch_s * 1e3:.3f} ms overhead)"
        )

    def to_timeline(self) -> Timeline:
        """The plan's schedule as a span timeline.

        Launches occupy the ``orchestration`` lane and kernel bodies the
        ``kernel`` lane, serialized back-to-back — the Figure 10 picture,
        where software-orchestrated launch gaps dominate decode.
        """
        timeline = Timeline()
        now = 0.0
        for kernel in self.kernels:
            if kernel.launch_s > 0:
                timeline.record(
                    f"launch:{kernel.kernel_name}",
                    lane="orchestration",
                    category="orchestration",
                    start_s=now,
                    end_s=now + kernel.launch_s,
                    args={"orchestration": self.orchestration.value},
                )
                now += kernel.launch_s
            timeline.record(
                kernel.kernel_name,
                lane="kernel",
                category="kernel",
                start_s=now,
                end_s=now + kernel.exec_s,
                args={
                    "ops": kernel.num_ops,
                    "compute_ms": kernel.compute_s * 1e3,
                    "memory_ms": kernel.memory_s * 1e3,
                    "pipelined": kernel.pipelined,
                },
            )
            now += kernel.exec_s
        return timeline


def cost_kernel(
    kernel: Kernel,
    target: ExecutionTarget,
    pipelined: bool,
    orchestration: Orchestration,
    traffic_model: TrafficModel = SN40L_STREAMING,
) -> KernelCost:
    """Estimate the time of one kernel launch on a target."""
    cal = target.calibration
    roofline = target.roofline(pipelined)
    traffic = kernel_traffic_bytes(kernel, traffic_model)
    compute_s = roofline.compute_time(kernel.flops)
    memory_s = roofline.memory_time(traffic)

    comm_s = 0.0
    if kernel.comm_bytes > 0:
        num_collectives = sum(1 for op in kernel.ops if op.comm_bytes > 0)
        comm_s = (
            kernel.comm_bytes / target.p2p_bandwidth
            + num_collectives * cal.p2p_latency_s
        )

    if orchestration is Orchestration.HARDWARE:
        launch_s = cal.hw_launch_s
    else:
        num_args = len(kernel.external_inputs) + len(kernel.external_outputs)
        launch_s = cal.sw_launch_overhead(num_args)

    return KernelCost(
        kernel_name=kernel.name,
        num_ops=kernel.num_ops,
        pipelined=pipelined,
        compute_s=compute_s,
        memory_s=memory_s,
        comm_s=comm_s,
        launch_s=launch_s,
    )


def cost_kernels_batch(
    kernels: Sequence[Kernel],
    target: ExecutionTarget,
    pipelined: Sequence[bool],
    orchestration: Orchestration,
    traffic_model: TrafficModel = SN40L_STREAMING,
) -> List[KernelCost]:
    """Vectorized :func:`cost_kernel` over a whole kernel list.

    Gathers flops/traffic/comm into arrays and computes each phase with
    one :class:`~repro.perf.roofline.Roofline` batch call per kernel
    class (pipelined kernels and phase-serial kernels derate against
    different rooflines), instead of four scalar divisions per kernel.
    The arithmetic is elementwise-identical to :func:`cost_kernel`, so
    the per-kernel costs compare equal — asserted by
    ``tests/perf/test_kernel_cost.py``.
    """
    if len(kernels) != len(pipelined):
        raise ValueError(
            f"{len(kernels)} kernels but {len(pipelined)} pipelined flags"
        )
    if not kernels:
        return []
    cal = target.calibration
    flops = np.array([k.flops for k in kernels], dtype=np.float64)
    traffic = np.array(
        [kernel_traffic_bytes(k, traffic_model) for k in kernels],
        dtype=np.int64,
    )
    pipelined_mask = np.array(pipelined, dtype=bool)

    compute_s = np.zeros(len(kernels))
    memory_s = np.zeros(len(kernels))
    for is_pipelined in (True, False):
        mask = pipelined_mask if is_pipelined else ~pipelined_mask
        if not mask.any():
            continue
        roofline = target.roofline(is_pipelined)
        compute_s[mask] = roofline.compute_time_batch(flops[mask])
        memory_s[mask] = roofline.memory_time_batch(traffic[mask])

    costs: List[KernelCost] = []
    for i, kernel in enumerate(kernels):
        comm_s = 0.0
        if kernel.comm_bytes > 0:
            num_collectives = sum(1 for op in kernel.ops if op.comm_bytes > 0)
            comm_s = (
                kernel.comm_bytes / target.p2p_bandwidth
                + num_collectives * cal.p2p_latency_s
            )
        if orchestration is Orchestration.HARDWARE:
            launch_s = cal.hw_launch_s
        else:
            num_args = len(kernel.external_inputs) + len(kernel.external_outputs)
            launch_s = cal.sw_launch_overhead(num_args)
        costs.append(KernelCost(
            kernel_name=kernel.name,
            num_ops=kernel.num_ops,
            pipelined=bool(pipelined_mask[i]),
            compute_s=float(compute_s[i]),
            memory_s=float(memory_s[i]),
            comm_s=comm_s,
            launch_s=launch_s,
        ))
    return costs


def cost_plan(
    plan: FusionPlan,
    target: ExecutionTarget,
    orchestration: Orchestration = Orchestration.SOFTWARE,
    traffic_model: TrafficModel = SN40L_STREAMING,
) -> PlanCost:
    """Estimate total execution time of a fusion plan.

    Fused (streaming/conventional) kernels run as pipelines; single-op
    kernels from the unfused baseline run phase-serial. Roofline phases
    for the whole plan are computed in one vectorized batch.
    """
    result = PlanCost(
        plan_policy=plan.policy,
        target_name=target.name,
        orchestration=orchestration,
    )
    pipelined_plan = plan.policy != "unfused"
    # Even in a fused plan, a kernel that ended up with a single op has
    # no pipeline to exploit.
    pipelined = [pipelined_plan and k.num_ops > 1 for k in plan.kernels]
    result.kernels.extend(cost_kernels_batch(
        plan.kernels, target, pipelined, orchestration, traffic_model
    ))
    return result


def speedup(baseline: PlanCost, improved: PlanCost) -> float:
    """Baseline-over-improved time ratio (>1 means ``improved`` is faster)."""
    if improved.total_s <= 0:
        raise ValueError("improved plan has non-positive time")
    return baseline.total_s / improved.total_s
