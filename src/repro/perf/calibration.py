"""Calibration constants for the SN40L performance model.

Every empirical constant in the reproduction lives here, with the evidence
used to pick it. The paper publishes architecture parameters (TFLOPS,
bandwidths, capacities) but not micro-level efficiencies; these constants
make the model land on the paper's *reported behaviour*:

- "saturating close to 85% of HBM bandwidth" for the fused decoder
  (Section VI-B) -> ``FUSED_HBM_EFFICIENCY = 0.85``,
- "using almost 90% of the PCUs and PMUs" -> ``FUSED_COMPUTE_EFFICIENCY``,
- model switching "31x faster than DGX A100 (32 GB/s)" and "16x faster
  than H100 (64 GB/s)" with ">1 TB/s" DDR->HBM on the node ->
  ``NODE_DDR_TO_HBM_BANDWIDTH = 1.05 TB/s`` (so 1.05e12/32e9 ~ 33x,
  1.05e12/64e9 ~ 16x),
- hardware-orchestrated launches give 1.4x-8x on decode but <=1.1x on
  prefill (Section VI-A) -> software launch overhead of ~12 us + ~2 us per
  kernel argument, hardware launch of ~0.5 us.

Changing a constant here changes every benchmark consistently; the
calibration test suite (tests/perf/test_calibration.py) pins the observable
behaviours above so regressions are caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, TB


@dataclass(frozen=True)
class Calibration:
    """The full set of tunable model constants."""

    # --- SN40L kernel execution efficiencies -----------------------------
    #: Fraction of peak HBM bandwidth sustained by a spatially fused,
    #: pipelined kernel (paper: ~85% for the fused decoder layer).
    fused_hbm_efficiency: float = 0.85
    #: Fraction of peak FLOPs sustained by fused systolic pipelines.
    fused_compute_efficiency: float = 0.90
    #: Unfused kernels run load -> compute -> store without cross-operator
    #: pipelining; each phase also sustains a lower fraction of peak.
    unfused_hbm_efficiency: float = 0.55
    unfused_compute_efficiency: float = 0.70

    # --- Kernel launch orchestration (paper Section IV-D) ----------------
    #: Fixed host-side cost of one software-orchestrated launch.
    sw_launch_fixed_s: float = 12e-6
    #: Per-argument cost of software argument loading (each external tensor
    #: of the kernel is one argument the host marshals).
    sw_launch_per_arg_s: float = 2e-6
    #: Hardware-orchestrated launch: the AGCU sequencer replays a static
    #: schedule without host involvement.
    hw_launch_s: float = 0.5e-6

    # --- Node-level transfer paths ----------------------------------------
    #: Aggregate DDR->HBM copy bandwidth of the 8-socket node. The paper
    #: reports "over 1 TB/s"; the TLN limits it below the 1.6 TB/s raw DDR
    #: aggregate.
    node_ddr_to_hbm_bandwidth: float = 1.05 * TB
    #: Effective host-to-HBM copy bandwidth of a DGX A100 / H100 node when
    #: switching models out of host DRAM. The paper uses the published
    #: per-node figures of 32 GB/s and 64 GB/s.
    dgx_a100_host_to_hbm: float = 32 * GB
    dgx_h100_host_to_hbm: float = 64 * GB

    # --- GPU execution model (for DGX baselines) -------------------------
    #: Sustained fraction of HBM bandwidth during autoregressive decode.
    gpu_a100_decode_hbm_efficiency: float = 0.50
    gpu_h100_decode_hbm_efficiency: float = 0.55
    #: Sustained fraction of peak tensor FLOPs during prefill/training.
    gpu_compute_efficiency: float = 0.55
    #: Per-layer latency of one NVLink tensor-parallel all-reduce at small
    #: message sizes (latency-bound at decode batch sizes).
    gpu_allreduce_latency_s: float = 20e-6
    #: Per-kernel launch overhead on the GPU (with CUDA-graph-style
    #: batching of launches).
    gpu_launch_overhead_s: float = 8e-6

    # --- SN40L P2P / collective model -------------------------------------
    #: Per-hop latency of the streamed peer-to-peer collective; collectives
    #: are fused into the pipeline so only latency (not serialized
    #: bandwidth) is exposed per layer.
    p2p_latency_s: float = 2e-6

    def sw_launch_overhead(self, num_args: int) -> float:
        """Software-orchestrated launch cost for a kernel with ``num_args``
        external tensors."""
        return self.sw_launch_fixed_s + self.sw_launch_per_arg_s * num_args

    def efficiencies(self, pipelined: bool) -> "tuple[float, float]":
        """(compute, HBM) sustained-efficiency pair for one kernel class.

        The single place the fused/unfused derating split is decided;
        consumers fold the pair into an effective roofline via
        :meth:`repro.perf.roofline.Roofline.with_efficiency`.
        """
        if pipelined:
            return self.fused_compute_efficiency, self.fused_hbm_efficiency
        return self.unfused_compute_efficiency, self.unfused_hbm_efficiency


#: The default calibration used by every benchmark.
DEFAULT_CALIBRATION = Calibration()
