"""Hardware configuration for the SN40L Reconfigurable Dataflow Unit.

These dataclasses capture every architecture parameter the performance model
depends on. Published figures from the paper (MICRO 2024, Section IV):

- 638 BF16 TFLOPS peak per socket from 1040 Pattern Compute Units (PCUs),
- 1040 Pattern Memory Units (PMUs) totalling 520 MiB on-chip SRAM,
- 64 GiB HBM per socket at ~2 TB/s,
- up to 1.5 TiB DDR per socket at >200 GB/s,
- two Reconfigurable Dataflow Dies (RDDs) per socket (CoWoS package),
- a node is eight sockets plus an x86 host, with >1 TB/s aggregate
  DDR-to-HBM copy bandwidth.

Where the paper does not publish a parameter (e.g. tile grid dimensions,
per-PMU bank count) we pick values consistent with the published aggregates
and with the SN10/Plasticine lineage; these only affect low-level simulation
detail, not the aggregate cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GB, GiB, KiB, TB, TiB


@dataclass(frozen=True)
class PCUConfig:
    """Pattern Compute Unit parameters.

    The PCU body is configurable as an output-stationary systolic array or a
    pipelined SIMD core (paper Section IV-A). ``lanes`` is the SIMD width,
    ``stages`` the number of pipelined vector-compute stages. In systolic
    mode the body operates as a ``lanes x stages`` MAC grid.
    """

    lanes: int = 32
    stages: int = 6
    clock_ghz: float = 1.6
    #: FLOPs retired per MAC per cycle (multiply + add).
    flops_per_mac: int = 2

    @property
    def systolic_macs(self) -> int:
        """Number of MAC units available in systolic mode."""
        return self.lanes * self.stages

    @property
    def peak_flops(self) -> float:
        """Peak BF16 FLOP/s of one PCU in systolic mode."""
        return self.systolic_macs * self.flops_per_mac * self.clock_ghz * 1e9

    @property
    def simd_flops(self) -> float:
        """Peak FLOP/s of one PCU in SIMD (streaming elementwise) mode.

        SIMD mode retires one operation per lane per cycle: element-wise
        operators do not use the stage-parallel MAC grid.
        """
        return self.lanes * self.clock_ghz * 1e9


@dataclass(frozen=True)
class PMUConfig:
    """Pattern Memory Unit parameters.

    Each PMU holds a programmer-managed banked scratchpad with independent
    read and write address-generation pipelines (paper Section IV-B).
    520 MiB over 1040 PMUs gives 512 KiB per PMU.
    """

    capacity_bytes: int = 512 * KiB
    num_banks: int = 32
    #: Width of one bank port in bytes (one BF16 vector lane pair).
    bank_port_bytes: int = 8
    clock_ghz: float = 1.6
    #: Integer ALU stages available for address computation, shared between
    #: the read and write address pipelines (software partitions them).
    address_alu_stages: int = 8

    @property
    def bank_bytes(self) -> int:
        """Capacity of a single scratchpad bank."""
        return self.capacity_bytes // self.num_banks

    @property
    def read_bandwidth(self) -> float:
        """Peak conflict-free read bandwidth of one PMU in bytes/s."""
        return self.num_banks * self.bank_port_bytes * self.clock_ghz * 1e9

    @property
    def write_bandwidth(self) -> float:
        """Peak conflict-free write bandwidth of one PMU in bytes/s.

        Reads and writes are served by independent address pipelines and do
        not contend except on a per-bank basis (modelled in
        :mod:`repro.arch.pmu`).
        """
        return self.num_banks * self.bank_port_bytes * self.clock_ghz * 1e9


@dataclass(frozen=True)
class AGCUConfig:
    """Address Generation and Coalescing Unit parameters.

    AGCUs bridge the tile to the Top Level Network (TLN) and implement the
    kernel-launch mechanism: Program Load, Argument Load, Kernel Execute
    (paper Section IV-D). Launch overheads are calibration constants; see
    :mod:`repro.perf.calibration` for how they were chosen.
    """

    #: Time for a software-orchestrated kernel launch (host submits each
    #: Program Load / Argument Load / Execute command sequence).
    sw_launch_overhead_s: float = 12e-6
    #: Time for a hardware-orchestrated launch (static schedule offloaded to
    #: AGCU sequencers; paper Section IV-D).
    hw_launch_overhead_s: float = 0.5e-6
    #: Peak request bandwidth one AGCU can drive onto the TLN.
    tln_bandwidth: float = 256 * GB


@dataclass(frozen=True)
class RDNConfig:
    """Reconfigurable Dataflow Network parameters (paper Section IV-C).

    Three physical fabrics: a packet-switched vector fabric (tensor data),
    a packet-switched scalar fabric (metadata/addresses), and a
    circuit-switched single-bit control fabric (tokens).
    """

    #: Payload of one vector packet in bytes (one 32-lane BF16 vector).
    vector_packet_bytes: int = 64
    #: Payload of one scalar packet in bytes.
    scalar_packet_bytes: int = 4
    clock_ghz: float = 1.6
    #: Per-hop latency in cycles for the packet-switched fabrics.
    hop_latency_cycles: int = 2
    #: Credits per virtual channel on each switch input port.
    credits_per_port: int = 4
    #: Number of distinct flow IDs a switch flow table can hold. SN40L uses
    #: MPLS-like per-switch relabelling so IDs are local, not global.
    flow_table_entries: int = 64

    @property
    def link_bandwidth(self) -> float:
        """Peak bandwidth of a single vector-fabric link in bytes/s."""
        return self.vector_packet_bytes * self.clock_ghz * 1e9


@dataclass(frozen=True)
class TileConfig:
    """One RDU tile: a 2-D mesh of PCUs, PMUs, switches, and AGCUs.

    The published aggregate is 1040 PCUs + 1040 PMUs per socket over two
    dies. We model each die as four tiles of a 10x13 unit checkerboard
    (130 PCUs + 130 PMUs per tile), which reproduces the aggregates.
    """

    rows: int = 10
    cols: int = 13
    agcus: int = 4
    pcu: PCUConfig = field(default_factory=PCUConfig)
    pmu: PMUConfig = field(default_factory=PMUConfig)
    agcu: AGCUConfig = field(default_factory=AGCUConfig)
    rdn: RDNConfig = field(default_factory=RDNConfig)

    @property
    def num_pcus(self) -> int:
        """PCUs in this tile (half the checkerboard positions)."""
        return self.rows * self.cols

    @property
    def num_pmus(self) -> int:
        """PMUs in this tile (the other half of the checkerboard)."""
        return self.rows * self.cols


@dataclass(frozen=True)
class MemoryTierSpec:
    """Capacity/bandwidth/latency descriptor for one memory tier."""

    name: str
    capacity_bytes: int
    bandwidth: float
    latency_s: float

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` at peak tier bandwidth."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth


@dataclass(frozen=True)
class SocketConfig:
    """One SN40L socket: two dies of tiles, plus HBM and DDR interfaces."""

    dies: int = 2
    tiles_per_die: int = 4
    tile: TileConfig = field(default_factory=TileConfig)
    hbm: MemoryTierSpec = MemoryTierSpec(
        name="HBM", capacity_bytes=64 * GiB, bandwidth=2 * TB, latency_s=0.4e-6
    )
    ddr: MemoryTierSpec = MemoryTierSpec(
        name="DDR", capacity_bytes=int(1.5 * TiB), bandwidth=200 * GB, latency_s=0.9e-6
    )
    #: Die-to-die streaming bandwidth (tile components stream directly
    #: between dies without touching off-chip memory).
    d2d_bandwidth: float = 1 * TB
    #: PCIe link to the host CPU.
    host_link_bandwidth: float = 32 * GB
    #: Peer-to-peer bandwidth to other sockets.
    p2p_bandwidth: float = 200 * GB

    @property
    def num_tiles(self) -> int:
        return self.dies * self.tiles_per_die

    @property
    def num_pcus(self) -> int:
        return self.num_tiles * self.tile.num_pcus

    @property
    def num_pmus(self) -> int:
        return self.num_tiles * self.tile.num_pmus

    @property
    def peak_flops(self) -> float:
        """Peak BF16 FLOP/s per socket (paper: 638 TFLOPS)."""
        return self.num_pcus * self.tile.pcu.peak_flops

    @property
    def sram_capacity_bytes(self) -> int:
        """Total distributed PMU SRAM per socket (paper: 520 MiB)."""
        return self.num_pmus * self.tile.pmu.capacity_bytes

    @property
    def sram_bandwidth(self) -> float:
        """Aggregate on-chip SRAM read bandwidth per socket.

        The paper quotes "hundreds of TBps" of on-chip bandwidth; 1040 PMUs
        at ~409 GB/s each give ~426 TB/s, consistent with that claim.
        """
        return self.num_pmus * self.tile.pmu.read_bandwidth


@dataclass(frozen=True)
class NodeConfig:
    """An SN40L node: eight sockets plus one x86 host (paper Section V)."""

    sockets: int = 8
    socket: SocketConfig = field(default_factory=SocketConfig)
    #: Host DRAM available for spill-of-last-resort.
    host_dram: MemoryTierSpec = MemoryTierSpec(
        name="HostDRAM", capacity_bytes=2 * TiB, bandwidth=100 * GB, latency_s=1e-6
    )

    @property
    def peak_flops(self) -> float:
        return self.sockets * self.socket.peak_flops

    @property
    def hbm_capacity_bytes(self) -> int:
        return self.sockets * self.socket.hbm.capacity_bytes

    @property
    def hbm_bandwidth(self) -> float:
        return self.sockets * self.socket.hbm.bandwidth

    @property
    def ddr_capacity_bytes(self) -> int:
        return self.sockets * self.socket.ddr.capacity_bytes

    @property
    def ddr_to_hbm_bandwidth(self) -> float:
        """Aggregate DDR->HBM copy bandwidth across the node.

        The paper reports loading models from DDR to HBM "at over 1 TB/s in
        a single SN40L Node": eight sockets each copying at DDR peak.
        """
        return self.sockets * self.socket.ddr.bandwidth


def sn40l_socket() -> SocketConfig:
    """The SN40L socket with published default parameters."""
    return SocketConfig()


def sn40l_node() -> NodeConfig:
    """The eight-socket SN40L node used for all Samba-CoE experiments."""
    return NodeConfig()


def sn10_like_socket() -> SocketConfig:
    """An SN10-like ablation config: no HBM tier (DDR + SRAM only).

    Used by the HBM ablation benchmark to quantify what the new HBM tier
    buys on memory-bound inference (paper Section IV-E). Modelled as the
    SN40L with the HBM tier's capacity set to zero.
    """
    return SocketConfig(
        hbm=MemoryTierSpec(name="HBM", capacity_bytes=0, bandwidth=1.0, latency_s=0.0)
    )
