"""Address Generation and Coalescing Unit: launches, DMA, and P2P.

The AGCU (paper Section IV-D) bridges an RDU tile to the Top Level Network.
This module models its three roles:

1. **Kernel launch orchestration** — a launch is the command sequence
   Program Load -> Argument Load -> Kernel Execute. Software orchestration
   issues each sequence from the host (paying a per-launch, per-argument
   overhead); hardware orchestration replays a preloaded static schedule
   from AGCU sequencers.
2. **Off-chip access** — coalesced reads/writes against HBM/DDR at TLN
   bandwidth.
3. **Peer-to-peer protocol** — streaming sends between RDUs that bypass
   HBM/DDR, from which collectives like ring all-reduce are built.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.arch.config import AGCUConfig


class LaunchCommand(enum.Enum):
    """The three launch commands in issue order."""

    PROGRAM_LOAD = "program_load"
    ARGUMENT_LOAD = "argument_load"
    KERNEL_EXECUTE = "kernel_execute"


@dataclass(frozen=True)
class KernelDescriptor:
    """What the orchestrator needs to know to launch one kernel."""

    name: str
    exec_time_s: float
    num_args: int = 0

    def __post_init__(self) -> None:
        if self.exec_time_s < 0:
            raise ValueError(f"{self.name}: negative exec time")
        if self.num_args < 0:
            raise ValueError(f"{self.name}: negative arg count")


@dataclass(frozen=True)
class LaunchEvent:
    """One command issued during schedule execution (for traces/tests)."""

    kernel: str
    command: LaunchCommand
    time_s: float


@dataclass
class ScheduleResult:
    """Timing of one executed kernel schedule."""

    total_s: float
    overhead_s: float
    events: List[LaunchEvent] = field(default_factory=list)

    @property
    def exec_s(self) -> float:
        return self.total_s - self.overhead_s


class KernelOrchestrator:
    """Executes kernel schedules under either orchestration mode."""

    def __init__(
        self,
        config: AGCUConfig = AGCUConfig(),
        sw_per_arg_s: float = 2e-6,
    ) -> None:
        self.config = config
        self.sw_per_arg_s = sw_per_arg_s

    def run_software(self, schedule: Sequence[KernelDescriptor]) -> ScheduleResult:
        """Host-driven launch: every kernel pays the full command round trip.

        Software orchestration is more flexible (the host can make
        data-dependent decisions between kernels) but each launch costs a
        fixed host overhead plus argument marshalling.
        """
        now = 0.0
        overhead = 0.0
        events: List[LaunchEvent] = []
        for kernel in schedule:
            launch = self.config.sw_launch_overhead_s + self.sw_per_arg_s * kernel.num_args
            for command in LaunchCommand:
                events.append(LaunchEvent(kernel.name, command, now))
            now += launch
            overhead += launch
            now += kernel.exec_time_s
        return ScheduleResult(total_s=now, overhead_s=overhead, events=events)

    def run_hardware(self, schedule: Sequence[KernelDescriptor]) -> ScheduleResult:
        """AGCU-sequenced launch of a *static* schedule.

        The schedule (program pointers, argument blocks) is loaded once;
        each launch then costs only the hardware sequencer's issue time.
        Data-dependent scheduling is not possible — the schedule is fixed
        at compile time (paper Section IV-D).
        """
        now = 0.0
        overhead = 0.0
        events: List[LaunchEvent] = []
        for kernel in schedule:
            events.append(LaunchEvent(kernel.name, LaunchCommand.KERNEL_EXECUTE, now))
            now += self.config.hw_launch_overhead_s
            overhead += self.config.hw_launch_overhead_s
            now += kernel.exec_time_s
        return ScheduleResult(total_s=now, overhead_s=overhead, events=events)


# ----------------------------------------------------------------------
# Peer-to-peer protocol and collectives
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class P2PLink:
    """A point-to-point streaming link between two RDU sockets."""

    bandwidth: float
    latency_s: float = 2e-6

    def transfer_time(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError(f"negative transfer: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth


def ring_allreduce_time(
    num_bytes: float, participants: int, link: P2PLink
) -> float:
    """Time of a ring all-reduce over the P2P protocol.

    Standard ring: ``2 * (p - 1)`` steps each moving ``bytes / p``. The
    SN40L's streaming protocol lets the compiler fuse this with compute
    (paper Section VII); callers model that overlap — this function returns
    the unoverlapped collective time.
    """
    if participants < 1:
        raise ValueError(f"participants must be >= 1, got {participants}")
    if participants == 1:
        return 0.0
    steps = 2 * (participants - 1)
    return steps * link.transfer_time(num_bytes / participants)


def all_gather_time(num_bytes: float, participants: int, link: P2PLink) -> float:
    """Time of a ring all-gather (``p - 1`` steps of ``bytes / p``)."""
    if participants < 1:
        raise ValueError(f"participants must be >= 1, got {participants}")
    if participants == 1:
        return 0.0
    return (participants - 1) * link.transfer_time(num_bytes / participants)


@dataclass
class AddressGenerator:
    """The AGCU's scalar address pipeline: affine multi-dimensional walks.

    Generates addresses for ``sum_i idx_i * stride_i + base`` loop nests,
    the access-pattern workhorse for off-chip tensors.
    """

    base: int
    strides: Tuple[int, ...]
    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.strides) != len(self.extents):
            raise ValueError("strides and extents must have equal rank")
        if any(e <= 0 for e in self.extents):
            raise ValueError(f"extents must be positive, got {self.extents}")

    def addresses(self) -> List[int]:
        """All addresses of the walk, innermost dimension fastest."""
        out: List[int] = []

        def walk(dim: int, acc: int) -> None:
            if dim == len(self.extents):
                out.append(acc)
                return
            for i in range(self.extents[dim]):
                walk(dim + 1, acc + i * self.strides[dim])

        walk(0, self.base)
        return out

    @property
    def count(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total
