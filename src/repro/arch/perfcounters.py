"""Performance counters and hotspot analysis (paper Section VII).

"Performance counters in SN40L switches and PMUs count stalls and help
identify hotspots in the SN40L tile. ... bandwidth issues often boiled
down to one of two things: a network congestion, or a memory bank
conflict."

This module provides the counter infrastructure and the triage logic:

- :class:`StallCounter` — saturating stall/busy counters as found in
  switches and PMUs,
- :class:`CounterFile` — a named collection with snapshot/delta support
  (how real performance debugging sessions read the hardware),
- :func:`diagnose` — the paper's two-bucket triage: classify each hot
  unit as *network congestion* (switch stalls) or *bank conflict* (PMU
  conflict cycles), with the recommended remedy (packet throttling vs
  programmable bank-bit remapping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.pmu import PMU


class UnitClass(enum.Enum):
    SWITCH = "switch"
    PMU = "pmu"


class Remedy(enum.Enum):
    """The two remedies of the paper's performance-debugging lesson."""

    THROTTLE_TRAFFIC = "program packet throttling to smooth bursty streams"
    REMAP_BANK_BITS = "program bank bits to split buffers across banks"
    NONE = "unit is healthy"


@dataclass
class StallCounter:
    """A saturating busy/stall counter pair."""

    name: str
    unit_class: UnitClass
    busy_cycles: int = 0
    stall_cycles: int = 0
    #: Saturation bound, as in real hardware counter registers.
    max_value: int = 2**48 - 1

    def record(self, busy: int = 0, stalled: int = 0) -> None:
        if busy < 0 or stalled < 0:
            raise ValueError("cycle counts must be non-negative")
        self.busy_cycles = min(self.busy_cycles + busy, self.max_value)
        self.stall_cycles = min(self.stall_cycles + stalled, self.max_value)

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.stall_cycles

    @property
    def stall_fraction(self) -> float:
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0

    def reset(self) -> None:
        self.busy_cycles = 0
        self.stall_cycles = 0


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time counter values (for delta-based profiling)."""

    values: Dict[str, tuple]


class CounterFile:
    """A named collection of counters with snapshot/delta reads."""

    def __init__(self) -> None:
        self._counters: Dict[str, StallCounter] = {}

    def register(self, counter: StallCounter) -> StallCounter:
        if counter.name in self._counters:
            raise ValueError(f"counter {counter.name!r} already registered")
        self._counters[counter.name] = counter
        return counter

    def __getitem__(self, name: str) -> StallCounter:
        return self._counters[name]

    def __len__(self) -> int:
        return len(self._counters)

    def counters(self) -> List[StallCounter]:
        return list(self._counters.values())

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(
            values={
                name: (c.busy_cycles, c.stall_cycles)
                for name, c in self._counters.items()
            }
        )

    def delta(self, since: CounterSnapshot) -> Dict[str, tuple]:
        """(busy, stall) deltas since a snapshot, for windowed profiling."""
        out = {}
        for name, counter in self._counters.items():
            busy0, stall0 = since.values.get(name, (0, 0))
            out[name] = (counter.busy_cycles - busy0, counter.stall_cycles - stall0)
        return out


@dataclass(frozen=True)
class Hotspot:
    """One diagnosed problem unit."""

    unit: str
    unit_class: UnitClass
    stall_fraction: float
    remedy: Remedy


def diagnose(counters: CounterFile, stall_threshold: float = 0.25) -> List[Hotspot]:
    """The paper's two-bucket triage over a counter file.

    Units stalled above ``stall_threshold`` are hotspots; switches map to
    RDN congestion (remedy: programmable packet throttling) and PMUs map
    to bank conflicts (remedy: programmable bank bits).
    """
    if not 0.0 < stall_threshold < 1.0:
        raise ValueError(f"threshold must be in (0,1), got {stall_threshold}")
    hotspots = []
    for counter in counters.counters():
        fraction = counter.stall_fraction
        if fraction <= stall_threshold:
            continue
        remedy = (
            Remedy.THROTTLE_TRAFFIC
            if counter.unit_class is UnitClass.SWITCH
            else Remedy.REMAP_BANK_BITS
        )
        hotspots.append(
            Hotspot(
                unit=counter.name,
                unit_class=counter.unit_class,
                stall_fraction=fraction,
                remedy=remedy,
            )
        )
    return sorted(hotspots, key=lambda h: -h.stall_fraction)


def counter_span_args(delta: Dict[str, tuple]) -> Dict:
    """A span ``args`` payload from a :meth:`CounterFile.delta` read.

    The bridge between hardware counters and the timeline substrate:
    windowed (busy, stall) deltas become JSON-friendly annotations a
    span can carry into a Chrome trace.
    """
    return {
        "counters": {
            name: {"busy": busy, "stall": stall}
            for name, (busy, stall) in delta.items()
        }
    }


def record_counter_span(
    timeline,
    counters: CounterFile,
    since: CounterSnapshot,
    name: str,
    lane: str,
    start_s: float,
    end_s: float,
    category: str = "counters",
):
    """Record a span annotated with the counter deltas over its window.

    The profiling idiom: snapshot before a region, run it, then call
    this with the region's timeline interval — the resulting span shows
    up in Perfetto with per-unit busy/stall cycle deltas attached.
    Returns the recorded :class:`repro.obs.Span`.
    """
    return timeline.record(
        name,
        lane=lane,
        category=category,
        start_s=start_s,
        end_s=end_s,
        args=counter_span_args(counters.delta(since)),
    )


def pmu_counter(name: str, pmu: PMU) -> StallCounter:
    """Build a counter from a PMU's accumulated access statistics.

    Conflict cycles (cycles beyond one per vector) count as stalls —
    exactly what the hardware's bank-conflict counters expose.
    """
    counter = StallCounter(name=name, unit_class=UnitClass.PMU)
    for stats in (pmu.read_stats, pmu.write_stats):
        counter.record(busy=stats.vectors, stalled=stats.conflict_cycles)
    return counter
