"""SN40L hardware architecture models."""

from repro.arch.config import (
    AGCUConfig,
    MemoryTierSpec,
    NodeConfig,
    PCUConfig,
    PMUConfig,
    RDNConfig,
    SocketConfig,
    TileConfig,
    sn10_like_socket,
    sn40l_node,
    sn40l_socket,
)
from repro.arch.node import RDUNode, RDUSocket
from repro.arch.perfcounters import (
    CounterFile,
    Hotspot,
    Remedy,
    StallCounter,
    UnitClass,
    diagnose,
    pmu_counter,
)
from repro.arch.pcu import PCU
from repro.arch.tail import TailUnit, Xorshift32, stochastic_round_bf16
from repro.arch.pmu import PMU, DiagonalTileBuffer
from repro.arch.rdn import Mesh, Packet, ReorderBuffer
from repro.arch.tile import RDUTile, UnitKind
from repro.arch.topology import SocketFabric, Topology, best_topology

__all__ = [
    "AGCUConfig", "MemoryTierSpec", "NodeConfig", "PCUConfig", "PMUConfig",
    "RDNConfig", "SocketConfig", "TileConfig", "sn10_like_socket",
    "sn40l_node", "sn40l_socket", "RDUNode", "RDUSocket", "PCU", "PMU",
    "DiagonalTileBuffer", "Mesh", "Packet", "ReorderBuffer", "RDUTile",
    "UnitKind", "CounterFile", "Hotspot", "Remedy", "StallCounter",
    "UnitClass", "diagnose", "pmu_counter", "TailUnit", "Xorshift32",
    "stochastic_round_bf16", "SocketFabric", "Topology", "best_topology",
]
