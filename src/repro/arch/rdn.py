"""Reconfigurable Dataflow Network: mesh switches, flow routing, reordering.

Functional model of the RDN mechanics (paper Sections IV-C, IV-E):

- a 2-D mesh of non-blocking switches with N/S/E/W/local ports,
- **dimension-order routing** for dynamically-routed packets,
- **static flow routing** with per-switch flow tables: each packet carries
  a flow ID that is looked up and *rewritten* at every hop (the MPLS-like
  scheme SN40L adopted so flow IDs are switch-local, fixing SN10's global
  allocation problem),
- **multicast**: one flow-table entry can fan a packet out of several
  ports,
- **sequence IDs** for many-to-one streams: destinations reorder arriving
  packets by sequence ID (paper: "the sequence ID field is used ... to
  compute the write addresses to reorder the packets").

Hop latency accounting lets tests check path lengths; contention/credit
behaviour is modelled separately in :mod:`repro.sim.streams`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.config import RDNConfig


class Port(enum.Enum):
    """Switch ports: four mesh neighbours plus the local unit."""

    NORTH = (0, -1)
    SOUTH = (0, 1)
    EAST = (1, 0)
    WEST = (-1, 0)
    LOCAL = (0, 0)

    @property
    def step(self) -> Tuple[int, int]:
        return self.value

    @property
    def opposite(self) -> "Port":
        return _OPPOSITE[self]


_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.LOCAL: Port.LOCAL,
}


@dataclass
class Packet:
    """One vector-fabric packet."""

    payload: object
    flow_id: Optional[int] = None
    sequence_id: Optional[int] = None
    hops: int = 0


@dataclass(frozen=True)
class FlowEntry:
    """One flow-table entry: where to send and what to relabel to.

    ``out_ports`` with more than one element is a multicast fan-out; the
    packet is replicated with the per-port next flow ID.
    """

    out_ports: Tuple[Port, ...]
    next_flow_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.out_ports) != len(self.next_flow_ids):
            raise ValueError("out_ports and next_flow_ids must align")
        if not self.out_ports:
            raise ValueError("a flow entry needs at least one output port")


class Switch:
    """One RDN switch with a software-programmed flow table."""

    def __init__(self, coord: Tuple[int, int], config: RDNConfig) -> None:
        self.coord = coord
        self.config = config
        self._flow_table: Dict[int, FlowEntry] = {}

    def program_flow(self, flow_id: int, entry: FlowEntry) -> None:
        if len(self._flow_table) >= self.config.flow_table_entries and (
            flow_id not in self._flow_table
        ):
            raise RuntimeError(
                f"switch {self.coord}: flow table full "
                f"({self.config.flow_table_entries} entries)"
            )
        self._flow_table[flow_id] = entry

    def lookup(self, flow_id: int) -> FlowEntry:
        try:
            return self._flow_table[flow_id]
        except KeyError:
            raise KeyError(f"switch {self.coord}: no flow {flow_id}") from None

    @property
    def flows_used(self) -> int:
        return len(self._flow_table)


class Mesh:
    """A ``cols x rows`` mesh of switches with attached local units."""

    def __init__(self, cols: int, rows: int, config: RDNConfig = RDNConfig()) -> None:
        if cols < 1 or rows < 1:
            raise ValueError(f"mesh dims must be >= 1, got ({cols}, {rows})")
        self.cols = cols
        self.rows = rows
        self.config = config
        self.switches = {
            (x, y): Switch((x, y), config) for x in range(cols) for y in range(rows)
        }
        self._next_flow_id: Dict[Tuple[int, int], int] = {
            coord: 0 for coord in self.switches
        }

    def in_bounds(self, coord: Tuple[int, int]) -> bool:
        x, y = coord
        return 0 <= x < self.cols and 0 <= y < self.rows

    # ------------------------------------------------------------------
    # Dimension-order (dynamic) routing
    # ------------------------------------------------------------------
    @staticmethod
    def dimension_order_path(
        src: Tuple[int, int], dst: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        """X-then-Y route, inclusive of both endpoints."""
        path = [src]
        x, y = src
        while x != dst[0]:
            x += 1 if dst[0] > x else -1
            path.append((x, y))
        while y != dst[1]:
            y += 1 if dst[1] > y else -1
            path.append((x, y))
        return path

    def route_dynamic(self, packet: Packet, src: Tuple[int, int], dst: Tuple[int, int]) -> int:
        """Route one packet dimension-order; returns latency in cycles."""
        for coord in (src, dst):
            if not self.in_bounds(coord):
                raise ValueError(f"coordinate {coord} outside {self.cols}x{self.rows} mesh")
        path = self.dimension_order_path(src, dst)
        packet.hops += len(path) - 1
        return (len(path) - 1) * self.config.hop_latency_cycles

    # ------------------------------------------------------------------
    # Static flow routing with per-switch relabelling
    # ------------------------------------------------------------------
    def _alloc_flow_id(self, coord: Tuple[int, int]) -> int:
        flow_id = self._next_flow_id[coord]
        if flow_id >= self.config.flow_table_entries:
            raise RuntimeError(f"switch {coord}: out of flow IDs")
        self._next_flow_id[coord] = flow_id + 1
        return flow_id

    def program_route(
        self, src: Tuple[int, int], destinations: Sequence[Tuple[int, int]]
    ) -> int:
        """Program a (possibly multicast) static flow from src to dests.

        Builds the union of dimension-order paths as a multicast tree and
        programs one flow entry per tree switch, allocating flow IDs
        *locally* at each switch (MPLS-like). Returns the flow ID to stamp
        on packets injected at ``src``.
        """
        if not destinations:
            raise ValueError("need at least one destination")
        for coord in list(destinations) + [src]:
            if not self.in_bounds(coord):
                raise ValueError(f"coordinate {coord} outside mesh")

        # children[switch] = set of (port, child_switch) in the tree.
        children: Dict[Tuple[int, int], Dict[Port, Tuple[int, int]]] = {}
        terminal: Dict[Tuple[int, int], bool] = {}
        for dst in destinations:
            path = self.dimension_order_path(src, dst)
            for here, nxt in zip(path, path[1:]):
                port = _port_between(here, nxt)
                children.setdefault(here, {})[port] = nxt
            terminal[dst] = True

        # Allocate local flow IDs bottom-up and program entries.
        flow_ids: Dict[Tuple[int, int], int] = {}

        def assign(coord: Tuple[int, int]) -> int:
            if coord in flow_ids:
                return flow_ids[coord]
            flow_id = self._alloc_flow_id(coord)
            flow_ids[coord] = flow_id
            out_ports: List[Port] = []
            next_ids: List[int] = []
            for port, child in children.get(coord, {}).items():
                out_ports.append(port)
                next_ids.append(assign(child))
            if terminal.get(coord):
                out_ports.append(Port.LOCAL)
                next_ids.append(flow_id)
            if not out_ports:  # src == a destination with no tree below
                out_ports.append(Port.LOCAL)
                next_ids.append(flow_id)
            self.switches[coord].program_flow(
                flow_id, FlowEntry(tuple(out_ports), tuple(next_ids))
            )
            return flow_id

        return assign(src)

    def send_flow(
        self, packet: Packet, src: Tuple[int, int], flow_id: int
    ) -> List[Tuple[Tuple[int, int], Packet]]:
        """Forward a packet along a programmed flow.

        Returns the list of ``(destination_coord, packet_copy)`` deliveries
        (several for multicast). Each delivered packet records its hop
        count; latency is ``hops * hop_latency_cycles``.
        """
        deliveries: List[Tuple[Tuple[int, int], Packet]] = []

        def forward(coord: Tuple[int, int], fid: int, hops: int) -> None:
            entry = self.switches[coord].lookup(fid)
            for port, next_fid in zip(entry.out_ports, entry.next_flow_ids):
                if port is Port.LOCAL:
                    delivered = Packet(
                        payload=packet.payload,
                        flow_id=next_fid,
                        sequence_id=packet.sequence_id,
                        hops=hops,
                    )
                    deliveries.append((coord, delivered))
                else:
                    step = port.step
                    nxt = (coord[0] + step[0], coord[1] + step[1])
                    forward(nxt, next_fid, hops + 1)

        forward(src, flow_id, 0)
        return deliveries


def _port_between(a: Tuple[int, int], b: Tuple[int, int]) -> Port:
    delta = (b[0] - a[0], b[1] - a[1])
    for port in Port:
        if port.step == delta:
            return port
    raise ValueError(f"{a} and {b} are not mesh neighbours")


class ReorderBuffer:
    """Sequence-ID reordering for many-to-one streams.

    Producers stamp packets with software-programmed sequence IDs encoding
    the logical vector order; the consumer releases packets in-order as the
    next expected ID arrives.
    """

    def __init__(self) -> None:
        self._pending: Dict[int, Packet] = {}
        self._next = 0

    def push(self, packet: Packet) -> List[Packet]:
        """Accept a packet; return the (possibly empty) in-order release."""
        if packet.sequence_id is None:
            raise ValueError("reorder buffer requires a sequence_id")
        if packet.sequence_id < self._next or packet.sequence_id in self._pending:
            raise ValueError(f"duplicate sequence id {packet.sequence_id}")
        self._pending[packet.sequence_id] = packet
        released = []
        while self._next in self._pending:
            released.append(self._pending.pop(self._next))
            self._next += 1
        return released

    @property
    def pending(self) -> int:
        return len(self._pending)
