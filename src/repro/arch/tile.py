"""RDU tile: the checkerboard of PCUs, PMUs, switches, and AGCUs.

The tile (paper Figure 6) is the unit of spatial program mapping: the
placer allocates its PCUs and PMUs to pipeline stages and stage buffers.
This module provides the physical inventory — unit coordinates, the switch
mesh, and resource accounting used by :mod:`repro.dataflow.placement`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import TileConfig
from repro.arch.pcu import PCU
from repro.arch.pmu import PMU
from repro.arch.rdn import Mesh


class UnitKind(enum.Enum):
    PCU = "pcu"
    PMU = "pmu"


@dataclass
class UnitSlot:
    """One grid position holding a PCU or PMU and its allocation state."""

    kind: UnitKind
    coord: Tuple[int, int]
    allocated_to: Optional[str] = None

    @property
    def free(self) -> bool:
        return self.allocated_to is None


class RDUTile:
    """A tile: ``rows x cols`` PCU/PMU pairs on a switch mesh.

    Units are arranged in a checkerboard (PCU and PMU alternating), with
    each unit attached to the local port of the switch at its coordinate.
    """

    def __init__(self, config: TileConfig = TileConfig(), name: str = "tile0") -> None:
        self.config = config
        self.name = name
        # The mesh spans both checkerboard colours: 2*cols switches wide.
        self.mesh = Mesh(cols=config.cols * 2, rows=config.rows, config=config.rdn)
        self.slots: Dict[Tuple[int, int], UnitSlot] = {}
        for y in range(config.rows):
            for x in range(config.cols * 2):
                kind = UnitKind.PCU if (x + y) % 2 == 0 else UnitKind.PMU
                self.slots[(x, y)] = UnitSlot(kind=kind, coord=(x, y))
        self._pcu_model = PCU(config.pcu)
        self._pmu_model = PMU(config.pmu)

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def units(self, kind: UnitKind) -> List[UnitSlot]:
        return [s for s in self.slots.values() if s.kind == kind]

    def free_units(self, kind: UnitKind) -> List[UnitSlot]:
        return [s for s in self.units(kind) if s.free]

    @property
    def num_pcus(self) -> int:
        return len(self.units(UnitKind.PCU))

    @property
    def num_pmus(self) -> int:
        return len(self.units(UnitKind.PMU))

    @property
    def free_pcus(self) -> int:
        return len(self.free_units(UnitKind.PCU))

    @property
    def free_pmus(self) -> int:
        return len(self.free_units(UnitKind.PMU))

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, kind: UnitKind, count: int, owner: str) -> List[UnitSlot]:
        """Claim ``count`` free units of ``kind`` for ``owner``.

        Units are taken in row-major order, which keeps each stage's units
        physically clustered (shorter RDN routes).
        """
        if count < 0:
            raise ValueError(f"negative allocation: {count}")
        free = self.free_units(kind)
        if count > len(free):
            raise RuntimeError(
                f"{self.name}: cannot allocate {count} {kind.value}s "
                f"({len(free)} free of {len(self.units(kind))})"
            )
        taken = sorted(free, key=lambda s: (s.coord[1], s.coord[0]))[:count]
        for slot in taken:
            slot.allocated_to = owner
        return taken

    def release(self, owner: str) -> int:
        """Free every unit held by ``owner``; returns the count released."""
        released = 0
        for slot in self.slots.values():
            if slot.allocated_to == owner:
                slot.allocated_to = None
                released += 1
        return released

    def utilization(self, kind: UnitKind) -> float:
        total = self.units(kind)
        if not total:
            return 0.0
        return sum(1 for s in total if not s.free) / len(total)

    # ------------------------------------------------------------------
    # Capability views
    # ------------------------------------------------------------------
    @property
    def pcu_model(self) -> PCU:
        """Timing/functional model shared by all this tile's PCUs."""
        return self._pcu_model

    @property
    def pmu_model(self) -> PMU:
        """Timing/functional model shared by all this tile's PMUs."""
        return self._pmu_model

    @property
    def sram_bytes(self) -> int:
        return self.num_pmus * self.config.pmu.capacity_bytes

    @property
    def peak_flops(self) -> float:
        return self.num_pcus * self.config.pcu.peak_flops
