"""Pattern Memory Unit: banked scratchpad with programmable addressing.

Functional model of the PMU features the paper calls out (Section IV-B):

- **Banked scratchpad** with software-programmable bank bits: the bank of a
  word address is extracted from a programmable bit position, letting
  software map multi-buffer layouts conflict-free (paper Section VII).
- **Bank-conflict accounting**: a vector of addresses issued in one cycle
  serializes on the most-loaded bank.
- **Diagonal striping** for transpose: a 2-D tile written in a diagonally
  striped layout can be read back in both row-major and column-major order
  at full bandwidth — this is how the SN40L fuses `transpose` into an
  access pattern instead of a kernel.
- **Address predication**: each PMU holds a valid-address range; addresses
  outside it are dropped, implementing tensor interleaving across PMUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PMUConfig


@dataclass
class BankAccessStats:
    """Conflict accounting for a stream of vector accesses."""

    vectors: int = 0
    cycles: int = 0

    @property
    def conflict_cycles(self) -> int:
        """Extra cycles beyond the conflict-free ideal (1/vector)."""
        return self.cycles - self.vectors

    @property
    def conflict_rate(self) -> float:
        return self.conflict_cycles / self.cycles if self.cycles else 0.0


class PMU:
    """One Pattern Memory Unit: words of 4 bytes across ``num_banks`` banks."""

    WORD_BYTES = 4

    def __init__(self, config: PMUConfig = PMUConfig()) -> None:
        self.config = config
        self.num_words = config.capacity_bytes // self.WORD_BYTES
        self._data = np.zeros(self.num_words, dtype=np.float32)
        #: Bank index = (word_address >> bank_shift) & (num_banks - 1).
        #: Default shift of 0 interleaves consecutive words across banks.
        self.bank_shift = 0
        #: Valid-address range for predication, or None to accept all.
        self.valid_range: Optional[Tuple[int, int]] = None
        self.read_stats = BankAccessStats()
        self.write_stats = BankAccessStats()

    # ------------------------------------------------------------------
    # Banking
    # ------------------------------------------------------------------
    def set_bank_bits(self, shift: int) -> None:
        """Program the bank-bit position used to select banks."""
        if shift < 0:
            raise ValueError(f"bank shift must be >= 0, got {shift}")
        self.bank_shift = shift

    def bank_of(self, address: int) -> int:
        return (address >> self.bank_shift) % self.config.num_banks

    def _access_cycles(self, addresses: np.ndarray) -> int:
        """Cycles to service one vector of addresses: banks serialize."""
        if addresses.size == 0:
            return 0
        banks = (addresses >> self.bank_shift) % self.config.num_banks
        _, counts = np.unique(banks, return_counts=True)
        return int(counts.max())

    # ------------------------------------------------------------------
    # Predicated scatter/gather
    # ------------------------------------------------------------------
    def set_valid_range(self, start: int, end: int) -> None:
        """Program the predication range ``[start, end)``.

        Addresses outside the range are silently dropped — this is how one
        logical tensor is interleaved across several PMUs (each PMU keeps
        only its slice).
        """
        if not 0 <= start <= end <= self.num_words:
            raise ValueError(f"bad valid range [{start}, {end})")
        self.valid_range = (start, end)

    def _predicate(self, addresses: np.ndarray) -> np.ndarray:
        if self.valid_range is None:
            mask = (addresses >= 0) & (addresses < self.num_words)
        else:
            start, end = self.valid_range
            mask = (addresses >= start) & (addresses < end)
        return mask

    def write(self, addresses: Sequence[int], values: Sequence[float]) -> int:
        """Scatter ``values`` to word ``addresses``; returns cycles taken.

        Predicated-out addresses are dropped (their values ignored).
        """
        addr = np.asarray(addresses, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float32)
        if addr.shape != vals.shape:
            raise ValueError(f"{addr.shape} addresses vs {vals.shape} values")
        mask = self._predicate(addr)
        self._data[addr[mask]] = vals[mask]
        cycles = 0
        lanes = max(1, self.config.num_banks)
        for start in range(0, addr.size, lanes):
            cycles += self._access_cycles(addr[start : start + lanes][mask[start : start + lanes]])
        self.write_stats.vectors += math.ceil(addr.size / lanes)
        self.write_stats.cycles += cycles
        return cycles

    def read(self, addresses: Sequence[int]) -> Tuple[np.ndarray, int]:
        """Gather from word ``addresses``; predicated-out slots read 0."""
        addr = np.asarray(addresses, dtype=np.int64)
        mask = self._predicate(addr)
        out = np.zeros(addr.shape, dtype=np.float32)
        out[mask] = self._data[addr[mask]]
        cycles = 0
        lanes = max(1, self.config.num_banks)
        for start in range(0, addr.size, lanes):
            cycles += self._access_cycles(addr[start : start + lanes][mask[start : start + lanes]])
        self.read_stats.vectors += math.ceil(addr.size / lanes)
        self.read_stats.cycles += cycles
        return out, cycles


class DiagonalTileBuffer:
    """A 2-D tile stored diagonally striped across PMU banks.

    Element ``(r, c)`` of a ``T x T`` tile lives at word address
    ``r * T + c`` but in bank ``(r + c) mod num_banks``. With ``T`` a
    multiple of the bank count, both a row ``(r, :)`` and a column
    ``(:, c)`` touch every bank exactly ``T / num_banks`` times — so the
    tile can be read in regular *and* transposed order at full bandwidth.
    This implements the paper's "special diagonally striped format".
    """

    def __init__(self, tile_dim: int, config: PMUConfig = PMUConfig()) -> None:
        if tile_dim <= 0:
            raise ValueError(f"tile_dim must be positive, got {tile_dim}")
        self.tile_dim = tile_dim
        self.config = config
        # When tile_dim < num_banks the diagonal walk loads banks unevenly
        # (bank b is hit once per row whose diagonal crosses it), so size
        # slots for the worst case of one hit per row.
        slots = max(tile_dim, math.ceil(tile_dim * tile_dim / config.num_banks))
        self._banks = np.zeros((config.num_banks, slots), dtype=np.float32)
        self._slot = np.zeros(config.num_banks, dtype=np.int64)
        # Placement map: (r, c) -> (bank, slot), filled on write.
        self._where = {}

    def bank_of(self, row: int, col: int) -> int:
        return (row + col) % self.config.num_banks

    def write_tile(self, tile: np.ndarray) -> int:
        """Write a full tile row-by-row; returns cycles (conflict-aware)."""
        if tile.shape != (self.tile_dim, self.tile_dim):
            raise ValueError(f"expected {(self.tile_dim,) * 2}, got {tile.shape}")
        cycles = 0
        for r in range(self.tile_dim):
            banks = [(r + c) % self.config.num_banks for c in range(self.tile_dim)]
            for c in range(self.tile_dim):
                bank = banks[c]
                slot = self._slot[bank]
                self._banks[bank, slot] = tile[r, c]
                self._where[(r, c)] = (bank, int(slot))
                self._slot[bank] += 1
            cycles += self._row_cycles(banks)
        return cycles

    def _row_cycles(self, banks: Sequence[int]) -> int:
        counts = np.bincount(np.asarray(banks), minlength=self.config.num_banks)
        return int(counts.max()) if len(banks) else 0

    def read_row(self, row: int) -> Tuple[np.ndarray, int]:
        """Read one row in regular order; cycles reflect bank conflicts."""
        banks = [(row + c) % self.config.num_banks for c in range(self.tile_dim)]
        values = np.array(
            [self._banks[self._where[(row, c)]] for c in range(self.tile_dim)],
            dtype=np.float32,
        )
        return values, self._row_cycles(banks)

    def read_col(self, col: int) -> Tuple[np.ndarray, int]:
        """Read one column (transposed access) — also conflict-free."""
        banks = [(r + col) % self.config.num_banks for r in range(self.tile_dim)]
        values = np.array(
            [self._banks[self._where[(r, col)]] for r in range(self.tile_dim)],
            dtype=np.float32,
        )
        return values, self._row_cycles(banks)

    def read_transposed(self) -> Tuple[np.ndarray, int]:
        """Read the whole tile in transposed order."""
        cycles = 0
        cols = []
        for c in range(self.tile_dim):
            values, cyc = self.read_col(c)
            cols.append(values)
            cycles += cyc
        return np.stack(cols, axis=0), cycles


def row_major_conflict_cycles(tile_dim: int, num_banks: int) -> Tuple[int, int]:
    """Conflict cycles of a *naive* row-major layout, for comparison.

    Returns (row_read_cycles, col_read_cycles) for one row/column read.
    In row-major layout with word interleaving, a row read is conflict-free
    but a column read hits ``gcd``-determined conflicts — with ``tile_dim``
    a multiple of ``num_banks``, every column element lands in the *same*
    bank, serializing the read completely.
    """
    row_banks = np.arange(tile_dim) % num_banks
    col_banks = (np.arange(tile_dim) * tile_dim) % num_banks
    row_cycles = int(np.bincount(row_banks, minlength=num_banks).max())
    col_cycles = int(np.bincount(col_banks, minlength=num_banks).max())
    return row_cycles, col_cycles
