"""The PCU tail unit: transcendentals, rounding, RNG, format conversion.

Paper Section IV-A: "The tail section supports transcendental functions,
random number generation, stochastic rounding, and format conversions. A
tail operation can be fused and pipelined with compute in the body
section."

Functional models of each capability:

- **Transcendentals** via piecewise-linear lookup tables, the standard
  hardware technique: a 256-entry LUT with linear interpolation gives
  ~1e-3 relative error over the useful range — enough for BF16 outputs.
- **Stochastic rounding** FP32 -> BF16: rounds up with probability equal
  to the truncated fraction, making the rounding *unbiased* in
  expectation (the property that matters for training, asserted by
  tests).
- **RNG**: a xorshift32 generator, the class of cheap hardware PRNG the
  tail uses to drive stochastic rounding.
- **Format conversion**: FP32 <-> BF16 truncation/extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np


# ----------------------------------------------------------------------
# Format conversion
# ----------------------------------------------------------------------


def fp32_to_bf16_trunc(values: np.ndarray) -> np.ndarray:
    """Round-to-zero BF16 conversion: drop the low 16 mantissa bits."""
    bits = np.asarray(values, dtype=np.float32).view(np.uint32)
    return (bits & np.uint32(0xFFFF0000)).view(np.float32)


def bf16_ulp(values: np.ndarray) -> np.ndarray:
    """The BF16 unit-in-last-place at each value's magnitude."""
    truncated = fp32_to_bf16_trunc(values)
    bits = truncated.view(np.uint32)
    next_up = ((bits & np.uint32(0xFFFF0000)) + np.uint32(0x00010000)).view(
        np.float32
    )
    return np.abs(next_up - truncated)


# ----------------------------------------------------------------------
# Hardware PRNG
# ----------------------------------------------------------------------


class Xorshift32:
    """The classic 32-bit xorshift generator (cheap hardware PRNG)."""

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self._state = seed & 0xFFFFFFFF

    def next_u32(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x

    def uniform(self, count: int) -> np.ndarray:
        """``count`` floats uniform in [0, 1)."""
        return np.array(
            [self.next_u32() / 2**32 for _ in range(count)], dtype=np.float64
        )


# ----------------------------------------------------------------------
# Stochastic rounding
# ----------------------------------------------------------------------


def stochastic_round_bf16(values: np.ndarray, rng: Xorshift32) -> np.ndarray:
    """Stochastically round FP32 values to the BF16 grid.

    A value ``x`` between adjacent BF16 values ``lo`` and ``hi`` rounds to
    ``hi`` with probability ``(x - lo) / (hi - lo)``, so
    ``E[round(x)] == x`` — the unbiasedness property that keeps low-
    precision training from drifting.
    """
    x = np.asarray(values, dtype=np.float32)
    lo = fp32_to_bf16_trunc(np.abs(x))
    ulp = bf16_ulp(x)
    fraction = np.where(ulp > 0, (np.abs(x) - lo) / np.where(ulp > 0, ulp, 1), 0.0)
    draws = rng.uniform(x.size).reshape(x.shape)
    rounded_mag = np.where(draws < fraction, lo + ulp, lo)
    return np.copysign(rounded_mag, x).astype(np.float32)


# ----------------------------------------------------------------------
# LUT-based transcendentals
# ----------------------------------------------------------------------


@dataclass
class TranscendentalLUT:
    """A piecewise-linear lookup table over a fixed input range.

    ``geometric`` grids space entries by ratio instead of difference —
    what hardware does for functions like rsqrt by indexing on the
    floating-point exponent, keeping *relative* error flat across
    magnitudes.
    """

    fn_name: str
    lo: float
    hi: float
    entries: int = 256
    geometric: bool = False

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError(f"bad LUT range [{self.lo}, {self.hi}]")
        if self.entries < 2:
            raise ValueError("a LUT needs at least 2 entries")
        if self.geometric and self.lo <= 0:
            raise ValueError("geometric grids need a positive range")
        fn = _TRANSCENDENTALS[self.fn_name]
        if self.geometric:
            self._x = np.geomspace(self.lo, self.hi, self.entries)
        else:
            self._x = np.linspace(self.lo, self.hi, self.entries)
        self._y = fn(self._x)

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Evaluate with linear interpolation; inputs clamp to the range."""
        x = np.clip(np.asarray(values, dtype=np.float64), self.lo, self.hi)
        return np.interp(x, self._x, self._y)

    def max_error(self, samples: int = 4096) -> float:
        """Worst error against the exact function.

        Relative where the function is away from zero, absolute near its
        zeros (relative error at a zero crossing is meaningless).
        """
        xs = np.linspace(self.lo, self.hi, samples)
        exact = _TRANSCENDENTALS[self.fn_name](xs)
        approx = self.evaluate(xs)
        scale = max(float(np.max(np.abs(exact))), 1e-12)
        denom = np.maximum(np.abs(exact), 1e-2 * scale)
        return float(np.max(np.abs(approx - exact) / denom))


_TRANSCENDENTALS = {
    "exp": np.exp,
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3))),
    "rsqrt": lambda x: 1.0 / np.sqrt(np.maximum(x, 1e-30)),
}


class TailUnit:
    """One PCU tail: fused epilogue over a vector per cycle.

    Chains a transcendental, an optional stochastic BF16 conversion, and
    reports the cycle cost (one vector per cycle — the tail is fully
    pipelined with the body, per the paper).
    """

    DEFAULT_RANGES = {
        "exp": (-8.0, 8.0),
        "tanh": (-4.0, 4.0),
        "sigmoid": (-8.0, 8.0),
        "gelu": (-6.0, 6.0),
        "rsqrt": (0.0625, 16.0),
    }

    def __init__(self, lanes: int = 32, seed: int = 0x2545F491) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self.rng = Xorshift32(seed)
        self._luts = {
            name: TranscendentalLUT(name, lo, hi, geometric=(name == "rsqrt"))
            for name, (lo, hi) in self.DEFAULT_RANGES.items()
        }

    def supported_functions(self) -> Tuple[str, ...]:
        return tuple(sorted(self._luts))

    def apply(
        self,
        values: np.ndarray,
        fn_name: str,
        stochastic_bf16: bool = False,
    ) -> Tuple[np.ndarray, int]:
        """Run the tail over a tensor; returns (result, cycles)."""
        try:
            lut = self._luts[fn_name]
        except KeyError:
            raise ValueError(
                f"tail has no function {fn_name!r}; "
                f"supported: {self.supported_functions()}"
            ) from None
        result = lut.evaluate(values).astype(np.float32)
        if stochastic_bf16:
            result = stochastic_round_bf16(result, self.rng)
        cycles = math.ceil(np.asarray(values).size / self.lanes)
        return result, cycles
