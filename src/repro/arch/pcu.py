"""Pattern Compute Unit: functional and timing model (paper Section IV-A).

The PCU datapath has a header (input dataflow), a body configurable as an
output-stationary systolic array or a pipelined SIMD core, and a tail for
transcendentals/rounding/format conversion. This module provides:

- a *functional* model (`systolic_matmul`, `simd_map`) that computes real
  results tile-by-tile the way the hardware would, so tests can check both
  numerics and cycle counts,
- a *timing* model (`gemm_cycles`, `simd_cycles`) used by the placer and
  the pipeline analyzer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.arch.config import PCUConfig


@dataclass(frozen=True)
class SystolicTiming:
    """Cycle breakdown of a tiled systolic GEMM on one PCU."""

    tiles: int
    cycles_per_tile: int
    fill_drain_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.tiles * self.cycles_per_tile + self.fill_drain_cycles


class PCU:
    """One Pattern Compute Unit."""

    def __init__(self, config: PCUConfig = PCUConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def gemm_cycles(self, m: int, k: int, n: int) -> SystolicTiming:
        """Cycles for C(m,n) = A(m,k) @ B(k,n) on the systolic body.

        The body is a ``lanes x stages`` output-stationary MAC grid: each
        tile of C sized ``(lanes, stages)`` accumulates over ``k`` cycles
        while operands stream through the broadcast buffers. The pipeline
        fills/drains once per kernel (tiles are back-to-back).
        """
        if min(m, k, n) < 1:
            raise ValueError(f"invalid GEMM dims ({m}, {k}, {n})")
        cfg = self.config
        tiles = math.ceil(m / cfg.lanes) * math.ceil(n / cfg.stages)
        return SystolicTiming(
            tiles=tiles,
            cycles_per_tile=k,
            fill_drain_cycles=cfg.lanes + cfg.stages,
        )

    def gemm_time_s(self, m: int, k: int, n: int) -> float:
        """Wall time of the tiled GEMM at the configured clock."""
        timing = self.gemm_cycles(m, k, n)
        return timing.total_cycles / (self.config.clock_ghz * 1e9)

    def simd_cycles(self, num_elements: int, ops_per_element: int = 1) -> int:
        """Cycles for a fully pipelined elementwise map.

        Each SIMD stage applies one operation to a ``lanes``-wide vector
        per cycle; chains up to ``stages`` long run fused at one vector
        per cycle, longer chains take multiple passes.
        """
        if num_elements < 0 or ops_per_element < 0:
            raise ValueError("num_elements and ops_per_element must be >= 0")
        cfg = self.config
        passes = max(1, math.ceil(ops_per_element / cfg.stages))
        vectors = math.ceil(num_elements / cfg.lanes)
        return passes * vectors + cfg.stages  # + pipeline fill

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    def systolic_matmul(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, SystolicTiming]:
        """Compute ``a @ b`` tile-by-tile, returning result and timing.

        The tiling mirrors the hardware: output-stationary tiles of shape
        ``(lanes, stages)``, accumulated over the shared k dimension. The
        result is numerically identical to ``a @ b`` in float32.
        """
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
        m, k = a.shape
        _, n = b.shape
        cfg = self.config
        out = np.zeros((m, n), dtype=np.float32)
        a32 = a.astype(np.float32)
        b32 = b.astype(np.float32)
        for row in range(0, m, cfg.lanes):
            for col in range(0, n, cfg.stages):
                tile_a = a32[row : row + cfg.lanes, :]
                tile_b = b32[:, col : col + cfg.stages]
                # Output-stationary accumulation, one k-slice per cycle.
                acc = np.zeros((tile_a.shape[0], tile_b.shape[1]), dtype=np.float32)
                for kk in range(k):
                    acc += np.outer(tile_a[:, kk], tile_b[kk, :])
                out[row : row + cfg.lanes, col : col + cfg.stages] = acc
        return out, self.gemm_cycles(m, k, n)

    def simd_map(
        self, values: np.ndarray, fn: Callable[[np.ndarray], np.ndarray]
    ) -> Tuple[np.ndarray, int]:
        """Apply ``fn`` lane-by-lane, returning result and cycle count."""
        flat = values.reshape(-1)
        lanes = self.config.lanes
        chunks = []
        for start in range(0, flat.size, lanes):
            chunks.append(fn(flat[start : start + lanes]))
        result = np.concatenate(chunks).reshape(values.shape) if chunks else flat
        return result, self.simd_cycles(flat.size)

    def cross_lane_reduce(self, values: np.ndarray) -> Tuple[float, int]:
        """Reduce a vector through the cross-lane reduction tree.

        The tree reduces ``lanes`` values in ``log2(lanes)`` cycles.
        """
        flat = values.reshape(-1).astype(np.float64)
        lanes = self.config.lanes
        total = 0.0
        cycles = 0
        for start in range(0, flat.size, lanes):
            chunk = flat[start : start + lanes]
            total += float(np.sum(chunk))
            cycles += max(1, int(math.ceil(math.log2(max(2, chunk.size)))))
        return total, cycles
