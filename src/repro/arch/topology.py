"""Inter-socket P2P topologies and collective-time modeling.

The SN40L's peer-to-peer protocol (paper Section IV-D) provides the
primitives "to build collective communication primitives between RDUs such
as AllReduce". How fast a collective runs depends on the socket topology;
this module models the common ones and times the standard algorithms:

- **RING** — ring all-reduce: ``2(p-1)`` steps of ``bytes/p``; bandwidth
  optimal, latency grows linearly with sockets,
- **FULLY_CONNECTED** — direct all-to-all reduce-scatter + all-gather:
  2 steps, each socket moving ``bytes * (p-1)/p`` across ``p-1`` links
  concurrently,
- **MESH_2D** — two ring phases over the rows and columns of a 2D
  arrangement (how an 8-socket node wires as 2x4).

`best_topology` answers the co-design question: which fabric minimizes a
given collective at a given message size — latency-dominated small decode
messages prefer fewer steps, bandwidth-dominated training gradients are
happy on a ring.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.agcu import P2PLink


class Topology(enum.Enum):
    RING = "ring"
    FULLY_CONNECTED = "fully-connected"
    MESH_2D = "mesh-2d"


@dataclass(frozen=True)
class SocketFabric:
    """``sockets`` RDUs joined by identical P2P links in one topology."""

    sockets: int
    link: P2PLink
    topology: Topology = Topology.RING

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {self.sockets}")
        if self.topology is Topology.MESH_2D and not _has_2d_factoring(self.sockets):
            raise ValueError(
                f"{self.sockets} sockets cannot form a 2D mesh (need a "
                f"non-trivial factoring)"
            )

    # ------------------------------------------------------------------
    def allreduce_time(self, num_bytes: float) -> float:
        """All-reduce of ``num_bytes`` (each socket holds the full tensor)."""
        if num_bytes < 0:
            raise ValueError(f"negative message size: {num_bytes}")
        p = self.sockets
        if p == 1 or num_bytes == 0:
            return 0.0
        if self.topology is Topology.RING:
            steps = 2 * (p - 1)
            return steps * self.link.transfer_time(num_bytes / p)
        if self.topology is Topology.FULLY_CONNECTED:
            # Reduce-scatter then all-gather, each a single step where
            # every socket exchanges bytes/p with each of (p-1) peers over
            # dedicated links concurrently.
            per_step = self.link.transfer_time(num_bytes / p)
            return 2 * per_step
        rows, cols = _factor_2d(p)
        row_fabric = SocketFabric(cols, self.link, Topology.RING)
        col_fabric = SocketFabric(rows, self.link, Topology.RING)
        # Reduce within rows, then across columns on 1/cols of the data.
        return row_fabric.allreduce_time(num_bytes) + col_fabric.allreduce_time(
            num_bytes / cols
        )

    def allgather_time(self, num_bytes: float) -> float:
        """All-gather where each socket contributes ``num_bytes / p``."""
        if num_bytes < 0:
            raise ValueError(f"negative message size: {num_bytes}")
        p = self.sockets
        if p == 1 or num_bytes == 0:
            return 0.0
        if self.topology is Topology.RING:
            return (p - 1) * self.link.transfer_time(num_bytes / p)
        if self.topology is Topology.FULLY_CONNECTED:
            return self.link.transfer_time(num_bytes / p)
        rows, cols = _factor_2d(p)
        row = SocketFabric(cols, self.link, Topology.RING)
        col = SocketFabric(rows, self.link, Topology.RING)
        return row.allgather_time(num_bytes) + col.allgather_time(num_bytes / cols)

    @property
    def links_per_socket(self) -> int:
        """Physical port count the topology demands of each socket."""
        if self.sockets == 1:
            return 0
        if self.topology is Topology.RING:
            return 2
        if self.topology is Topology.FULLY_CONNECTED:
            return self.sockets - 1
        rows, cols = _factor_2d(self.sockets)
        ports = 0
        if cols > 1:
            ports += 2
        if rows > 1:
            ports += 2
        return ports


def _has_2d_factoring(p: int) -> bool:
    return _factor_2d(p) != (1, p) or p == 1


def _factor_2d(p: int) -> Tuple[int, int]:
    """The most-square (rows, cols) factoring of ``p``."""
    best = (1, p)
    for rows in range(1, int(math.isqrt(p)) + 1):
        if p % rows == 0:
            best = (rows, p // rows)
    return best


def best_topology(
    sockets: int, link: P2PLink, num_bytes: float
) -> Dict[Topology, float]:
    """All-reduce time per topology at one message size (sorted fastest
    first). Useful for the latency-vs-port-count co-design trade."""
    times = {}
    for topology in Topology:
        try:
            fabric = SocketFabric(sockets, link, topology)
        except ValueError:
            continue
        times[topology] = fabric.allreduce_time(num_bytes)
    return dict(sorted(times.items(), key=lambda kv: kv[1]))
