"""RDU socket and node: stateful devices with their memory systems.

An :class:`RDUSocket` is one SN40L package (two dies of tiles, HBM, DDR).
An :class:`RDUNode` is the paper's deployment unit: eight sockets and a
host, with the DDR->HBM copy path that makes CoE model switching fast.

These are the objects the CoE runtime (:mod:`repro.coe.runtime`) manages
memory on and the serving model (:mod:`repro.coe.serving`) times against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.config import NodeConfig, SocketConfig, sn40l_node
from repro.arch.tile import RDUTile
from repro.memory.tiers import MemorySystem, MemoryTier, TierKind
from repro.memory.transfer import TransferEngine
from repro.arch.config import MemoryTierSpec
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration


class RDUSocket:
    """One SN40L socket: tiles plus an HBM/DDR/SRAM memory system."""

    def __init__(self, config: SocketConfig = SocketConfig(), name: str = "rdu0") -> None:
        self.config = config
        self.name = name
        self.tiles: List[RDUTile] = [
            RDUTile(config.tile, name=f"{name}.tile{i}") for i in range(config.num_tiles)
        ]
        sram_spec = MemoryTierSpec(
            name="SRAM",
            capacity_bytes=config.sram_capacity_bytes,
            bandwidth=config.sram_bandwidth,
            latency_s=10e-9,
        )
        self.memory = MemorySystem(
            tiers={
                TierKind.SRAM: MemoryTier(TierKind.SRAM, sram_spec),
                TierKind.HBM: MemoryTier(TierKind.HBM, config.hbm),
                TierKind.DDR: MemoryTier(TierKind.DDR, config.ddr),
            }
        )

    @property
    def num_pcus(self) -> int:
        return sum(t.num_pcus for t in self.tiles)

    @property
    def num_pmus(self) -> int:
        return sum(t.num_pmus for t in self.tiles)

    @property
    def peak_flops(self) -> float:
        return self.config.peak_flops


class RDUNode:
    """The 8-socket SN40L node (paper Section V).

    The node-level memory view pools the per-socket budgets: a TP8 model's
    weights are sharded across all eight sockets, so capacity questions
    ("how many experts fit in HBM?") are naturally node-level. The
    DDR->HBM path bandwidth comes from calibration (the paper's ">1 TB/s").
    """

    def __init__(
        self,
        config: NodeConfig = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "sn40l-node",
    ) -> None:
        self.config = config or sn40l_node()
        self.calibration = calibration
        self.name = name
        self.sockets: List[RDUSocket] = [
            RDUSocket(self.config.socket, name=f"{name}.rdu{i}")
            for i in range(self.config.sockets)
        ]
        socket_cfg = self.config.socket
        hbm_spec = MemoryTierSpec(
            name="HBM",
            capacity_bytes=self.config.hbm_capacity_bytes,
            bandwidth=self.config.hbm_bandwidth,
            latency_s=socket_cfg.hbm.latency_s,
        )
        ddr_spec = MemoryTierSpec(
            name="DDR",
            capacity_bytes=self.config.ddr_capacity_bytes,
            bandwidth=self.config.ddr_to_hbm_bandwidth,
            latency_s=socket_cfg.ddr.latency_s,
        )
        self.memory = MemorySystem(
            tiers={
                TierKind.HBM: MemoryTier(TierKind.HBM, hbm_spec),
                TierKind.DDR: MemoryTier(TierKind.DDR, ddr_spec),
                TierKind.HOST: MemoryTier(TierKind.HOST, self.config.host_dram),
            }
        )
        # The node's DDR->HBM copy path is TLN-limited below raw DDR
        # aggregate; the paper reports "over 1 TB/s".
        self.memory.set_transfer_bandwidth(
            TierKind.DDR, TierKind.HBM, calibration.node_ddr_to_hbm_bandwidth
        )
        self.memory.set_transfer_bandwidth(
            TierKind.HBM, TierKind.DDR, calibration.node_ddr_to_hbm_bandwidth
        )
        self.dma = TransferEngine(self.memory)

    @property
    def num_sockets(self) -> int:
        return self.config.sockets

    @property
    def peak_flops(self) -> float:
        return self.config.peak_flops

    @property
    def hbm_bandwidth(self) -> float:
        return self.config.hbm_bandwidth

    def model_switch_time(self, weight_bytes: int) -> float:
        """Seconds to copy one expert's weights from DDR into HBM."""
        return self.memory.transfer_time(TierKind.DDR, TierKind.HBM, weight_bytes)
