"""Model compilation: graph -> fused kernels -> memory plan.

This is the reproduction's equivalent of the SN40L compiler pipeline:

1. a fusion policy partitions the operator graph into kernels
   (:mod:`repro.dataflow.fusion`),
2. the kernel schedule induces symbol lifetimes
   (:mod:`repro.memory.symbols`),
3. the static allocator places symbols in HBM with lifetime-based address
   reuse, spilling the lowest-bandwidth symbols to DDR when HBM is tight
   (:mod:`repro.memory.allocator`).

The result is a :class:`CompiledModel` a :class:`~repro.core.session.Session`
can execute (i.e. time) under either orchestration mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.config import SocketConfig
from repro.dataflow.fusion import (
    FusionPlan,
    conventional_fusion,
    streaming_fusion,
    unfused,
)
from repro.dataflow.graph import DataflowGraph
from repro.memory.allocator import MemoryPlan, plan_memory
from repro.memory.symbols import Symbol

_POLICIES = {
    "unfused": unfused,
    "conventional": conventional_fusion,
    "streaming": streaming_fusion,
}


@dataclass
class CompiledModel:
    """One compiled model binary: kernels plus its device memory plan.

    Like the paper's compiled artifacts, it knows ahead of time exactly how
    much HBM and DDR it needs (Section V-B) — the CoE runtime relies on
    this to link independently compiled experts at run time.
    """

    graph: DataflowGraph
    plan: FusionPlan
    memory: MemoryPlan
    sockets: int

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def num_kernels(self) -> int:
        return self.plan.num_kernels

    @property
    def hbm_bytes(self) -> int:
        from repro.memory.tiers import TierKind

        return self.memory.extent(TierKind.HBM)

    @property
    def ddr_bytes(self) -> int:
        from repro.memory.tiers import TierKind

        return self.memory.extent(TierKind.DDR)


def build_symbols(plan: FusionPlan) -> List[Symbol]:
    """Derive the symbol table from a fusion plan's kernel schedule.

    Each boundary tensor becomes one symbol whose uses are the schedule
    indices of kernels touching it. Weights are read-only. Tensors internal
    to a kernel never become symbols — they live in PMU SRAM.
    """
    uses: Dict[str, List[int]] = {}
    specs: Dict[str, object] = {}
    consumed = set()
    for kernel in plan.kernels:
        consumed.update(t.name for t in kernel.external_inputs)
    for idx, kernel in enumerate(plan.kernels):
        for tensor in list(kernel.external_inputs) + list(kernel.external_outputs):
            uses.setdefault(tensor.name, []).append(idx)
            specs[tensor.name] = tensor
    # Program-level outputs (produced but never consumed by any kernel —
    # e.g. the KV cache a prefill builds for the decode phase) must survive
    # to program exit: extend their live range to the last kernel.
    produced_only = {
        t.name
        for kernel in plan.kernels
        for t in kernel.external_outputs
        if t.name not in consumed
    }
    last_kernel = max(len(plan.kernels) - 1, 0)
    symbols = []
    for name, indices in uses.items():
        spec = specs[name]
        use_set = set(indices)
        if name in produced_only:
            use_set.add(last_kernel)
        if spec.is_weight:
            # Weights are persistent device state: they stay resident for
            # the whole program (and across invocations), so their live
            # range spans every kernel — no address reuse between layers.
            use_set |= {0, last_kernel}
        symbols.append(
            Symbol(
                name=name,
                size_bytes=spec.size_bytes,
                uses=tuple(sorted(use_set)),
                read_only=spec.is_weight,
                is_weight=spec.is_weight,
            )
        )
    return symbols


def compile_model(
    graph: DataflowGraph,
    socket: SocketConfig = SocketConfig(),
    sockets: int = 1,
    policy: str = "streaming",
) -> CompiledModel:
    """Compile a graph for ``sockets`` SN40L sockets under one policy.

    ``policy`` is one of ``"streaming"`` (spatial fusion, the SN40L way),
    ``"conventional"`` (GPU-style restricted fusion), or ``"unfused"``.
    """
    if sockets < 1:
        raise ValueError(f"sockets must be >= 1, got {sockets}")
    try:
        fuse = _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}"
        ) from None

    if policy == "streaming":
        plan = fuse(
            graph,
            pcu_budget=socket.num_pcus * sockets,
            pmu_budget_bytes=socket.sram_capacity_bytes * sockets,
        )
    else:
        plan = fuse(graph)

    symbols = build_symbols(plan)
    memory = plan_memory(
        symbols,
        hbm_capacity_bytes=socket.hbm.capacity_bytes * sockets,
        ddr_capacity_bytes=socket.ddr.capacity_bytes * sockets,
    )
    return CompiledModel(graph=graph, plan=plan, memory=memory, sockets=sockets)
