"""Execution sessions: run compiled models on an SN40L target.

A :class:`Session` owns an execution target (some number of SN40L sockets)
and times compiled models on it, accounting for:

- per-kernel execution (roofline + efficiency, pipelined when fused),
- kernel launch orchestration (software vs hardware),
- extra DDR traffic for symbols the allocator spilled out of HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import SocketConfig
from repro.core.compile import CompiledModel
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.kernel_cost import (
    ExecutionTarget,
    Orchestration,
    PlanCost,
    cost_plan,
)


@dataclass
class RunResult:
    """Timing of one model execution."""

    model: str
    cost: PlanCost
    #: Extra time from symbols spilled to DDR (their traffic runs at DDR
    #: bandwidth instead of HBM bandwidth).
    spill_overhead_s: float

    @property
    def total_s(self) -> float:
        return self.cost.total_s + self.spill_overhead_s

    @property
    def num_launches(self) -> int:
        return self.cost.num_launches

    def summary(self) -> str:
        return (
            f"{self.model}: {self.total_s * 1e3:.3f} ms total "
            f"({self.cost.launch_s * 1e3:.3f} ms launch, "
            f"{self.spill_overhead_s * 1e3:.3f} ms spill)"
        )

    def to_timeline(self):
        """The run as a span timeline (see ``docs/OBSERVABILITY.md``).

        The kernel schedule's launch/execute lanes come from
        :meth:`PlanCost.to_timeline`; DDR spill overhead, which the cost
        model charges after the schedule, appears as one span on a
        ``memory`` lane so its contribution is visible in Perfetto.
        """
        timeline = self.cost.to_timeline()
        if self.spill_overhead_s > 0:
            timeline.record(
                f"spill:{self.model}",
                lane="memory",
                category="spill",
                start_s=self.cost.total_s,
                end_s=self.total_s,
                args={"spill_overhead_ms": self.spill_overhead_s * 1e3},
            )
        return timeline


class Session:
    """Times compiled models on a multi-socket SN40L target."""

    def __init__(
        self,
        socket: SocketConfig = SocketConfig(),
        sockets: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        if sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {sockets}")
        self.socket = socket
        self.sockets = sockets
        self.calibration = calibration
        self.target = ExecutionTarget.from_socket(
            socket, sockets=sockets, calibration=calibration
        )

    def run(
        self,
        model: CompiledModel,
        orchestration: Orchestration = Orchestration.HARDWARE,
    ) -> RunResult:
        """Execute (time) one compiled model end to end."""
        if model.sockets != self.sockets:
            raise ValueError(
                f"{model.name} compiled for {model.sockets} sockets, "
                f"session has {self.sockets}"
            )
        cost = cost_plan(model.plan, self.target, orchestration)
        spill_overhead = self._spill_overhead(model)
        return RunResult(model=model.name, cost=cost, spill_overhead_s=spill_overhead)

    def schedule(
        self,
        model: CompiledModel,
        orchestration: Orchestration = Orchestration.HARDWARE,
    ):
        """Replay the model's kernel schedule through the AGCU model.

        Builds :class:`~repro.arch.agcu.KernelDescriptor` entries from the
        cost model's per-kernel execution times and runs them through the
        :class:`~repro.arch.agcu.KernelOrchestrator`, returning its
        :class:`~repro.arch.agcu.ScheduleResult` (with per-command launch
        events). The orchestrator's total agrees with :meth:`run`'s
        kernel-cost total by construction — asserted by tests, so the two
        launch-overhead models cannot drift apart.
        """
        from repro.arch.agcu import KernelDescriptor, KernelOrchestrator
        from repro.arch.config import AGCUConfig

        cost = cost_plan(model.plan, self.target, orchestration)
        descriptors = []
        for kernel_cost, kernel in zip(cost.kernels, model.plan.kernels):
            num_args = len(kernel.external_inputs) + len(kernel.external_outputs)
            descriptors.append(
                KernelDescriptor(
                    name=kernel.name,
                    exec_time_s=kernel_cost.exec_s,
                    num_args=num_args,
                )
            )
        cal = self.calibration
        orchestrator = KernelOrchestrator(
            AGCUConfig(
                sw_launch_overhead_s=cal.sw_launch_fixed_s,
                hw_launch_overhead_s=cal.hw_launch_s,
            ),
            sw_per_arg_s=cal.sw_launch_per_arg_s,
        )
        if orchestration is Orchestration.HARDWARE:
            return orchestrator.run_hardware(descriptors)
        return orchestrator.run_software(descriptors)

    def _spill_overhead(self, model: CompiledModel) -> float:
        """Extra time for spilled symbols' traffic at DDR speed.

        A spilled symbol's accesses move at DDR bandwidth instead of HBM
        bandwidth; the overhead is the bandwidth-difference cost of its
        whole-program transfer footprint.
        """
        spilled_traffic = model.memory.spill_traffic_bytes
        if spilled_traffic == 0:
            return 0.0
        cal = self.calibration
        hbm_bw = self.socket.hbm.bandwidth * self.sockets * cal.fused_hbm_efficiency
        ddr_bw = self.socket.ddr.bandwidth * self.sockets
        return spilled_traffic / ddr_bw - spilled_traffic / hbm_bw
