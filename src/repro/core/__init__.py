"""Top-level compile/run API."""

from repro.core.compile import CompiledModel, build_symbols, compile_model
from repro.core.executor import execute_graph, execute_plan, random_inputs
from repro.core.session import RunResult, Session

__all__ = [
    "CompiledModel", "build_symbols", "compile_model", "RunResult",
    "Session", "execute_graph", "execute_plan", "random_inputs",
]
