"""Functional execution of dataflow graphs.

The timing model says how long a graph takes; this module says what it
*computes*. Every operator kind has numpy semantics consistent with its
FLOP accounting, so tests can validate whole pipelines (e.g. the Monarch
FFT stage of Figure 3) end to end against dense references, and examples
can demonstrate real data moving through the compiled kernels.

Execution follows the fusion plan's kernel schedule: external inputs are
read from the provided environment, kernel-internal tensors live only for
the duration of their kernel (exactly the stage-buffer semantics of a
spatially fused kernel), and external outputs land back in the
environment.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.dataflow.fusion import FusionPlan
from repro.dataflow.graph import DataflowGraph, Operator, OpKind


class ExecutionError(Exception):
    """Raised when a graph cannot be executed functionally."""


Environment = Dict[str, np.ndarray]


def _op_gemm(op: Operator, env: Environment) -> np.ndarray:
    a = env[op.inputs[0].name]
    b = env[op.inputs[1].name]
    if b.ndim == 1 and op.gemm_dims is not None:
        # A flat (possibly sparsity-compacted) weight vector: materialise a
        # deterministic dense (k, n) matrix from it so projections execute.
        _, k, n = op.gemm_dims
        dense = np.resize(b, (k, n))
        b = dense
    try:
        if a.ndim == 2 and b.ndim == 3:
            # Shared (weight) left operand against a batch of right operands.
            return np.einsum("ij,bjk->bik", a, b)
        if a.ndim == 3 and b.ndim == 2:
            return np.einsum("bij,jk->bik", a, b)
        if a.ndim == b.ndim == 3 and a.shape[0] == b.shape[0]:
            return np.einsum("bij,bjk->bik", a, b)
        return a @ b
    except ValueError:
        # Attention-style ops are built at cost-model granularity (batch
        # and head dims folded into the GEMM dims), so their tensor shapes
        # are byte-faithful but not einsum-consistent. Execute them
        # shape-directed: a deterministic function of the inputs with the
        # declared output shape. Exact numerics are guaranteed only for
        # shape-consistent graphs (documented in execute_graph).
        return _shape_directed(op, env)


def _shape_directed(op: Operator, env: Environment) -> np.ndarray:
    """Deterministic declared-shape output from input statistics."""
    seed = (sum(float(np.abs(env[t.name]).mean()) for t in op.inputs
                if np.issubdtype(env[t.name].dtype, np.floating)) or 1.0)
    shape = op.outputs[0].shape
    ramp = np.arange(int(np.prod(shape)), dtype=np.float32).reshape(shape)
    return np.tanh(ramp / ramp.size * seed).astype(np.float32)


def _op_elementwise(op: Operator, env: Environment) -> np.ndarray:
    result = env[op.inputs[0].name]
    for tensor in op.inputs[1:]:
        other = env[tensor.name]
        if other.shape != result.shape and other.size != result.size:
            return _shape_directed(op, env)
        result = result * other.reshape(result.shape)
    return result


def _op_add(op: Operator, env: Environment) -> np.ndarray:
    # Residual adds are elementwise ops with flops_per_element == 1 and two
    # inputs; the model builders use multiply semantics for gating and add
    # semantics for residuals. Functional execution exposes both through
    # OpKind.ELEMENTWISE with a name convention checked by the dispatcher.
    total = env[op.inputs[0].name]
    for tensor in op.inputs[1:]:
        total = total + env[tensor.name]
    return total


def _op_softmax(op: Operator, env: Environment) -> np.ndarray:
    x = env[op.inputs[0].name]
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _op_norm(op: Operator, env: Environment) -> np.ndarray:
    x = env[op.inputs[0].name].astype(np.float64)
    weight = env[op.inputs[1].name]
    rms = np.sqrt((x**2).mean(axis=-1, keepdims=True) + 1e-6)
    return ((x / rms) * weight).astype(np.float32)


def _op_transpose(op: Operator, env: Environment) -> np.ndarray:
    return np.swapaxes(env[op.inputs[0].name], -1, -2)


def _op_reshape(op: Operator, env: Environment) -> np.ndarray:
    return env[op.inputs[0].name].reshape(op.outputs[0].shape)


def _op_identity(op: Operator, env: Environment) -> np.ndarray:
    return env[op.inputs[0].name]


def _op_rope(op: Operator, env: Environment) -> np.ndarray:
    x = env[op.inputs[0].name]
    half = x.shape[-1] // 2
    if half == 0:
        return x.copy()
    positions = np.arange(x.shape[0], dtype=np.float64)[:, None]
    freqs = 1.0 / (10000.0 ** (np.arange(half, dtype=np.float64) / half))
    angles = positions * freqs
    cos, sin = np.cos(angles), np.sin(angles)
    x1, x2 = x[..., :half], x[..., half : 2 * half]
    rotated = np.concatenate(
        [x1 * cos - x2 * sin, x1 * sin + x2 * cos, x[..., 2 * half :]], axis=-1
    )
    return rotated.astype(x.dtype)


def _op_reduction(op: Operator, env: Environment) -> np.ndarray:
    x = env[op.inputs[0].name]
    out_shape = op.outputs[0].shape
    if int(np.prod(out_shape)) == 1:
        return np.full(out_shape, x.sum(), dtype=x.dtype)
    k = out_shape[-1]
    flat = x.reshape(out_shape[0], -1)
    # Top-k reduction (MoE selection): largest k values per row.
    top = np.sort(flat, axis=-1)[:, -k:]
    return top.astype(x.dtype)


def _op_embedding(op: Operator, env: Environment) -> np.ndarray:
    ids = env[op.inputs[0].name].astype(np.int64).reshape(-1)
    table = env[op.inputs[1].name]
    return table[ids % table.shape[0]]


def _op_sample(op: Operator, env: Environment) -> np.ndarray:
    logits = env[op.inputs[0].name]
    return logits.argmax(axis=-1, keepdims=True).astype(np.int32)


def _op_kv_append(op: Operator, env: Environment) -> np.ndarray:
    values = env[op.inputs[0].name]
    cache = np.zeros(op.outputs[0].shape, dtype=np.float32)
    flat = values.reshape(-1)
    cache.reshape(-1)[: flat.size] = flat[: cache.size]
    return cache


_HANDLERS: Dict[OpKind, Callable[[Operator, Environment], np.ndarray]] = {
    OpKind.GEMM: _op_gemm,
    OpKind.SOFTMAX: _op_softmax,
    OpKind.NORM: _op_norm,
    OpKind.TRANSPOSE: _op_transpose,
    OpKind.RESHAPE: _op_reshape,
    OpKind.FFT_PERMUTE: _op_identity,  # layout-only at this granularity
    OpKind.ROPE: _op_rope,
    OpKind.REDUCTION: _op_reduction,
    OpKind.EMBEDDING: _op_embedding,
    OpKind.SAMPLE: _op_sample,
    OpKind.KV_APPEND: _op_kv_append,
    OpKind.ALLREDUCE: _op_identity,  # numerically the reduced value
    OpKind.CONV: _op_gemm,
}

#: Elementwise ops whose name marks them as additive (residual adds).
_ADDITIVE_MARKERS = ("resid", "add", "combine")


def execute_operator(op: Operator, env: Environment) -> np.ndarray:
    """Run one operator against an environment of named arrays."""
    for tensor in op.inputs:
        if tensor.name not in env:
            raise ExecutionError(
                f"{op.name}: missing input tensor {tensor.name!r}"
            )
    if op.kind is OpKind.ELEMENTWISE:
        if any(marker in op.name for marker in _ADDITIVE_MARKERS):
            result = _op_add(op, env)
        elif "silu" in op.name:
            x = env[op.inputs[0].name]
            result = x / (1.0 + np.exp(-x))
        elif "gelu" in op.name:
            x = env[op.inputs[0].name]
            result = 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))
        else:
            result = _op_elementwise(op, env)
    else:
        handler = _HANDLERS.get(op.kind)
        if handler is None:
            raise ExecutionError(f"{op.name}: no functional semantics for {op.kind}")
        try:
            result = handler(op, env)
        except ValueError:
            result = _shape_directed(op, env)
    if tuple(result.shape) != tuple(op.outputs[0].shape):
        # Cost-model-granularity op (attention with folded head dims etc.):
        # keep the schedule runnable with a deterministic declared-shape
        # result. Shape-consistent graphs never take this path.
        result = _shape_directed(op, env)
    return result


def execute_graph(
    graph: DataflowGraph, inputs: Environment, keep_intermediates: bool = False
) -> Environment:
    """Execute a whole graph; returns the external outputs.

    ``inputs`` must provide every external input (activations and
    weights). With ``keep_intermediates`` the returned environment also
    contains every intermediate tensor (useful for debugging).
    """
    env: Environment = dict(inputs)
    missing = [
        t.name for t in graph.external_inputs() if t.name not in env
    ]
    if missing:
        raise ExecutionError(f"missing external inputs: {sorted(missing)[:5]}")
    for op in graph.topological_order():
        result = execute_operator(op, env)
        env[op.outputs[0].name] = result
    if keep_intermediates:
        return env
    return {t.name: env[t.name] for t in graph.external_outputs()}


def execute_plan(plan: FusionPlan, inputs: Environment) -> Environment:
    """Execute a fusion plan kernel by kernel.

    Functionally equivalent to :func:`execute_graph`, but enforces the
    kernel schedule's locality: a kernel's internal tensors are dropped
    the moment the kernel completes (they only ever lived in PMU stage
    buffers), so any cross-kernel read of a fused-away tensor fails loudly
    — the invariant that makes fusion legal.
    """
    env: Environment = dict(inputs)
    for kernel in plan.kernels:
        local: Environment = dict(env)
        for op in kernel.ops:
            local[op.outputs[0].name] = execute_operator(op, local)
        for tensor in kernel.external_outputs:
            env[tensor.name] = local[tensor.name]
    out_names = {t.name for t in plan.graph.external_outputs()}
    return {name: env[name] for name in out_names}


def random_inputs(graph: DataflowGraph, seed: int = 0) -> Environment:
    """Random external inputs for a graph (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    env: Environment = {}
    for tensor in graph.external_inputs():
        if tensor.dtype.name == "INT32":
            env[tensor.name] = rng.integers(0, 100, size=tensor.shape).astype(np.int32)
        else:
            env[tensor.name] = rng.standard_normal(tensor.shape).astype(np.float32)
    return env
