"""The policy/clock split: what decision-making code may know about time.

Every serving-layer decision component (scheduling in
:mod:`repro.coe.scheduling`, cache victim selection in
:mod:`repro.coe.cache`, cluster dispatch in
:mod:`repro.coe.cluster_engine`, deadline admission) historically typed
its time source as the concrete :class:`repro.sim.engine.Simulator`.
That coupling is what kept the whole stack sim-only. This module defines
the **narrow** surface those components are allowed to touch, so the
same policies run on either backend:

- :class:`Clock` — read-only time plus span recording: ``now``,
  ``record_span``, ``timeline``. This is all a *policy* may see; a
  policy that only reads a :class:`Clock` cannot tell a simulated run
  from a live one, which is precisely what makes the sim/live decision
  cross-check (:mod:`repro.coe.crosscheck`) possible.
- :class:`EventSource` — a :class:`Clock` that also *owns* the arrow of
  time: callbacks can be scheduled on it (``schedule``/``schedule_at``)
  and batched drains account through it (``count_events`` /
  ``advance_to`` / ``peek_next_time``). The serving engines bind to an
  :class:`EventSource`; only the backend *driver* (``ServingEngine.run``,
  ``ClusterEngine.serve``) may additionally pump a concrete
  :class:`~repro.sim.engine.Simulator`'s ``run()`` loop.
- :class:`WallClock` — the asyncio wall-clock :class:`Clock`
  implementation behind live serving (:mod:`repro.coe.live_engine`).
  Time is reported in **model seconds**: one model second occupies
  ``time_scale`` wall seconds, so the same config can replay a ten-hour
  trace in seconds or serve in real time, and spans recorded on a live
  timeline line up with the simulator's timestamps for the same work.

:class:`repro.sim.engine.Simulator` satisfies both protocols
structurally (asserted in ``tests/sim/test_clock.py``); it imports
nothing from here, keeping the engine dependency-free.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Mapping, Optional, Protocol, runtime_checkable

from repro.obs import Span, Timeline


@runtime_checkable
class Clock(Protocol):
    """What a *decision-making* component may know about time.

    ``now`` is the current time in model seconds; ``record_span``
    anchors observability spans to it (a free no-op when no timeline is
    attached). Nothing here lets a policy advance time or schedule work
    — that power belongs to :class:`EventSource` and the backend driver.
    """

    timeline: Optional[Timeline]

    @property
    def now(self) -> float: ...

    def record_span(
        self,
        name: str,
        lane: str,
        category: str,
        duration_s: Optional[float] = None,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        args: Optional[Mapping] = None,
    ) -> Optional[Span]: ...


@runtime_checkable
class EventSource(Protocol):
    """A :class:`Clock` that executes scheduled callbacks in time order.

    This is the surface the serving engines bind to
    (:meth:`repro.coe.engine.ServingEngine.bind`); the concrete
    simulated implementation is :class:`repro.sim.engine.Simulator`.
    A wall-clock analogue would dispatch callbacks from an event loop —
    the live backend instead drives engines' *decision cores* directly
    from asyncio tasks, which is why the policy-facing :class:`Clock`
    is kept separate and minimal.
    """

    timeline: Optional[Timeline]

    @property
    def now(self) -> float: ...

    def record_span(
        self,
        name: str,
        lane: str,
        category: str,
        duration_s: Optional[float] = None,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        args: Optional[Mapping] = None,
    ) -> Optional[Span]: ...

    def schedule(
        self, delay: float, callback: Callable[[], None],
        kind: Optional[str] = None,
    ) -> None: ...

    def schedule_at(
        self, time: float, callback: Callable[[], None],
        kind: Optional[str] = None,
    ) -> None: ...

    def count_events(self, n: int) -> None: ...

    def advance_to(self, time: float) -> None: ...

    def peek_next_time(self) -> Optional[float]: ...


class WallClock:
    """An asyncio-backed :class:`Clock` reporting **model seconds**.

    ``time_scale`` is wall seconds per model second: ``1.0`` serves in
    real time, ``0.01`` compresses a 10-model-second trace into 0.1 wall
    seconds (CI smoke), ``>1`` slow-motions a fast sim for inspection.
    All public times — ``now``, ``sleep_until``/``sleep`` arguments,
    recorded span timestamps — are model seconds; only
    :attr:`wall_elapsed_s` speaks raw wall time.

    The clock anchors on :func:`time.monotonic` lazily at first use (or
    explicitly via :meth:`start`), so reads need no event loop — only
    the ``sleep*`` coroutines do.
    """

    def __init__(
        self,
        time_scale: float = 1.0,
        timeline: Optional[Timeline] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.time_scale = time_scale
        self.timeline = timeline
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor model-time zero at the current monotonic wall time."""
        self._t0 = time.monotonic()

    def _ensure_started(self) -> float:
        if self._t0 is None:
            self.start()
        return self._t0

    @property
    def wall_elapsed_s(self) -> float:
        """Raw wall seconds since :meth:`start`."""
        t0 = self._ensure_started()  # anchor before sampling
        return time.monotonic() - t0

    @property
    def now(self) -> float:
        """Current time in model seconds."""
        return self.wall_elapsed_s / self.time_scale

    # ------------------------------------------------------------------
    async def sleep_until(self, model_time: float) -> None:
        """Sleep until ``model_time`` (model seconds); past is a no-op."""
        deadline = self._ensure_started() + model_time * self.time_scale
        delay = deadline - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)

    async def sleep(self, model_duration_s: float) -> None:
        """Sleep ``model_duration_s`` model seconds of wall time."""
        if model_duration_s > 0:
            await asyncio.sleep(model_duration_s * self.time_scale)

    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        lane: str,
        category: str,
        duration_s: Optional[float] = None,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        args: Optional[Mapping] = None,
    ) -> Optional[Span]:
        """Record a span in model seconds; no-op without a timeline.

        Same contract as :meth:`repro.sim.engine.Simulator.record_span`,
        so engine code recording through a :class:`Clock` needs no
        backend branches.
        """
        if self.timeline is None:
            return None
        if start_s is None:
            start_s = self.now
        if end_s is None:
            if duration_s is None:
                raise ValueError("record_span needs duration_s or end_s")
            end_s = start_s + duration_s
        return self.timeline.record(
            name, lane=lane, category=category,
            start_s=start_s, end_s=end_s, args=args,
        )


__all__ = ["Clock", "EventSource", "WallClock"]
