"""Discrete-event simulation of streamed dataflow pipelines."""

from repro.sim.clock import Clock, EventSource, WallClock
from repro.sim.congestion import CongestionAnalyzer, PlacedFlow
from repro.sim.engine import Simulator
from repro.sim.streams import Pipeline, PipelineStage, bursty_stage, uniform_stage

__all__ = [
    "Simulator", "Pipeline", "PipelineStage", "bursty_stage",
    "uniform_stage", "CongestionAnalyzer", "PlacedFlow",
    "Clock", "EventSource", "WallClock",
]
