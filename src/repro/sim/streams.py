"""Discrete-event simulation of streamed pipelines with stage buffers.

This models the execution style of a spatially fused SN40L kernel (paper
Figure 4): operators are pipeline stages; tensors are tiled and streamed
between them through decoupling stage buffers held in PMUs; transmission is
subject to credit-based flow control (a producer stalls when the
downstream buffer is full).

The simulation validates two properties the analytic model relies on:

1. steady-state throughput equals the bottleneck stage's throughput,
2. makespan ~ fill latency + items / bottleneck_rate,

and exposes the failure mode the paper's "lessons learned" discusses:
bursty producers stalling the whole pipeline unless throttled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.engine import Simulator


@dataclass
class StageStats:
    """Per-stage occupancy and stall accounting."""

    processed: int = 0
    stalled_s: float = 0.0
    busy_s: float = 0.0


class PipelineStage:
    """One pipeline stage: fixed service time, finite output buffer.

    ``service_time(index)`` may vary per item (bursty stages); the output
    buffer models the PMU stage buffer with ``buffer_capacity`` tile slots.
    Credit-based flow control: the stage only starts an item when the
    downstream buffer has a free slot.
    """

    def __init__(
        self,
        name: str,
        service_time: Callable[[int], float],
        buffer_capacity: int = 2,
    ) -> None:
        if buffer_capacity < 1:
            raise ValueError(f"{name}: buffer capacity must be >= 1")
        self.name = name
        self.service_time = service_time
        self.buffer_capacity = buffer_capacity
        self.stats = StageStats()
        # Wired by Pipeline.
        self._sim: Optional[Simulator] = None
        self._downstream: Optional["PipelineStage"] = None
        self._input_queue: List[int] = []
        self._output_count = 0
        self._busy = False
        self._stall_started: Optional[float] = None

    # -- plumbing ------------------------------------------------------
    def _accept(self, item: int) -> None:
        """Receive an item into the input buffer (guaranteed space by
        upstream credit check)."""
        self._input_queue.append(item)
        self._try_start()

    def _has_credit(self) -> bool:
        return len(self._input_queue) < self.buffer_capacity

    def _try_start(self) -> None:
        if self._busy or not self._input_queue:
            return
        if self._downstream is not None and not self._downstream._has_credit():
            # Blocked on downstream credit; downstream pokes us on drain.
            if self._stall_started is None:
                self._stall_started = self._sim.now
            return
        if self._stall_started is not None:
            self.stats.stalled_s += self._sim.now - self._stall_started
            self._stall_started = None
        item = self._input_queue[0]
        self._busy = True
        duration = self.service_time(item)
        self.stats.busy_s += duration
        # Reserve the downstream slot now (credit decremented on arrival,
        # which happens at completion time).
        self._sim.schedule(duration, lambda: self._finish(item))

    def _finish(self, item: int) -> None:
        self._input_queue.pop(0)
        self._busy = False
        self.stats.processed += 1
        self._output_count += 1
        if self._downstream is not None:
            self._downstream._accept(item)
        # Our input slot freed: poke upstream via pipeline wiring.
        if self._upstream is not None:
            self._upstream._try_start()
        self._try_start()

    _upstream: Optional["PipelineStage"] = None


class Pipeline:
    """A linear chain of stages fed with ``num_items`` tiles."""

    def __init__(self, stages: List[PipelineStage]) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = stages
        self.sim = Simulator()
        for stage in stages:
            stage._sim = self.sim
        for up, down in zip(stages, stages[1:]):
            up._downstream = down
            down._upstream = up

    def run(self, num_items: int) -> float:
        """Stream ``num_items`` items through; returns the makespan."""
        if num_items < 0:
            raise ValueError(f"negative item count: {num_items}")
        first = self.stages[0]

        injected = {"count": 0}

        def inject() -> None:
            if injected["count"] >= num_items:
                return
            if first._has_credit():
                first._accept(injected["count"])
                injected["count"] += 1
                self.sim.schedule(0.0, inject)
            else:
                # Retry when the head of the pipeline drains a slot.
                self.sim.schedule(self._head_retry_delay(), inject)

        self.sim.schedule(0.0, inject)
        return self.sim.run()

    def _head_retry_delay(self) -> float:
        # Poll at a fraction of the head stage's service time: cheap and
        # cannot miss forward progress (no zero-time livelock).
        probe = self.stages[0].service_time(0)
        return max(probe / 4, 1e-12)

    def bottleneck_time(self, num_items: int) -> float:
        """Analytic steady-state bound: slowest total stage service time."""
        return max(
            sum(stage.service_time(i) for i in range(num_items))
            for stage in self.stages
        )

    def fill_latency(self) -> float:
        """One item's latency through an empty pipeline."""
        return sum(stage.service_time(0) for stage in self.stages)


def uniform_stage(name: str, time_per_item: float, buffer_capacity: int = 2) -> PipelineStage:
    """A stage with constant service time."""
    if time_per_item <= 0:
        raise ValueError(f"{name}: time_per_item must be positive")
    return PipelineStage(name, lambda _: time_per_item, buffer_capacity)


def bursty_stage(
    name: str,
    fast_time: float,
    slow_time: float,
    burst_period: int,
    buffer_capacity: int = 2,
) -> PipelineStage:
    """A stage that stalls every ``burst_period`` items.

    Models the bursty traffic the paper's performance-debugging section
    describes; pairing it with `throttled_stage` shows why programmable
    packet throttling smooths the pipeline.
    """
    if burst_period < 1:
        raise ValueError(f"{name}: burst_period must be >= 1")

    def service(item: int) -> float:
        return slow_time if (item % burst_period) == burst_period - 1 else fast_time

    return PipelineStage(name, service, buffer_capacity)
