"""Deterministic fault injection on the simulated clock.

Production-scale CoE serving has to survive the failures the happy-path
scaling curve never sees: a node dying mid-decode, a straggler running
hot, a DDR->HBM expert copy failing and retrying. This module is the
*schedule* half of that story — a declarative, fully deterministic list
of fault events anchored to simulated time — plus the
:class:`FaultInjector` that arms them as ordinary events on a
:class:`repro.sim.engine.Simulator`. The *reaction* half (heartbeat
detection, re-dispatch, replica promotion, admission control) lives in
:class:`repro.coe.cluster_engine.ClusterEngine`.

Fault kinds:

- :class:`NodeCrash` — the node halts at ``at_s`` and never recovers;
  its in-flight and queued work must be re-dispatched by the cluster.
- :class:`SlowNode` — a transient straggler: every group *started*
  inside ``[at_s, at_s + duration_s)`` runs ``multiplier``x slower.
- :class:`CopyFault` — the next ``count`` demand DDR->HBM copies on the
  node (at or after ``at_s``) fail once each and are retried, doubling
  the copy's DMA occupancy.

Determinism: a :class:`FaultSchedule` is plain data; injection happens
at exact simulated times through the simulator's deterministic event
queue, so the same seed plus the same schedule reproduces the same run
bit-for-bit — which is what makes outage benchmarks regression-testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class NodeCrash:
    """Permanent fail-stop of one node at ``at_s``."""

    node: int
    at_s: float

    def __post_init__(self) -> None:
        _check_node_time(self)

    @property
    def spec(self) -> str:
        # repr() of a float round-trips exactly; :g would truncate to six
        # significant digits and break schedule -> specs -> schedule.
        return f"crash:node{self.node}:{self.at_s!r}"


@dataclass(frozen=True)
class SlowNode:
    """Transient straggler: the node runs ``multiplier``x slower."""

    node: int
    at_s: float
    duration_s: float
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        _check_node_time(self)
        if self.duration_s <= 0:
            raise ValueError(
                f"slow-node duration must be > 0, got {self.duration_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"slow-node multiplier must be >= 1, got {self.multiplier}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    @property
    def spec(self) -> str:
        return (f"slow:node{self.node}:{self.at_s!r}:{self.duration_s!r}"
                f":{self.multiplier!r}")


@dataclass(frozen=True)
class CopyFault:
    """The next ``count`` DDR->HBM demand copies on the node fail once."""

    node: int
    at_s: float
    count: int = 1

    def __post_init__(self) -> None:
        _check_node_time(self)
        if self.count < 1:
            raise ValueError(f"copy-fault count must be >= 1, got {self.count}")

    @property
    def spec(self) -> str:
        return f"copyfail:node{self.node}:{self.at_s!r}:{self.count}"


FaultEvent = Union[NodeCrash, SlowNode, CopyFault]


def _check_node_time(fault) -> None:
    if fault.node < 0:
        raise ValueError(f"fault node index must be >= 0, got {fault.node}")
    if fault.at_s < 0:
        raise ValueError(f"fault time must be >= 0, got {fault.at_s}")


def parse_fault(spec: str) -> FaultEvent:
    """Parse one fault spec string (the CLI's ``--inject-fault`` format).

    Accepted forms (``NODE`` is an index, with or without a ``node``
    prefix; times are seconds of simulated time):

    - ``NODE:T``                      — crash NODE at T (the shorthand),
    - ``crash:NODE:T``                — same, explicit,
    - ``slow:NODE:T:DURATION[:MULT]`` — straggler window (default 2x),
    - ``copyfail:NODE:T[:COUNT]``     — failing DDR->HBM copies.
    """
    parts = spec.split(":")
    kind = parts[0].lower()
    if kind not in ("crash", "slow", "copyfail"):
        kind, parts = "crash", ["crash"] + parts
    try:
        node = int(parts[1].lower().removeprefix("node"))
        if kind == "crash":
            if len(parts) != 3:
                raise ValueError
            return NodeCrash(node=node, at_s=float(parts[2]))
        if kind == "slow":
            if len(parts) not in (4, 5):
                raise ValueError
            multiplier = float(parts[4]) if len(parts) == 5 else 2.0
            return SlowNode(node=node, at_s=float(parts[2]),
                            duration_s=float(parts[3]), multiplier=multiplier)
        if len(parts) not in (3, 4):
            raise ValueError
        count = int(parts[3]) if len(parts) == 4 else 1
        return CopyFault(node=node, at_s=float(parts[2]), count=count)
    except (IndexError, ValueError) as exc:
        detail = exc.args[0] if exc.args else None
        raise ValueError(
            f"bad fault spec {spec!r}; expected NODE:T, crash:NODE:T, "
            f"slow:NODE:T:DURATION[:MULT], or copyfail:NODE:T[:COUNT]"
            + (f" ({detail})" if isinstance(detail, str) and detail else "")
        ) from None


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted set of fault events."""

    faults: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.faults, key=lambda f: (f.at_s, f.node, type(f).__name__)
        ))
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultSchedule":
        return cls(faults=tuple(parse_fault(s) for s in specs))

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def for_node(self, node: int) -> Tuple[FaultEvent, ...]:
        return tuple(f for f in self.faults if f.node == node)

    @property
    def crashes(self) -> Tuple[NodeCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, NodeCrash))

    @property
    def max_node(self) -> int:
        """Highest node index referenced (-1 when empty)."""
        return max((f.node for f in self.faults), default=-1)

    def specs(self) -> List[str]:
        """Round-trippable spec strings (JSON-friendly)."""
        return [f.spec for f in self.faults]

    def validate_for(self, num_nodes: int) -> None:
        """Reject faults targeting nodes the cluster does not have."""
        if self.max_node >= num_nodes:
            raise ValueError(
                f"fault schedule targets node {self.max_node} but the "
                f"cluster has only {num_nodes} node(s)"
            )
        if len({c.node for c in self.crashes}) >= num_nodes:
            raise ValueError(
                "fault schedule crashes every node; nothing could survive "
                "to recover the work"
            )


def random_schedule(
    num_nodes: int,
    horizon_s: float,
    seed: int = 0,
    crashes: int = 1,
    slow_nodes: int = 0,
    copy_faults: int = 0,
    slow_multiplier: float = 2.0,
) -> FaultSchedule:
    """A reproducible random schedule (chaos testing under a fixed seed).

    Crash victims are sampled without replacement and never cover every
    node; times are uniform over ``(0, horizon_s)``. Identical arguments
    always produce the identical schedule.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    if crashes >= num_nodes:
        raise ValueError(
            f"refusing to crash all {num_nodes} node(s); at most "
            f"{num_nodes - 1} crash(es)"
        )
    rng = random.Random(seed)
    victims = rng.sample(range(num_nodes), k=crashes)
    faults: List[FaultEvent] = [
        NodeCrash(node=v, at_s=rng.uniform(0.0, horizon_s) or horizon_s / 2)
        for v in victims
    ]
    for _ in range(slow_nodes):
        at = rng.uniform(0.0, 0.8 * horizon_s)
        faults.append(SlowNode(
            node=rng.randrange(num_nodes), at_s=at,
            duration_s=rng.uniform(0.05, 0.5) * horizon_s,
            multiplier=slow_multiplier,
        ))
    for _ in range(copy_faults):
        faults.append(CopyFault(
            node=rng.randrange(num_nodes),
            at_s=rng.uniform(0.0, horizon_s),
        ))
    return FaultSchedule(faults=tuple(faults))


class FaultInjector:
    """Arms a :class:`FaultSchedule` as events on a simulator.

    The injector is deliberately dumb: at each fault's time it calls the
    matching handler and counts down :attr:`pending`. The cluster engine
    uses ``pending`` to keep its heartbeat alive exactly as long as more
    faults can still arrive (a drained event queue with pending faults
    would otherwise end the simulation before the outage happens).
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: FaultSchedule,
        on_crash: Callable[[NodeCrash], None],
        on_slow_start: Optional[Callable[[SlowNode], None]] = None,
        on_slow_end: Optional[Callable[[SlowNode], None]] = None,
        on_copy_fault: Optional[Callable[[CopyFault], None]] = None,
    ) -> None:
        self.schedule = schedule
        self.pending = 0
        self.delivered: List[FaultEvent] = []
        events: List[Tuple[float, Callable[[], None]]] = []
        for fault in schedule:
            self.pending += 1
            if isinstance(fault, NodeCrash):
                events.append(
                    (fault.at_s, lambda f=fault: self._fire(on_crash, f))
                )
            elif isinstance(fault, SlowNode):
                if on_slow_start is not None:
                    events.append(
                        (fault.at_s, lambda f=fault: on_slow_start(f))
                    )
                # the *end* of the window retires the fault: the engine
                # must stay responsive for its whole duration.
                events.append(
                    (fault.end_s, lambda f=fault: self._fire(on_slow_end, f))
                )
            else:
                events.append(
                    (fault.at_s, lambda f=fault: self._fire(on_copy_fault, f))
                )
        sim.schedule_many(events)

    def _fire(self, handler: Optional[Callable], fault: FaultEvent) -> None:
        self.pending -= 1
        self.delivered.append(fault)
        if handler is not None:
            handler(fault)


__all__ = [
    "CopyFault",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "NodeCrash",
    "SlowNode",
    "parse_fault",
    "random_schedule",
]
