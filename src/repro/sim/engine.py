"""A minimal discrete-event simulation engine.

Used to simulate streaming-dataflow pipelines (stage buffers, credit flow
control) at event granularity, validating the analytic bottleneck model in
:mod:`repro.dataflow.pipeline`. The engine is a classic event-queue design:
callbacks scheduled at absolute times, executed in time order with a
deterministic tie-break.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class Simulator:
    """An event-driven simulator with a monotonic clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_run = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` stops the clock at a deadline (inclusive: an event
        scheduled at exactly ``until`` still runs); ``max_events`` guards
        against runaway simulations (deadlock-free models terminate). When
        the queue drains before the deadline, the clock still advances to
        ``until`` — the simulated interval elapsed even if nothing
        happened in its tail.
        """
        while self._queue:
            if self._events_run >= max_events:
                raise RuntimeError(f"exceeded {max_events} events — livelock?")
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            self._events_run += 1
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending_events(self) -> int:
        return len(self._queue)
