"""A minimal discrete-event simulation engine.

Used to simulate streaming-dataflow pipelines (stage buffers, credit flow
control) at event granularity, validating the analytic bottleneck model in
:mod:`repro.dataflow.pipeline`. The engine is a classic event-queue design:
callbacks scheduled at absolute times, executed in time order with a
deterministic tie-break.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple

from repro.obs import Span, Timeline


class Simulator:
    """An event-driven simulator with a monotonic clock.

    Pass (or attach) a :class:`repro.obs.Timeline` and models built on
    the simulator can emit spans anchored to the simulated clock via
    :meth:`record_span`; without one, the hooks are free no-ops.
    """

    def __init__(self, timeline: Optional[Timeline] = None) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_run = 0
        self.timeline = timeline

    def attach_timeline(self, timeline: Optional[Timeline]) -> None:
        """Install (or with ``None``, remove) the span recorder."""
        self.timeline = timeline

    def record_span(
        self,
        name: str,
        lane: str,
        category: str,
        duration_s: Optional[float] = None,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        args: Optional[Mapping] = None,
    ) -> Optional[Span]:
        """Record a span on the attached timeline; no-op without one.

        Defaults anchor to the clock: ``start_s`` is ``now`` unless
        given, and ``end_s`` is ``start_s + duration_s``. Models with
        known durations record spans prospectively at schedule time.
        """
        if self.timeline is None:
            return None
        if start_s is None:
            start_s = self.now
        if end_s is None:
            if duration_s is None:
                raise ValueError("record_span needs duration_s or end_s")
            end_s = start_s + duration_s
        return self.timeline.record(
            name, lane=lane, category=category,
            start_s=start_s, end_s=end_s, args=args,
        )

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` stops the clock at a deadline (inclusive: an event
        scheduled at exactly ``until`` still runs); ``max_events`` guards
        against runaway simulations (deadlock-free models terminate) and
        budgets *this call* — a fresh ``run()`` gets a fresh budget, with
        the lifetime total still visible as :attr:`events_run`. When
        the queue drains before the deadline, the clock still advances to
        ``until`` — the simulated interval elapsed even if nothing
        happened in its tail.
        """
        events_this_call = 0
        while self._queue:
            if events_this_call >= max_events:
                raise RuntimeError(f"exceeded {max_events} events — livelock?")
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            self._events_run += 1
            events_this_call += 1
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending_events(self) -> int:
        return len(self._queue)
