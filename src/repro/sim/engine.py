"""A minimal discrete-event simulation engine.

Used to simulate streaming-dataflow pipelines (stage buffers, credit flow
control) at event granularity, validating the analytic bottleneck model in
:mod:`repro.dataflow.pipeline`. The engine is a classic event-queue design:
callbacks scheduled at absolute times, executed in time order with a
deterministic tie-break.

Batched event execution
-----------------------

Two extensions let models amortize the per-event overhead that dominates
large simulations (see ``docs/PERFORMANCE.md``):

- :meth:`Simulator.schedule_many` bulk-inserts a whole batch of events
  with **one** heapify instead of one ``heappush`` per event.
- Events may carry a ``kind`` tag. When a :func:`batch handler
  <Simulator.set_batch_handler>` is registered for a kind, ``run()``
  drains each maximal run of *consecutive* same-kind events (consecutive
  in time/tie-break order — i.e. no other event is interleaved between
  them, so nothing else could have observed intermediate state) through
  the handler in one step instead of one ``heappop`` + callback per
  event. A handler that replays many logical events in one call reports
  them via :meth:`Simulator.count_events` so ``events_run`` and the
  livelock budget stay meaningful.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import Span, Timeline

#: One queued event: (time, tie-break counter, kind tag, callback).
_Event = Tuple[float, int, Optional[str], Callable[[], None]]


class Simulator:
    """An event-driven simulator with a monotonic clock.

    Pass (or attach) a :class:`repro.obs.Timeline` and models built on
    the simulator can emit spans anchored to the simulated clock via
    :meth:`record_span`; without one, the hooks are free no-ops.
    """

    def __init__(self, timeline: Optional[Timeline] = None) -> None:
        self._queue: List[_Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_run = 0
        #: Per-``run()``-call event budget consumption; a batched drain
        #: credits its logical events here via :meth:`count_events`.
        self._events_this_call = 0
        #: kind -> handler draining a homogeneous run of events at once.
        self._batch_handlers: dict = {}
        self.timeline = timeline

    def attach_timeline(self, timeline: Optional[Timeline]) -> None:
        """Install (or with ``None``, remove) the span recorder."""
        self.timeline = timeline

    def record_span(
        self,
        name: str,
        lane: str,
        category: str,
        duration_s: Optional[float] = None,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        args: Optional[Mapping] = None,
    ) -> Optional[Span]:
        """Record a span on the attached timeline; no-op without one.

        Defaults anchor to the clock: ``start_s`` is ``now`` unless
        given, and ``end_s`` is ``start_s + duration_s``. Models with
        known durations record spans prospectively at schedule time.
        """
        if self.timeline is None:
            return None
        if start_s is None:
            start_s = self.now
        if end_s is None:
            if duration_s is None:
                raise ValueError("record_span needs duration_s or end_s")
            end_s = start_s + duration_s
        return self.timeline.record(
            name, lane=lane, category=category,
            start_s=start_s, end_s=end_s, args=args,
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: Optional[str] = None,
    ) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), kind, callback)
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: Optional[str] = None,
    ) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(
            self._queue, (time, next(self._counter), kind, callback)
        )

    def schedule_many(
        self,
        events: Iterable[Sequence],
    ) -> int:
        """Bulk-schedule ``(time, callback)`` or ``(time, callback, kind)``
        tuples, heapifying **once**.

        Returns the number of events inserted. Tie-break order among the
        batch follows iteration order, exactly as if each event had been
        :meth:`schedule_at`-ed in sequence; a single ``heapify`` over the
        extended queue replaces N ``heappush`` sift-ups, which is the
        cheaper path whenever N is comparable to the queue size.
        """
        added = 0
        for event in events:
            if len(event) == 2:
                time, callback = event
                kind: Optional[str] = None
            else:
                time, callback, kind = event
            if time < self.now:
                raise ValueError(
                    f"cannot schedule at {time} < now {self.now}"
                )
            self._queue.append((time, next(self._counter), kind, callback))
            added += 1
        if added:
            heapq.heapify(self._queue)
        return added

    # ------------------------------------------------------------------
    # Batched draining
    # ------------------------------------------------------------------
    def set_batch_handler(
        self,
        kind: str,
        handler: Optional[Callable[[List[Tuple[float, Callable[[], None]]]], None]],
    ) -> None:
        """Register (or with ``None``, remove) a drain handler for a kind.

        When the queue head is a ``kind``-tagged event, ``run()`` pops the
        maximal run of consecutive same-kind events and calls
        ``handler([(time, callback), ...])`` once, with the clock at the
        first event's time; the clock lands on the last event's time when
        the handler returns (a handler may advance it further via
        :meth:`advance_to`). The run is homogeneous by construction: no
        other event sits between its members, so no interleaved state
        dependency is skipped.
        """
        if handler is None:
            self._batch_handlers.pop(kind, None)
        else:
            self._batch_handlers[kind] = handler

    def count_events(self, n: int) -> None:
        """Credit ``n`` logical events executed inside a batched drain.

        Keeps :attr:`events_run` and the per-call livelock budget honest
        when one popped event replays many logical events in a loop.
        """
        if n < 0:
            raise ValueError(f"cannot credit {n} events")
        self._events_run += n
        self._events_this_call += n

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` (monotonic; earlier is a no-op).

        Batched drains that execute work at explicitly-computed times use
        this to leave the clock at the end of the work they replayed.
        """
        if time > self.now:
            self.now = time

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty.

        Schedulers use this to decide how far the clock can safely jump.
        """
        return self._queue[0][0] if self._queue else None

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` stops the clock at a deadline (inclusive: an event
        scheduled at exactly ``until`` still runs); ``max_events`` guards
        against runaway simulations (deadlock-free models terminate) and
        budgets *this call* — a fresh ``run()`` gets a fresh budget, with
        the lifetime total still visible as :attr:`events_run`. When
        the queue drains before the deadline, the clock still advances to
        ``until`` — the simulated interval elapsed even if nothing
        happened in its tail.
        """
        self._events_this_call = 0
        while self._queue:
            if self._events_this_call >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events in one run() call — "
                    f"livelock? next event at t={self.peek_next_time()!r}, "
                    f"pending_events={self.pending_events}, "
                    f"lifetime events_run={self.events_run}"
                )
            time, _, kind, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            handler = (
                self._batch_handlers.get(kind) if kind is not None else None
            )
            if handler is not None:
                batch = self._drain_same_kind(kind, until)
                self.now = batch[0][0]
                self.count_events(len(batch))
                handler(batch)
                self.advance_to(batch[-1][0])
                continue
            heapq.heappop(self._queue)
            self.now = time
            self._events_run += 1
            self._events_this_call += 1
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _drain_same_kind(
        self, kind: str, until: Optional[float]
    ) -> List[Tuple[float, Callable[[], None]]]:
        """Pop the maximal run of consecutive ``kind`` events off the head."""
        batch: List[Tuple[float, Callable[[], None]]] = []
        while self._queue:
            time, _, event_kind, callback = self._queue[0]
            if event_kind != kind:
                break
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            batch.append((time, callback))
        return batch

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending_events(self) -> int:
        return len(self._queue)
