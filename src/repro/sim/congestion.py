"""Link-level congestion analysis of RDN flow placements.

The paper's performance-debugging lesson (Section VII): on-chip bandwidth
issues are usually RDN congestion or PMU bank conflicts. This module
handles the RDN half at the link level: given the static flows a placed
kernel creates, it accumulates per-link demand over the mesh, finds
oversubscribed links, and produces the switch stall counters a profiling
session would read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.arch.config import RDNConfig
from repro.arch.perfcounters import CounterFile, StallCounter, UnitClass
from repro.arch.rdn import Mesh

#: A directed mesh link: (from_switch, to_switch).
Link = Tuple[Tuple[int, int], Tuple[int, int]]


@dataclass(frozen=True)
class PlacedFlow:
    """One data stream placed on the mesh: source, sinks, byte rate."""

    name: str
    src: Tuple[int, int]
    destinations: Tuple[Tuple[int, int], ...]
    rate: float

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError(f"{self.name}: needs at least one destination")
        if self.rate < 0:
            raise ValueError(f"{self.name}: negative rate")

    def links(self) -> List[Link]:
        """Multicast-tree links: union of dimension-order paths.

        A link shared by several destinations carries the flow once —
        the bandwidth benefit of hardware multicast.
        """
        seen = set()
        ordered: List[Link] = []
        for dst in self.destinations:
            path = Mesh.dimension_order_path(self.src, dst)
            for a, b in zip(path, path[1:]):
                if (a, b) not in seen:
                    seen.add((a, b))
                    ordered.append((a, b))
        return ordered


@dataclass
class LinkLoad:
    """Aggregate demand on one directed link."""

    link: Link
    capacity: float
    flows: List[PlacedFlow] = field(default_factory=list)

    @property
    def demand(self) -> float:
        return sum(f.rate for f in self.flows)

    @property
    def utilization(self) -> float:
        return self.demand / self.capacity if self.capacity > 0 else float("inf")

    @property
    def congested(self) -> bool:
        return self.utilization > 1.0


class CongestionAnalyzer:
    """Accumulates placed flows and reports mesh congestion."""

    def __init__(self, mesh: Mesh, config: RDNConfig = RDNConfig()) -> None:
        self.mesh = mesh
        self.config = config
        self._loads: Dict[Link, LinkLoad] = {}
        self._flows: List[PlacedFlow] = []

    def place(self, flow: PlacedFlow) -> None:
        for coord in (flow.src, *flow.destinations):
            if not self.mesh.in_bounds(coord):
                raise ValueError(f"{flow.name}: coordinate {coord} off-mesh")
        self._flows.append(flow)
        for link in flow.links():
            load = self._loads.get(link)
            if load is None:
                load = LinkLoad(link=link, capacity=self.config.link_bandwidth)
                self._loads[link] = load
            load.flows.append(flow)

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def loads(self) -> List[LinkLoad]:
        return list(self._loads.values())

    def congested_links(self) -> List[LinkLoad]:
        return sorted(
            (l for l in self._loads.values() if l.congested),
            key=lambda l: -l.utilization,
        )

    def worst_utilization(self) -> float:
        if not self._loads:
            return 0.0
        return max(l.utilization for l in self._loads.values())

    def flow_slowdown(self, flow: PlacedFlow) -> float:
        """Factor by which a flow is throttled by its worst shared link."""
        worst = 1.0
        for link in flow.links():
            load = self._loads.get(link)
            if load is not None:
                worst = max(worst, load.utilization)
        return worst

    def to_counters(self, window_cycles: int = 10_000) -> CounterFile:
        """Synthesise switch stall counters from link loads.

        A link at utilization U > 1 stalls its upstream switch output for
        ``(1 - 1/U)`` of the window — the counter signature a performance
        engineer would see in hardware.
        """
        counters = CounterFile()
        for link, load in self._loads.items():
            name = f"sw{link[0][0]}_{link[0][1]}->sw{link[1][0]}_{link[1][1]}"
            counter = StallCounter(name=name, unit_class=UnitClass.SWITCH)
            utilization = load.utilization
            if utilization > 1.0:
                stalled = round(window_cycles * (1 - 1 / utilization))
            else:
                stalled = 0
            counter.record(busy=window_cycles - stalled, stalled=stalled)
            counters.register(counter)
        return counters
