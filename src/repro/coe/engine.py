"""Throughput-oriented CoE serving engine: batching + copy/compute overlap.

The latency path (:mod:`repro.coe.serving`) serves every request as a
batch of one and pays every expert switch serially — the paper's Figure 1
decomposition. This module models the *throughput* story instead: a
saturated node draining a backlog of pre-routed requests as fast as the
hardware allows. Three levers, composed as policies:

- ``fifo`` — arrival order, but *consecutive* same-expert requests merge
  into one batched prefill/decode call (one switch, one weight read,
  shared roofline terms). This is the honest baseline: no reordering.
- ``affinity`` — bounded-window reordering (:func:`affinity_schedule`)
  first, so same-expert requests become adjacent and the groups grow.
- ``overlap`` — affinity grouping plus double-buffered expert activation:
  while group *i* executes, the DDR->HBM copy of group *i+1*'s expert
  runs on the otherwise-idle DMA engines, so the switch is (partly or
  fully) hidden behind compute. When the next expert is already resident
  the DMA warms the :class:`ExpertPredictor`'s best non-resident guess
  instead (the speculative case; an abandoned or useless copy costs
  nothing over the baseline — the bandwidth was idle).

The pipeline runs event-driven on :class:`repro.sim.engine.Simulator`:
group-start, DMA-complete, and group-finish events chain through the
queue, and the makespan is the simulator clock after the last completion.
Per-request latency (queueing included — every request is backlogged at
t=0) feeds the SLO percentiles via :func:`repro.coe.metrics.percentile`.

Every run records a :class:`repro.obs.Timeline`: router/prefill/decode
spans on the ``compute`` lane, demand DDR->HBM copies on the ``switch``
lane (recorded at true simulated timestamps), and speculative warms on
the ``prefetch`` lane. The report's switch totals and hidden-switch
fraction are *derived from that timeline* — the hidden time is literally
the overlap of the switch lane with the compute lane, so the stat and
the exported trace cannot disagree.

The engine itself is incremental: groups are :meth:`ServingEngine.submit`-ted
into a queue and drained by events on a simulator clock. A standalone
:meth:`ServingEngine.run` creates a private clock and drains a whole
backlog; the cluster engine (:mod:`repro.coe.cluster_engine`) instead
constructs many engines over one *shared* simulator, each with a
``lane_prefix`` (``node0/``, ``node1/``, ...) so every node's activity
lands on its own lanes of a single cross-node timeline. The queue is
also externally steerable — :meth:`ServingEngine.steal` removes queued
work for another replica, :meth:`ServingEngine.host` /
:meth:`ServingEngine.warm` land a replicated expert and pay its copy —
which is what cluster-level work stealing and online replication drive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union,
)

from repro.coe.cache import CachePolicyLike, LookaheadPolicy, PredictivePolicy
from repro.coe.columnar import (
    CompletedLog,
    drain as _columnar_drain,
    latency_values,
    lower_queue,
)
from repro.coe.decisions import DecisionLog
from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.coe.metrics import summarize_latencies
from repro.coe.policies import DrainMode, NodePolicy
from repro.coe.scheduling import (
    ExpertPredictor,
    RequestGroup,
    SchedulerLike,
    affinity_schedule,
    coalesce_groups,
    make_scheduler,
)
from repro.coe.serving import ExpertServer
from repro.obs import Timeline
from repro.sim.clock import EventSource
from repro.sim.engine import Simulator
from repro.systems.platforms import Platform

#: Legacy value-string tuple; :class:`repro.coe.policies.NodePolicy` is
#: the typed source of truth and coerces these (kept for back-compat).
POLICIES = NodePolicy.values()

#: Event kind tag of a whole-queue drain. All engines sharing one
#: simulator use the same tag, so back-to-back drains (e.g. every node's
#: t=0 drain in a cluster) merge into a single batched handler call.
DRAIN_EVENT_KIND = "coe-drain"


class EngineReentryError(RuntimeError):
    """A single-use engine was run a second time.

    :meth:`ServingEngine.run` (and :meth:`ClusterEngine.serve`) rebinds
    the simulator and resets the *queue* state, but the expert cache,
    its policy bookkeeping, the predictor's transition counts and the
    runtime stats all deliberately survive — so a second run on the
    same instance would start warm and report numbers no fresh run can
    reproduce (and before this guard, a stale ``_drained_until`` could
    leak a prior run's makespan into ``max(sim.run(), _drained_until)``).
    Construct a fresh engine per run instead.
    """


def group_phase_times(
    server: ExpertServer,
    group: RequestGroup,
    cache: Dict[Tuple[str, int, int, int], Tuple[float, float, float]],
) -> Tuple[float, float, float]:
    """Base (router_s, prefill_s, decode_s) of one group, memoized.

    The module-level form of the engine's phase memo, shared with the
    live backend (:mod:`repro.coe.live_engine`): both backends compute
    a group's execution time through this one function over the same
    :class:`ExpertServer` cost model, so every float that feeds a
    dispatch or admission decision is bitwise-identical across clocks.
    The memo key is cheap (a name and three ints) where the platform
    ``lru_cache``\\ s hash whole model configs per call.
    """
    key = group.phase_key
    base = cache.get(key)
    if base is None:
        _, batch, prompt, output = key
        router = server.router_time(batch=batch, prompt_tokens=prompt)
        prefill, decode = server.expert_time(
            group.expert, output, prompt, batch=batch
        )
        base = (router, prefill, decode)
        cache[key] = base
    return base


def _run_drain_batch(batch) -> None:
    """Batch handler for :data:`DRAIN_EVENT_KIND` events.

    Each callback replays its own engine's queue on a local clock and
    never touches the shared one, so running them back-to-back is
    exactly the event-by-event execution order.
    """
    for _, callback in batch:
        callback()


@dataclass(frozen=True)
class EngineRequest:
    """One pre-routed request in the engine's backlog."""

    request_id: int
    expert: ExpertProfile
    prompt_tokens: int = 256
    output_tokens: int = 20
    #: All requests are queued at t=0 (saturated-server regime); a later
    #: arrival only shrinks the reported queueing latency.
    arrival_s: float = 0.0
    #: Admission-control rank: under deadline pressure (node loss, SLO
    #: shedding) lower-priority requests are shed first.
    priority: int = 0


class CompletedRequest(NamedTuple):
    """Completion record of one request, with its group context.

    A NamedTuple rather than a dataclass: the engine materializes one of
    these per request on the hottest loop of a million-request sim, and
    tuple construction is several times cheaper than a frozen dataclass's
    per-field ``object.__setattr__``.
    """

    request_id: int
    expert: str
    batch: int
    arrival_s: float
    start_s: float
    finish_s: float
    output_tokens: int = 0

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class EngineReport:
    """Throughput and latency summary of one engine run."""

    policy: str
    platform: str
    requests: int
    groups: int
    makespan_s: float
    output_tokens: int
    switch_s: float
    hidden_switch_s: float
    speculative_prefetches: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    events_run: int
    #: HBM expert-cache policy of the run and its *demand* hit rate
    #: (speculative prefetcher traffic excluded — see RuntimeStats).
    cache_policy: str = "lru"
    demand_hit_rate: float = 0.0
    #: Admission-time scheduler the backlog went through (SchedulerName).
    scheduler: str = "fifo"
    #: NVMe->DDR promotions started ahead of demand by the pipelined
    #: prefetch path (0 unless ``pipeline_promotions`` was enabled).
    pipelined_promotions: int = 0
    completed: tuple = field(repr=False, default=())
    #: The run's full span record (compute / switch / prefetch lanes);
    #: export via :func:`repro.obs.write_chrome_trace`.
    timeline: Optional[Timeline] = field(repr=False, compare=False, default=None)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.output_tokens / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def switch_hidden_fraction(self) -> float:
        """Fraction of total switch time overlapped with execution."""
        return self.hidden_switch_s / self.switch_s if self.switch_s > 0 else 0.0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.groups if self.groups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary (benchmark harness + CLI)."""
        return {
            "policy": self.policy,
            "platform": self.platform,
            "requests": self.requests,
            "groups": self.groups,
            "mean_batch": round(self.mean_batch, 3),
            "makespan_s": self.makespan_s,
            "requests_per_second": self.requests_per_second,
            "tokens_per_second": self.tokens_per_second,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "switch_s": self.switch_s,
            "hidden_switch_s": self.hidden_switch_s,
            "switch_hidden_fraction": self.switch_hidden_fraction,
            "speculative_prefetches": self.speculative_prefetches,
            "events_run": self.events_run,
            "cache_policy": self.cache_policy,
            "demand_hit_rate": self.demand_hit_rate,
            "scheduler": self.scheduler,
            "pipelined_promotions": self.pipelined_promotions,
        }


class ServingEngine:
    """Drains a queue of pre-routed request groups through one platform.

    Standalone use: :meth:`run` a whole backlog on a private simulator.
    Cluster use: construct with an external (shared) ``simulator`` and a
    ``lane_prefix``, then :meth:`submit` groups; a cluster-level policy
    may additionally :meth:`steal` queued groups, :meth:`host` a
    replicated expert, and :meth:`warm` its DDR->HBM copy. The ``on_idle``
    and ``on_group_done`` hooks let that policy react to this engine
    draining or finishing work, on the shared clock.
    """

    def __init__(
        self,
        platform: Platform,
        library: ExpertLibrary,
        policy: str = "fifo",
        max_batch: int = 8,
        window: int = 16,
        reserved_hbm_bytes: Optional[int] = None,
        simulator: Optional[EventSource] = None,
        lane_prefix: str = "",
        cache_policy: CachePolicyLike = None,
        event_batching: bool = True,
        record_timeline: bool = True,
        decision_log: Optional[DecisionLog] = None,
        drain_mode: "Union[str, DrainMode, None]" = None,
        scheduler: SchedulerLike = None,
        tier_capacities: Optional[Dict[str, int]] = None,
        pipeline_promotions: bool = False,
    ) -> None:
        if max_batch < 1 or window < 1:
            raise ValueError("max_batch and window must be >= 1")
        self.policy = NodePolicy.coerce(policy).value
        if pipeline_promotions and self.policy == "overlap":
            raise ValueError(
                "pipeline_promotions is incompatible with the 'overlap' "
                "policy: overlap's speculative prefetches start at 'now' "
                "regardless of DMA occupancy, so sharing the prefetch lane "
                "with pipelined NVMe promotions would double-book the DMA"
            )
        #: Admission-time backlog reordering (:mod:`repro.coe.scheduling`)
        #: — applied once in :meth:`run`, before the windowed node policy.
        self.scheduler = make_scheduler(scheduler)
        self.max_batch = max_batch
        self.window = window
        self.lane_prefix = lane_prefix
        #: How queued groups execute (:class:`DrainMode`) — all modes
        #: byte-identical, see docs/PERFORMANCE.md. An explicit
        #: ``drain_mode`` wins; otherwise the legacy ``event_batching``
        #: flag maps True -> columnar (the full fast path) and
        #: False -> reference, preserving every existing call site's
        #: meaning of "fast" and "event-by-event seed-equivalent".
        if drain_mode is None:
            mode = DrainMode.COLUMNAR if event_batching else DrainMode.REFERENCE
        else:
            mode = DrainMode.coerce(drain_mode)
        self.drain_mode = mode.value
        #: Fast path: drain the whole queue in one simulator event with a
        #: local clock instead of one begin/finish event pair per group.
        #: Equivalent by construction (same state mutations, same order,
        #: same timestamps — see docs/PERFORMANCE.md) and automatically
        #: suppressed whenever an external party could interleave with
        #: the queue mid-run (cluster steal hooks, fault injection).
        self.event_batching = mode is not DrainMode.REFERENCE
        #: ``False`` skips building a span timeline in :meth:`run` — the
        #: report's timeline-derived switch stats then read 0.0.
        self.record_timeline = record_timeline
        #: (expert name, batch, prompt, output) -> base (router_s,
        #: prefill_s, decode_s) with no slow factor applied. Seeded in
        #: bulk by :meth:`precompute_phases`, filled lazily otherwise.
        self._phase_cache: Dict[Tuple[str, int, int, int],
                                Tuple[float, float, float]] = {}
        self.server = ExpertServer(
            platform, library, reserved_hbm_bytes=reserved_hbm_bytes,
            cache_policy=cache_policy, tier_capacities=tier_capacities,
        )
        self._predictor = ExpertPredictor()
        # A predictive cache policy without its own predictor reads the
        # engine's — the same Markov model the overlap prefetcher uses.
        runtime_policy = self.server.runtime.policy
        if (isinstance(runtime_policy, PredictivePolicy)
                and runtime_policy.predictor is None):
            runtime_policy.predictor = self._predictor
        #: A lookahead policy reads this engine's remaining queue as its
        #: backlog window: the queue holds exactly the groups not yet
        #: begun, in scheduled order, at every eviction decision point.
        self._lookahead = isinstance(runtime_policy, LookaheadPolicy)
        if self._lookahead:
            runtime_policy.bind_backlog(
                lambda: (g.expert.name for g in self._queue)
            )
        self.cache_policy = runtime_policy.name
        #: Whether the CoServe-style promotion pipeline is live: it needs
        #: a bounded DDR tier (otherwise there is nothing to promote).
        self.pipeline_promotions = bool(pipeline_promotions)
        self._pipeline_active = (
            self.pipeline_promotions
            and self.server.runtime.ddr_budget_bytes is not None
        )
        if decision_log is not None:
            # The node's demand cache decisions (hit / miss+victims)
            # stream under its node name — ``"node0"`` standalone,
            # matching what the live backend records for the same node.
            stream = lane_prefix.rstrip("/") or "node0"
            self.server.runtime.attach_decisions(decision_log, stream)
        #: Hooks a cluster-level scheduler installs: ``on_idle(engine)``
        #: fires when the queue drains, ``on_group_done(engine, group)``
        #: after every completed group. Both run on the simulator clock.
        self.on_idle: Optional[Callable[["ServingEngine"], None]] = None
        self.on_group_done: Optional[
            Callable[["ServingEngine", RequestGroup], None]
        ] = None
        self._sim: Optional[EventSource] = None
        #: One-shot guard for :meth:`run` (see EngineReentryError): the
        #: runtime cache, policy bookkeeping and predictor survive a
        #: rebind by design, so a reused engine cannot reproduce a fresh
        #: run's numbers.
        self._ran = False
        self._reset_run_state()
        if simulator is not None:
            self.bind(simulator)

    # ------------------------------------------------------------------
    # Binding to a clock
    # ------------------------------------------------------------------
    def lane(self, base: str) -> str:
        """The timeline lane this engine uses for ``base`` activity."""
        return f"{self.lane_prefix}{base}"

    def _reset_run_state(self) -> None:
        self._queue: "deque[RequestGroup]" = deque()
        self._busy = False
        self._begin_scheduled = False
        self._busy_until_s = 0.0
        #: When the (single) DMA path last frees up: demand copies queue
        #: behind each other so the switch lane stays physically serial.
        self._dma_free_s = 0.0
        #: Expert name -> completion time of its most recent demand copy;
        #: execution of a freshly copied expert waits for this.
        self._copy_done: Dict[str, float] = {}
        #: At most one in-flight speculative copy: (name, start_s, copy_s).
        self._spec_open: List[tuple] = []
        #: The executing group: (group, exec_start, phase times, index).
        #: Compute spans are recorded retrospectively at group finish so a
        #: crashed node's partial work truncates at the crash instead of
        #: painting phantom compute past its death.
        self._current: Optional[tuple] = None
        self._groups_started = 0
        self.groups_done = 0
        self.speculative_prefetches = 0
        #: Completion store. Columnar mode uses a :class:`CompletedLog`
        #: so vectorized runs append whole column blocks; its bound
        #: ``append`` keeps the scalar paths (decision points, the
        #: batched fallback) as cheap as appending to the plain list the
        #: other modes keep. Either way consumers see per-request
        #: :class:`CompletedRequest` records in completion order.
        self.completed: "Union[List[CompletedRequest], CompletedLog]" = (
            CompletedLog() if self.drain_mode == DrainMode.COLUMNAR.value
            else []
        )
        #: Fail-stop flag: a halted engine ignores every already-scheduled
        #: simulator callback (crash semantics — see ``halt``).
        self._halted = False
        #: Transient straggler multiplier (>= 1.0) applied to the phase
        #: times of every group *started* while it is raised.
        self.slow_factor = 1.0
        #: Armed DDR->HBM copy failures: the next N demand copies fail
        #: once each and are retried on the DMA clock.
        self._copy_faults_armed = 0
        self.copy_retries = 0
        #: Extra DMA occupancy paid by injected-fault retries: the failed
        #: attempt's transfer ran and was discarded. Explicitly separate
        #: from RuntimeStats.switch_time_s, whose contract is that
        #: failures contribute no bytes and no copy time.
        self.retry_dma_s = 0.0
        #: End of the last group completed by a batched drain. Drains run
        #: on a local clock and never advance a (possibly shared)
        #: simulator clock, so the makespan is
        #: ``max(sim.run(), drained_until)`` across engines.
        self._drained_until = 0.0

    def bind(self, simulator: EventSource) -> None:
        """Attach to a (possibly shared) event source, resetting state.

        The engine only ever uses the narrow
        :class:`repro.sim.clock.EventSource` surface — ``now``,
        ``schedule``/``schedule_at``, ``record_span``, the batching
        accounting — never the concrete simulator, which is what keeps
        every decision this engine makes clock-agnostic. (The
        :class:`~repro.sim.engine.Simulator` satisfies the protocol
        structurally; :meth:`run` still constructs one to *drive* a
        standalone backlog, because something has to pump the events.)
        """
        self._sim = simulator
        self._reset_run_state()

    def unbind(self) -> None:
        self._sim = None

    # ------------------------------------------------------------------
    # Queue introspection / steering (the cluster scheduler's surface)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def last_queued_expert(self) -> Optional[str]:
        """Expert of the queue tail (affinity routing extends its run)."""
        return self._queue[-1].expert.name if self._queue else None

    def queued_expert_counts(self) -> Dict[str, int]:
        """Queued group count per expert name (replication signal)."""
        counts: Dict[str, int] = {}
        for group in self._queue:
            counts[group.expert.name] = counts.get(group.expert.name, 0) + 1
        return counts

    def estimated_backlog_s(self) -> float:
        """Closed-form estimate of queued + in-flight work (routing cost)."""
        now = self._sim.now if self._sim is not None else 0.0
        total = max(0.0, self._busy_until_s - now) if self._busy else 0.0
        return total + sum(self._group_exec_time(g) for g in self._queue)

    def submit(self, group: RequestGroup) -> None:
        """Enqueue one group; starts it immediately if the engine is idle."""
        if self._halted:
            raise RuntimeError("cannot submit to a halted (crashed) engine")
        self._queue.append(group)
        self._kick()

    def steal(self, wanted: Callable[[ExpertProfile], bool]) -> Optional[RequestGroup]:
        """Remove and return the latest-queued group whose expert satisfies
        ``wanted``, or None.

        Scans from the tail (the work least likely to be prefetched). The
        head is only up for grabs while the engine is busy executing —
        when idle, the head's begin event is already on the clock.
        """
        floor = 0 if self._busy else 1
        for i in range(len(self._queue) - 1, floor - 1, -1):
            if wanted(self._queue[i].expert):
                group = self._queue[i]
                del self._queue[i]
                return group
        return None

    def host(self, expert: ExpertProfile) -> None:
        """Add a replicated expert to this node's library."""
        self.server.library.add(expert)

    def warm(self, expert: ExpertProfile) -> Optional[float]:
        """Pay the DDR->HBM copy for a replicated expert on this node.

        Returns the copy's completion time on the sim clock, or None when
        copying now would evict an expert the pipeline still needs (the
        copy then happens on demand when the expert's first group begins).
        """
        runtime = self.server.runtime
        if runtime.is_resident(expert):
            return self._sim.now
        needed = {g.expert.name for g in list(self._queue)[:2]}
        if not needed.isdisjoint(runtime.would_evict(expert)):
            return None
        return self._demand_copy(expert, speculative=True)

    # ------------------------------------------------------------------
    # Fault surface (driven by the cluster's FaultInjector)
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        return self._halted

    def halt(self) -> None:
        """Fail-stop this engine at the current simulated time.

        Already-scheduled simulator callbacks become no-ops; the group
        executing right now is cut short — its partial compute records as
        a truncated ``lost`` span ending at the crash instant, and none
        of its requests complete (they stay re-dispatchable, which is
        what makes cluster-level recovery exactly-once). Queued work and
        the interrupted group remain available via :meth:`drain`.
        """
        if self._halted:
            return
        self._halted = True
        now = self._sim.now if self._sim is not None else 0.0
        if self._sim is not None:
            self.flush_speculation(now)
        if self._current is not None:
            _, exec_start, _, _ = self._current
            if self._sim is not None and now > exec_start:
                self._sim.record_span(
                    f"lost:{self._current[0].expert.name}",
                    self.lane("compute"), "lost",
                    start_s=exec_start, end_s=now,
                    args={"batch": self._current[0].batch,
                          "reason": "node crash"},
                )

    def drain(self) -> List[RequestGroup]:
        """Remove and return all unfinished groups (in-flight one first).

        Only meaningful on a halted engine: the cluster's recovery path
        re-dispatches exactly these groups to surviving nodes.
        """
        orphans: List[RequestGroup] = []
        if self._current is not None:
            orphans.append(self._current[0])
            self._current = None
        orphans.extend(self._queue)
        self._queue.clear()
        return orphans

    def inject_copy_faults(self, count: int = 1) -> None:
        """Arm ``count`` one-shot DDR->HBM demand-copy failures."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._copy_faults_armed += count

    # ------------------------------------------------------------------
    def _order(self, requests: Sequence[EngineRequest]) -> List[EngineRequest]:
        if self.policy == "fifo":
            return list(requests)
        return affinity_schedule(requests, window=self.window)

    def _base_phase_times(self, group: RequestGroup) -> Tuple[float, float, float]:
        """Un-stretched (router_s, prefill_s, decode_s), memoized.

        Delegates to the shared :func:`group_phase_times` so the live
        backend computes the identical floats from the same memo shape.
        """
        return group_phase_times(self.server, group, self._phase_cache)

    def _group_phase_times(self, group: RequestGroup) -> Tuple[float, float, float]:
        """(router_s, prefill_s, decode_s) of one batched group."""
        router, prefill, decode = self._base_phase_times(group)
        # A straggler window stretches every phase of a group started
        # inside it (thermal throttling, a noisy neighbour, a flaky link).
        factor = self.slow_factor
        return router * factor, prefill * factor, decode * factor

    def precompute_phases(self, groups: Sequence[RequestGroup]) -> int:
        """Seed the phase memo for ``groups`` with vectorized cost math.

        One :meth:`Platform.prefill_time_batch` /
        :meth:`Platform.decode_span_time_batch` call per distinct model
        replaces four memoized scalar evaluations per distinct group
        shape. The vectorized entry points are bitwise-equal to the
        scalar ones, so seeding the memo this way cannot change a single
        simulated timestamp. Returns the number of shapes computed.
        """
        pending: Dict[Tuple[str, int, int, int], RequestGroup] = {}
        for group in groups:
            key = group.phase_key
            if key not in self._phase_cache and key not in pending:
                pending[key] = group
        if not pending:
            return 0
        platform = self.server.platform
        router_model = self.server.router.model
        keys = list(pending)
        batches = [k[1] for k in keys]
        prompts = [k[2] for k in keys]
        outputs = [k[3] for k in keys]
        router_s = (
            platform.prefill_time_batch(router_model, batches, prompts)
            + platform.decode_token_time_batch(router_model, batches, prompts)
        )
        # Expert phases vectorize per distinct model architecture.
        prefill_s = [0.0] * len(keys)
        decode_s = [0.0] * len(keys)
        by_model: Dict[object, List[int]] = {}
        for i, key in enumerate(keys):
            by_model.setdefault(pending[key].expert.model, []).append(i)
        for model, idxs in by_model.items():
            pre = platform.prefill_time_batch(
                model, [batches[i] for i in idxs], [prompts[i] for i in idxs]
            )
            dec = platform.decode_span_time_batch(
                model,
                [outputs[i] for i in idxs],
                [batches[i] for i in idxs],
                [prompts[i] for i in idxs],
            )
            for j, i in enumerate(idxs):
                prefill_s[i] = float(pre[j])
                decode_s[i] = float(dec[j])
        for i, key in enumerate(keys):
            self._phase_cache[key] = (
                float(router_s[i]), prefill_s[i], decode_s[i]
            )
        return len(keys)

    def _group_exec_time(self, group: RequestGroup) -> float:
        """Batched router + prefill + closed-form decode for one group."""
        router, prefill, decode = self._group_phase_times(group)
        return router + prefill + decode

    # ------------------------------------------------------------------
    # The event pipeline
    # ------------------------------------------------------------------
    def flush_speculation(self, now: float) -> None:
        """Close any in-flight speculative copy span at ``now``.

        A new DMA transfer aborts an in-flight speculative copy; its span
        ends at min(natural completion, abort time). Call once at end of
        run to close a copy the makespan cut short.
        """
        while self._spec_open:
            name, start, copy_s = self._spec_open.pop()
            end = min(start + copy_s, now)
            self._sim.record_span(
                name, self.lane("prefetch"), "prefetch",
                start_s=start, end_s=end,
                args={"copy_s": copy_s, "abandoned": end < start + copy_s},
            )

    def _demand_copy(
        self,
        expert: ExpertProfile,
        *,
        speculative: bool = False,
        now: Optional[float] = None,
    ) -> float:
        """Activate a non-resident expert; the copy takes the DMA's next
        free slot and its span lands on this engine's switch lane.

        An armed copy fault makes the first attempt fail after consuming
        its full DMA window (the transfer ran and was discarded); the
        retry immediately follows, so one injected fault costs exactly
        one extra copy duration and shows up as a ``fault`` span. That
        extra DMA time is accounted in :attr:`retry_dma_s` — never in
        ``RuntimeStats``: the runtime's copy succeeded, so booking a
        ``failures`` tick there would violate its contract that failures
        contribute no bytes and no switch time.

        ``speculative=True`` marks prefetcher/replication warms so the
        runtime books them apart from demand traffic.
        """
        sim = self._sim
        if now is None:
            now = sim.now  # event path; batched drains pass a local clock
        self.flush_speculation(now)
        start = max(now, self._dma_free_s)
        event = self.server.runtime.activate(
            expert, span=False, speculative=speculative
        )
        if self._copy_faults_armed > 0 and event.time_s > 0:
            self._copy_faults_armed -= 1
            self.copy_retries += 1
            self.retry_dma_s += event.time_s
            sim.record_span(
                f"copy-failed:{expert.name}", self.lane("switch"), "fault",
                start_s=start, end_s=start + event.time_s,
                args={"bytes_up": event.bytes_up, "failed": True,
                      "retried": True},
            )
            start += event.time_s
        done = start + event.time_s
        if event.time_s > 0:
            sim.record_span(
                f"copy:{expert.name}", self.lane("switch"), "switch",
                start_s=start, end_s=done,
                args={
                    "hit": False,
                    "speculative": speculative,
                    "policy": event.policy,
                    "bytes_up": event.bytes_up,
                    "bytes_down": event.bytes_down,
                    "evicted": list(event.evicted),
                    "evicted_why": list(event.evicted_why),
                },
            )
        self._dma_free_s = done
        self._copy_done[expert.name] = done
        return done

    def _pipeline_promote(self, now: float) -> None:
        """Start the queue head's NVMe->DDR promotion behind this group.

        The CoServe pipelining trick: called right after the current
        group's activation on every drain path, it peeks the scheduler's
        reordered backlog and, if the next group's expert is still
        NVMe-resident, commits its promotion
        (:meth:`CoERuntime.promote_to_ddr`) and books the DMA occupancy
        on the prefetch lane starting at the DMA's next free slot — so
        the copy overlaps this group's compute and the upcoming demand
        miss pays only the DDR->HBM hop. Pure bookkeeping on the local
        clock (no new simulator events), so the reference and batched
        drains stay bitwise-identical; promotions are never recorded in
        the decision log (prefetcher traffic, not a policy decision), so
        sim/live cross-check streams are unchanged.
        """
        if not self._pipeline_active or not self._queue:
            return
        nxt = self._queue[0].expert
        runtime = self.server.runtime
        if runtime.tier_of(nxt.name) != "nvme":
            return
        promo = runtime.promote_to_ddr(nxt)
        if promo.time_s <= 0:
            return
        start = max(now, self._dma_free_s)
        done = start + promo.time_s
        self._dma_free_s = done
        self._sim.record_span(
            f"promote:{nxt.name}", self.lane("prefetch"), "promote",
            start_s=start, end_s=done,
            args={
                "pipelined": True,
                "bytes_read": promo.bytes_read,
                "bytes_written": promo.bytes_written,
                "demoted": list(promo.demoted),
            },
        )

    def _batch_ok(self) -> bool:
        """Whether draining the whole queue in one event is equivalent.

        Hooks are the cluster scheduler's surface for interleaving with
        this queue mid-run (stealing, replication); with any installed,
        every group must go through its own begin/finish events so the
        hooks observe real intermediate states. Fault schedules disable
        batching at construction time (see :class:`ClusterEngine`).
        """
        return (self.event_batching and self.on_idle is None
                and self.on_group_done is None)

    def _kick(self) -> None:
        """Schedule the queue head's begin event if the engine is idle."""
        if (self._sim is None or self._halted or self._busy
                or self._begin_scheduled or not self._queue):
            return
        sim = self._sim
        head = self._queue[0].expert
        start_at = sim.now
        if self.server.runtime.is_resident(head):
            start_at = max(start_at, self._copy_done.get(head.name, start_at))
        self._begin_scheduled = True
        if self._batch_ok():
            # One tagged event drains the whole queue on a local clock;
            # consecutive drains (one per node at t=0 in a cluster) merge
            # into a single handler call via the simulator's batch-drain
            # machinery.
            sim.schedule_at(
                start_at,
                lambda: self._drain_queue(start_at),
                kind=DRAIN_EVENT_KIND,
            )
        else:
            sim.schedule_at(start_at, self._begin_next)

    def _begin_next(self) -> None:
        if self._halted:
            return
        self._begin_scheduled = False
        if self._busy:
            return
        if not self._queue:
            self._notify_idle()
            return
        sim = self._sim
        runtime = self.server.runtime
        group = self._queue.popleft()
        self._busy = True
        index = self._groups_started
        self._groups_started += 1
        router_s, prefill_s, decode_s = self._group_phase_times(group)
        # The predictor always observes the demand stream: a predictive
        # cache policy needs it even when the overlap prefetcher is off.
        self._predictor.observe(group.expert)
        if runtime.is_resident(group.expert):
            runtime.activate(group.expert)  # hit: free recency refresh
            exec_start = max(
                sim.now, self._copy_done.get(group.expert.name, sim.now)
            )
        else:
            exec_start = self._demand_copy(group.expert)
        self._pipeline_promote(sim.now)
        if self.policy == "overlap" and self._queue:
            # While this group executes, the DMA engines prefetch the
            # next queued expert (or speculate when it is already here).
            protect = group.expert.name
            if exec_start <= sim.now:
                self._prefetch_next(protect)
            else:
                sim.schedule_at(
                    exec_start, lambda: self._prefetch_next(protect)
                )
        end = exec_start + router_s + prefill_s + decode_s
        # Phase spans are recorded at finish time (see halt): the same
        # timestamps either way, but a crash truncates honestly.
        self._current = (group, exec_start,
                         (router_s, prefill_s, decode_s), index)
        self._busy_until_s = end
        sim.schedule_at(end, self._finish_group)

    def _prefetch_next(
        self, protected_name: str, now: Optional[float] = None
    ) -> None:
        """Warm the queue head's expert on the otherwise-idle DMA engines."""
        if self._halted or not self._queue:
            return
        if now is None:
            now = self._sim.now  # event path; drains pass a local clock
        runtime = self.server.runtime
        nxt = self._queue[0].expert
        if runtime.is_resident(nxt):
            self.flush_speculation(now)
            # Recency refresh, free hit — speculative: the demand access
            # happens when the group actually begins.
            runtime.activate(nxt, speculative=True)
            # The DMA is idle this window: warm the predictor's best
            # non-resident guess. A speculative copy may evict cold LRU
            # tails but must never displace the experts the pipeline
            # still needs (the one executing and the one up next).
            protected = {nxt.name, protected_name}
            guess = next(
                (c for c in self._predictor.iter_candidates()
                 if not runtime.is_resident(c)
                 and protected.isdisjoint(runtime.would_evict(c))),
                None,
            )
            if guess is not None:
                event = runtime.activate(guess, span=False, speculative=True)
                self._spec_open.append(
                    (f"copy:{guess.name}", now, event.time_s)
                )
                self.speculative_prefetches += 1
        else:
            self._demand_copy(nxt, speculative=True, now=now)

    def _complete_group(
        self,
        group: RequestGroup,
        exec_started: float,
        phase_times: Tuple[float, float, float],
        index: int,
        finish_s: float,
    ) -> None:
        """Record one finished group: phase spans + completion records.

        Shared by the event path (``finish_s`` is the clock at the finish
        event) and the batched drain (``finish_s`` is the local clock);
        both pass ``exec_started + sum(phase_times)``, so the records are
        bitwise-identical either way.
        """
        sim = self._sim
        if sim.timeline is not None:
            end = exec_started
            for category, duration in zip(("router", "prefill", "decode"),
                                          phase_times):
                if duration > 0:
                    sim.record_span(
                        f"{category}:{group.expert.name}",
                        self.lane("compute"), category,
                        start_s=end, end_s=end + duration,
                        args={"group": index, "batch": group.batch},
                    )
                end += duration
        expert_name = group.expert.name
        batch = group.batch
        append = self.completed.append
        for req in group.requests:
            append(CompletedRequest(
                request_id=req.request_id,
                expert=expert_name,
                batch=batch,
                arrival_s=req.arrival_s,
                start_s=exec_started,
                finish_s=finish_s,
                output_tokens=req.output_tokens,
            ))
        self.groups_done += 1

    def _finish_group(self) -> None:
        if self._halted or self._current is None:
            return
        group, exec_started, phase_times, index = self._current
        self._current = None
        self._complete_group(
            group, exec_started, phase_times, index, finish_s=self._sim.now
        )
        self._busy = False
        if self.on_group_done is not None:
            self.on_group_done(self, group)
        if self._queue:
            self._kick()
        else:
            self._notify_idle()

    def _drain_queue(self, start_at: float) -> None:
        """One whole-queue drain event: pick the fastest equivalent path.

        ``columnar`` mode vectorizes the drain whenever no per-group
        Python decision is inherent to the configuration; otherwise —
        the speculative ``overlap`` policy (a prefetch decision per
        group), a span-traced run (a timeline record per phase),
        pipelined NVMe promotions (a tier peek per group), or a
        lookahead cache policy (whose backlog window is the live queue
        the columnar path clears up front) — it falls back to the
        batched loop *for this drain*. Both paths are byte-identical in
        every simulated output, so the fallback is a pure implementation
        choice, invisible in reports.
        """
        if (self.drain_mode == "columnar" and self.policy != "overlap"
                and not self._pipeline_active and not self._lookahead
                and self._sim.timeline is None):
            self._drain_columnar(start_at)
        else:
            self._drain_batched(start_at)

    def _drain_columnar(self, start_at: float) -> None:
        """Drain the whole queue through the columnar (SoA) core.

        Lowers the queue to parallel arrays and hands them to
        :func:`repro.coe.columnar.drain`, which timestamps maximal
        resident-hit runs with one cumsum each and replays the batched
        loop's scalar code at cache-decision points. Event crediting and
        end-of-drain bookkeeping mirror :meth:`_drain_batched`: two
        logical events per group (begin + finish; no overlap prefetch
        exists on this path by construction), the drain event itself
        already counted by the simulator.
        """
        if self._halted:
            return
        self._begin_scheduled = False
        if self._busy:
            return
        if not self._queue:
            self._notify_idle()
            return
        groups = list(self._queue)
        self._queue.clear()
        cols = lower_queue(self, groups)
        end = _columnar_drain(self, cols, start_at)
        n = len(groups)
        self._groups_started += n
        self.groups_done += n
        self._drained_until = max(self._drained_until, end)
        self._sim.count_events(max(0, 2 * n - 1))
        self._notify_idle()

    def _drain_batched(self, start_at: float) -> None:
        """Drain the whole queue in one simulator event on a local clock.

        Replays exactly the begin -> (deferred prefetch) -> finish event
        chain of the reference path, group by group, threading an
        explicit ``now`` instead of reading the shared clock. State
        mutations (predictor observations, runtime activations, DMA
        bookkeeping, spans, completion records) happen in the identical
        order with the identical timestamps, which is what the
        batched-equivalence property test asserts. The shared clock is
        never advanced — a later-scheduled drain of another engine on the
        same simulator must still see its own scheduled time — so the run
        end is published via :attr:`_drained_until` and folded into the
        makespan as ``max(sim.run(), drained_until)``.
        """
        if self._halted:
            return
        self._begin_scheduled = False
        if self._busy:
            return
        if not self._queue:
            self._notify_idle()
            return
        # Everything touched per iteration is hoisted to a local — this
        # loop replaces the whole event pipeline on million-group runs.
        sim = self._sim
        runtime = self.server.runtime
        is_resident = runtime.is_resident
        activate = runtime.activate
        observe = self._predictor.observe
        copy_done = self._copy_done
        phase_cache = self._phase_cache
        queue = self._queue
        popleft = queue.popleft
        completed_append = self.completed.append
        overlap = self.policy == "overlap"
        pipelining = self._pipeline_active
        tracing = sim.timeline is not None
        index = self._groups_started
        groups_done = 0
        now = start_at
        #: Events the reference path would have run for this same work:
        #: a begin + a finish per group, plus one per deferred prefetch.
        logical = 0
        while queue:
            group = popleft()
            expert = group.expert
            expert_name = expert.name
            base = phase_cache.get(group.phase_key)
            if base is None:
                base = self._base_phase_times(group)
            factor = self.slow_factor
            if factor != 1.0:
                # x * 1.0 is bitwise x, so skipping the common no-op
                # stretch cannot change a timestamp.
                base = (base[0] * factor, base[1] * factor,
                        base[2] * factor)
            observe(expert)
            if is_resident(expert):
                activate(expert)  # hit: free recency refresh
                done = copy_done.get(expert_name)
                exec_start = now if done is None or done <= now else done
            else:
                exec_start = self._demand_copy(expert, now=now)
            if pipelining:
                self._pipeline_promote(now)
            if overlap and queue:
                if exec_start > now:
                    # The reference path defers this to its own event at
                    # exec_start; nothing else of this engine runs in
                    # between, so replaying it inline at that time is
                    # the same interleaving.
                    logical += 1
                    self._prefetch_next(expert_name, now=exec_start)
                else:
                    self._prefetch_next(expert_name, now=now)
            end = exec_start + base[0] + base[1] + base[2]
            self._busy_until_s = end
            if tracing:
                self._complete_group(group, exec_start, base, index,
                                     finish_s=end)
            else:
                batch = len(group.requests)
                for req in group.requests:
                    completed_append(CompletedRequest(
                        req.request_id, expert_name, batch, req.arrival_s,
                        exec_start, end, req.output_tokens,
                    ))
                groups_done += 1
            index += 1
            logical += 2
            now = end
            if queue:
                head_name = queue[0].expert.name
                done = copy_done.get(head_name)
                if done is not None and done > now and is_resident(
                        queue[0].expert):
                    now = done
        self._groups_started = index
        self.groups_done += groups_done
        self._drained_until = max(self._drained_until, now)
        # The drain event itself was already counted by the simulator.
        sim.count_events(max(0, logical - 1))
        self._notify_idle()

    def _notify_idle(self) -> None:
        if self.on_idle is not None:
            self.on_idle(self)
        self._kick()  # the idle hook may have stolen work into the queue

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[EngineRequest]) -> EngineReport:
        """Serve a whole backlog on a private clock; returns the report.

        Engines are single-use: a second :meth:`run` raises
        :class:`EngineReentryError` (cache/predictor/stats state
        survives the rebind, so a reused engine starts warm and cannot
        reproduce a fresh run). Construct a new engine per run.
        """
        if self._ran:
            raise EngineReentryError(
                "this ServingEngine already ran; cache, predictor and "
                "stats state persists across rebinds — construct a fresh "
                "engine per run"
            )
        self._ran = True
        if not requests:
            raise ValueError("empty request backlog")
        admitted = self.scheduler.order(requests)
        groups = coalesce_groups(self._order(admitted), self.max_batch)
        timeline = Timeline() if self.record_timeline else None
        sim = Simulator(timeline=timeline)
        self.bind(sim)
        try:
            sim.set_batch_handler(DRAIN_EVENT_KIND, _run_drain_batch)
            self.precompute_phases(groups)
            self._queue.extend(groups)
            self._kick()
            makespan = max(sim.run(), self._drained_until)
            self.flush_speculation(makespan)
            # A halted engine can finish with zero completions; the
            # summary handles the empty sample (zeros, no div-by-zero).
            latencies = latency_values(self.completed)
            summary = summarize_latencies(latencies)
            report = EngineReport(
                policy=self.policy,
                platform=self.server.platform.name,
                requests=len(self.completed),
                groups=len(groups),
                makespan_s=makespan,
                output_tokens=sum(r.output_tokens for r in requests),
                switch_s=(timeline.busy_s(self.lane("switch"))
                          if timeline is not None else 0.0),
                hidden_switch_s=(timeline.overlap_s(
                    self.lane("switch"), self.lane("compute")
                ) if timeline is not None else 0.0),
                speculative_prefetches=self.speculative_prefetches,
                p50_s=summary.p50_s,
                p95_s=summary.p95_s,
                p99_s=summary.p99_s,
                mean_s=summary.mean_s,
                events_run=sim.events_run,
                cache_policy=self.cache_policy,
                demand_hit_rate=self.server.runtime.stats.hit_rate,
                scheduler=self.scheduler.name,
                pipelined_promotions=(
                    self.server.runtime.stats.pipelined_promotions
                ),
                completed=tuple(self.completed),
                timeline=timeline,
            )
        finally:
            self.unbind()
        return report

    def serve(self, requests: Sequence[EngineRequest]) -> EngineReport:
        """Alias of :meth:`run` satisfying :class:`repro.coe.api.Server`."""
        return self.run(requests)


# ----------------------------------------------------------------------
# Workload + comparison helpers (benchmark harness, CLI, examples)
# ----------------------------------------------------------------------


def zipf_request_stream(
    library: ExpertLibrary,
    num_requests: int,
    alpha: float = 1.1,
    seed: int = 1234,
    prompt_tokens: int = 256,
    output_tokens: int = 20,
) -> List[EngineRequest]:
    """A skewed (Zipf) pre-routed request stream over a library.

    Real CoE traffic concentrates on a few hot experts (the router's
    domain mix is not uniform); rank-``r`` experts draw with weight
    ``r^-alpha``. Deterministic under ``seed``.
    """
    import random

    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(len(library))]
    experts = rng.choices(library.experts, weights=weights, k=num_requests)
    return [
        EngineRequest(
            request_id=i,
            expert=expert,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )
        for i, expert in enumerate(experts)
    ]


def compare_policies(
    platform: Platform,
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    policies: Sequence[str] = POLICIES,
    max_batch: int = 8,
    window: int = 16,
) -> Dict[str, EngineReport]:
    """Run the same backlog under each policy on a fresh engine."""
    reports: Dict[str, EngineReport] = {}
    for policy in policies:
        engine = ServingEngine(
            platform, library, policy=policy, max_batch=max_batch, window=window
        )
        reports[policy] = engine.run(requests)
    return reports
