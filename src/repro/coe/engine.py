"""Throughput-oriented CoE serving engine: batching + copy/compute overlap.

The latency path (:mod:`repro.coe.serving`) serves every request as a
batch of one and pays every expert switch serially — the paper's Figure 1
decomposition. This module models the *throughput* story instead: a
saturated node draining a backlog of pre-routed requests as fast as the
hardware allows. Three levers, composed as policies:

- ``fifo`` — arrival order, but *consecutive* same-expert requests merge
  into one batched prefill/decode call (one switch, one weight read,
  shared roofline terms). This is the honest baseline: no reordering.
- ``affinity`` — bounded-window reordering (:func:`affinity_schedule`)
  first, so same-expert requests become adjacent and the groups grow.
- ``overlap`` — affinity grouping plus double-buffered expert activation:
  while group *i* executes, the DDR->HBM copy of group *i+1*'s expert
  runs on the otherwise-idle DMA engines, so the switch is (partly or
  fully) hidden behind compute. When the next expert is already resident
  the DMA warms the :class:`ExpertPredictor`'s best non-resident guess
  instead (the speculative case; an abandoned or useless copy costs
  nothing over the baseline — the bandwidth was idle).

The pipeline runs event-driven on :class:`repro.sim.engine.Simulator`:
group-start, DMA-complete, and group-finish events chain through the
queue, and the makespan is the simulator clock after the last completion.
Per-request latency (queueing included — every request is backlogged at
t=0) feeds the SLO percentiles via :func:`repro.coe.metrics.percentile`.

Every run records a :class:`repro.obs.Timeline`: router/prefill/decode
spans on the ``compute`` lane, demand DDR->HBM copies on the ``switch``
lane (recorded by the runtime at true simulated timestamps), and
speculative warms on the ``prefetch`` lane. The report's switch totals
and hidden-switch fraction are *derived from that timeline* — the
hidden time is literally the overlap of the switch lane with the
compute lane, so the stat and the exported trace cannot disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.coe.metrics import percentile
from repro.coe.scheduling import (
    ExpertPredictor,
    RequestGroup,
    affinity_schedule,
    coalesce_groups,
)
from repro.coe.serving import CoEServer
from repro.obs import Timeline
from repro.sim.engine import Simulator
from repro.systems.platforms import Platform

POLICIES = ("fifo", "affinity", "overlap")


@dataclass(frozen=True)
class EngineRequest:
    """One pre-routed request in the engine's backlog."""

    request_id: int
    expert: ExpertProfile
    prompt_tokens: int = 256
    output_tokens: int = 20
    #: All requests are queued at t=0 (saturated-server regime); a later
    #: arrival only shrinks the reported queueing latency.
    arrival_s: float = 0.0


@dataclass(frozen=True)
class CompletedRequest:
    """Completion record of one request, with its group context."""

    request_id: int
    expert: str
    batch: int
    arrival_s: float
    start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class EngineReport:
    """Throughput and latency summary of one engine run."""

    policy: str
    platform: str
    requests: int
    groups: int
    makespan_s: float
    output_tokens: int
    switch_s: float
    hidden_switch_s: float
    speculative_prefetches: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    events_run: int
    completed: tuple = field(repr=False, default=())
    #: The run's full span record (compute / switch / prefetch lanes);
    #: export via :func:`repro.obs.write_chrome_trace`.
    timeline: Optional[Timeline] = field(repr=False, compare=False, default=None)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.output_tokens / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def switch_hidden_fraction(self) -> float:
        """Fraction of total switch time overlapped with execution."""
        return self.hidden_switch_s / self.switch_s if self.switch_s > 0 else 0.0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.groups if self.groups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary (benchmark harness + CLI)."""
        return {
            "policy": self.policy,
            "platform": self.platform,
            "requests": self.requests,
            "groups": self.groups,
            "mean_batch": round(self.mean_batch, 3),
            "makespan_s": self.makespan_s,
            "requests_per_second": self.requests_per_second,
            "tokens_per_second": self.tokens_per_second,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "switch_s": self.switch_s,
            "hidden_switch_s": self.hidden_switch_s,
            "switch_hidden_fraction": self.switch_hidden_fraction,
            "speculative_prefetches": self.speculative_prefetches,
            "events_run": self.events_run,
        }


class ServingEngine:
    """Drains a backlog of pre-routed requests through one platform."""

    def __init__(
        self,
        platform: Platform,
        library: ExpertLibrary,
        policy: str = "fifo",
        max_batch: int = 8,
        window: int = 16,
        reserved_hbm_bytes: Optional[int] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if max_batch < 1 or window < 1:
            raise ValueError("max_batch and window must be >= 1")
        self.policy = policy
        self.max_batch = max_batch
        self.window = window
        self.server = CoEServer(
            platform, library, reserved_hbm_bytes=reserved_hbm_bytes
        )
        self._predictor = ExpertPredictor()

    # ------------------------------------------------------------------
    def _order(self, requests: Sequence[EngineRequest]) -> List[EngineRequest]:
        if self.policy == "fifo":
            return list(requests)
        return affinity_schedule(requests, window=self.window)

    def _group_phase_times(self, group: RequestGroup) -> Tuple[float, float, float]:
        """(router_s, prefill_s, decode_s) of one batched group.

        Requests in a group may differ in lengths; the batch pads to the
        longest prompt and generation (standard static-batching cost).
        """
        prompt = max(r.prompt_tokens for r in group.requests)
        output = max(r.output_tokens for r in group.requests)
        batch = group.batch
        router = self.server.router_time(batch=batch, prompt_tokens=prompt)
        prefill, decode = self.server.expert_time(
            group.expert, output, prompt, batch=batch
        )
        return router, prefill, decode

    def _group_exec_time(self, group: RequestGroup) -> float:
        """Batched router + prefill + closed-form decode for one group."""
        router, prefill, decode = self._group_phase_times(group)
        return router + prefill + decode

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[EngineRequest]) -> EngineReport:
        """Serve the whole backlog; returns the aggregate report."""
        if not requests:
            raise ValueError("empty request backlog")
        groups = coalesce_groups(self._order(requests), self.max_batch)
        timeline = Timeline()
        sim = Simulator(timeline=timeline)
        runtime = self.server.runtime
        runtime.attach_timeline(timeline, clock=lambda: sim.now, lane="switch")
        n = len(groups)
        ready = [0.0] * n
        completed: List[CompletedRequest] = []
        totals = {"spec": 0}
        #: At most one in-flight speculative copy: (name, start_s, copy_s).
        spec_open: List[tuple] = []

        def flush_spec(now: float) -> None:
            # A new DMA transfer aborts any in-flight speculative copy;
            # its span ends at min(natural completion, abort time).
            while spec_open:
                name, start, copy_s = spec_open.pop()
                end = min(start + copy_s, now)
                timeline.record(
                    name, lane="prefetch", category="prefetch",
                    start_s=start, end_s=end,
                    args={"copy_s": copy_s, "abandoned": end < start + copy_s},
                )

        def prefetch(j: int) -> None:
            # Runs on the DMA engines at sim.now, concurrent with compute.
            flush_spec(sim.now)
            expert = groups[j].expert
            if runtime.is_resident(expert):
                runtime.activate(expert)  # recency refresh, free hit
                ready[j] = sim.now
                # The DMA is idle this window: warm the predictor's best
                # non-resident guess. A speculative copy may evict cold LRU
                # tails but must never displace the experts the pipeline
                # still needs (the one executing and the one up next).
                protected = {expert.name}
                if j > 0:
                    protected.add(groups[j - 1].expert.name)
                guess = next(
                    (c for c in self._predictor.candidates()
                     if not runtime.is_resident(c)
                     and protected.isdisjoint(runtime.would_evict(c))),
                    None,
                )
                if guess is not None:
                    event = runtime.activate(guess, span=False)
                    spec_open.append((f"copy:{guess.name}", sim.now, event.time_s))
                    totals["spec"] += 1
            else:
                event = runtime.activate(expert)  # records the switch span
                ready[j] = sim.now + event.time_s

        def begin_group(i: int) -> None:
            group = groups[i]
            router_s, prefill_s, decode_s = self._group_phase_times(group)
            if self.policy == "overlap":
                self._predictor.observe(group.expert)
                exec_start = sim.now
                if i + 1 < n:
                    prefetch(i + 1)
            else:
                event = runtime.activate(group.expert)
                exec_start = sim.now + event.time_s
            end = exec_start
            phases = (("router", router_s), ("prefill", prefill_s),
                      ("decode", decode_s))
            for category, duration in phases:
                if duration > 0:
                    sim.record_span(
                        f"{category}:{group.expert.name}", "compute", category,
                        start_s=end, end_s=end + duration,
                        args={"group": i, "batch": group.batch},
                    )
                end += duration
            sim.schedule_at(end, lambda: finish_group(i, exec_start))

        def finish_group(i: int, exec_started: float) -> None:
            group = groups[i]
            for req in group.requests:
                completed.append(
                    CompletedRequest(
                        request_id=req.request_id,
                        expert=group.expert.name,
                        batch=group.batch,
                        arrival_s=req.arrival_s,
                        start_s=exec_started,
                        finish_s=sim.now,
                    )
                )
            nxt = i + 1
            if nxt < n:
                if self.policy == "overlap":
                    start_at = max(sim.now, ready[nxt])
                    sim.schedule_at(start_at, lambda: begin_group(nxt))
                else:
                    sim.schedule_at(sim.now, lambda: begin_group(nxt))

        try:
            if self.policy == "overlap":
                prefetch(0)  # group 0's copy has nothing to hide behind
                sim.schedule_at(ready[0], lambda: begin_group(0))
            else:
                sim.schedule_at(0.0, lambda: begin_group(0))
            makespan = sim.run()
            flush_spec(makespan)
        finally:
            runtime.detach_timeline()

        latencies = [c.latency_s for c in completed]
        return EngineReport(
            policy=self.policy,
            platform=self.server.platform.name,
            requests=len(completed),
            groups=n,
            makespan_s=makespan,
            output_tokens=sum(r.output_tokens for r in requests),
            switch_s=timeline.busy_s("switch"),
            hidden_switch_s=timeline.overlap_s("switch", "compute"),
            speculative_prefetches=totals["spec"],
            p50_s=percentile(latencies, 50),
            p95_s=percentile(latencies, 95),
            p99_s=percentile(latencies, 99),
            mean_s=sum(latencies) / len(latencies),
            events_run=sim.events_run,
            completed=tuple(completed),
            timeline=timeline,
        )


# ----------------------------------------------------------------------
# Workload + comparison helpers (benchmark harness, CLI, examples)
# ----------------------------------------------------------------------


def zipf_request_stream(
    library: ExpertLibrary,
    num_requests: int,
    alpha: float = 1.1,
    seed: int = 1234,
    prompt_tokens: int = 256,
    output_tokens: int = 20,
) -> List[EngineRequest]:
    """A skewed (Zipf) pre-routed request stream over a library.

    Real CoE traffic concentrates on a few hot experts (the router's
    domain mix is not uniform); rank-``r`` experts draw with weight
    ``r^-alpha``. Deterministic under ``seed``.
    """
    import random

    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(len(library))]
    experts = rng.choices(library.experts, weights=weights, k=num_requests)
    return [
        EngineRequest(
            request_id=i,
            expert=expert,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )
        for i, expert in enumerate(experts)
    ]


def compare_policies(
    platform: Platform,
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    policies: Sequence[str] = POLICIES,
    max_batch: int = 8,
    window: int = 16,
) -> Dict[str, EngineReport]:
    """Run the same backlog under each policy on a fresh engine."""
    reports: Dict[str, EngineReport] = {}
    for policy in policies:
        engine = ServingEngine(
            platform, library, policy=policy, max_batch=max_batch, window=window
        )
        reports[policy] = engine.run(requests)
    return reports
