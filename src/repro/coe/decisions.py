"""Decision recording: the evidence that sim and live agree.

The tentpole claim of the policy/clock split is that every serving
*decision* — which node a group dispatches to, whether a deadline admits
it, which residents the cache evicts — is a pure function of policy
state, never of the clock that drives execution. This module records
those decisions so the claim is checkable: run the same arrival trace
through the simulator and the asyncio live backend, and the two
:class:`DecisionLog`\\ s must compare equal record for record
(:func:`repro.coe.crosscheck.cross_check`).

Decisions are grouped into **streams**, each an ordered list:

- ``"admission"`` — cluster-level dispatch/admission verdicts, in the
  order groups were admitted (recorded by
  :class:`~repro.coe.cluster_engine.ClusterEngine` and the live
  dispatcher).
- ``"node0"``, ``"node1"``, ... — each node runtime's demand cache
  accesses (hit, or miss with the evicted victims), in the order that
  node processed its queue (recorded inside
  :meth:`repro.coe.runtime.CoERuntime.activate`).

Per-stream ordering is the strongest property both backends actually
share: the live backend's nodes run as concurrent asyncio tasks, so the
*interleaving across* streams is wall-clock nondeterminism, while the
order *within* each stream is fixed by dispatch order. A single global
list would miscompare on scheduling noise; per-stream lists cannot.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple


class Decision(NamedTuple):
    """One recorded policy decision.

    ``kind`` is the decision type (``"dispatch"``, ``"admit"``,
    ``"cache"``), ``subject`` what was decided about (an expert or
    group label), ``choice`` the verdict (a node name, ``"admit"`` /
    ``"shed"``, ``"hit"`` / ``"miss"``), and ``detail`` any supporting
    evidence worth comparing byte-for-byte (eviction victims, the
    admission ETA's ``repr`` — full float precision, so a single
    different bit in backlog math fails the cross-check).
    """

    kind: str
    subject: str
    choice: str
    detail: Tuple[str, ...] = ()


class DecisionLog:
    """Ordered per-stream decision records with diffing.

    Equality is exact: same streams, same records, same order. Use
    :meth:`diff` for the first divergence as a human-readable string —
    the cross-check's failure message.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[Decision]] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        stream: str,
        kind: str,
        subject: str,
        choice: str,
        detail: Tuple[str, ...] = (),
    ) -> None:
        """Append one decision to ``stream`` (created on first use)."""
        self._streams.setdefault(stream, []).append(
            Decision(kind, subject, choice, tuple(detail))
        )

    # ------------------------------------------------------------------
    @property
    def streams(self) -> Tuple[str, ...]:
        """Stream names, sorted (creation order is backend-dependent)."""
        return tuple(sorted(self._streams))

    def stream(self, name: str) -> Tuple[Decision, ...]:
        """The records of one stream, in decision order."""
        return tuple(self._streams.get(name, ()))

    def __len__(self) -> int:
        return sum(len(records) for records in self._streams.values())

    def __iter__(self) -> Iterator[Tuple[str, Decision]]:
        for name in self.streams:
            for decision in self._streams[name]:
                yield name, decision

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionLog):
            return NotImplemented
        return {k: v for k, v in self._streams.items()} == {
            k: v for k, v in other._streams.items()
        }

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}:{len(self._streams[name])}" for name in self.streams
        )
        return f"DecisionLog({counts or 'empty'})"

    # ------------------------------------------------------------------
    def diff(self, other: "DecisionLog") -> Optional[str]:
        """First divergence vs ``other``, or None when identical.

        Reported per stream: a stream missing entirely, a differing
        record at an index, or one log having extra records — enough to
        point at the exact decision where the backends split.
        """
        names = sorted(set(self._streams) | set(other._streams))
        for name in names:
            mine = self._streams.get(name, [])
            theirs = other._streams.get(name, [])
            for i, (a, b) in enumerate(zip(mine, theirs)):
                if a != b:
                    return (
                        f"stream {name!r} record {i}: "
                        f"{a!r} != {b!r}"
                    )
            if len(mine) != len(theirs):
                longer = mine if len(mine) > len(theirs) else theirs
                side = "self" if len(mine) > len(theirs) else "other"
                i = min(len(mine), len(theirs))
                return (
                    f"stream {name!r}: lengths differ "
                    f"({len(mine)} vs {len(theirs)}); first extra "
                    f"record on {side} at {i}: {longer[i]!r}"
                )
        return None

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            name: [list(d) for d in self._streams[name]]
            for name in self.streams
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_jsonable(), fh)

    @classmethod
    def from_jsonable(cls, data: dict) -> "DecisionLog":
        log = cls()
        for name, records in data.items():
            log._streams[name] = [
                Decision(kind, subject, choice, tuple(detail))
                for kind, subject, choice, detail in records
            ]
        return log

    @classmethod
    def load(cls, path: str) -> "DecisionLog":
        with open(path) as fh:
            return cls.from_jsonable(json.load(fh))


__all__ = ["Decision", "DecisionLog"]
