"""Typed serving policies for the CoE engines.

Historically the engines took stringly-typed policies (``"fifo"``,
``"affinity"``, ``"overlap"`` for one node; ``"least_loaded"``,
``"affinity"``, ``"steal"`` for the cluster) and each constructor
validated its own strings. These enums are now the single source of
truth: :class:`repro.coe.api.ServeConfig` stores enum members, and both
engines coerce whatever they are given — an enum member or its string
value — through :meth:`PolicyEnum.coerce`, which raises a clear error
listing the valid members. Plain strings therefore keep working
everywhere a policy is accepted (back-compat), but typos fail with the
full menu instead of a bare ``unknown policy``.

The members' *values* are the legacy strings, so reports and JSON dumps
are unchanged: engines store ``NodePolicy.coerce(p).value`` internally.
"""

from __future__ import annotations

import enum
from typing import Union


class PolicyEnum(enum.Enum):
    """Base for policy enums: string coercion with a helpful error."""

    @classmethod
    def coerce(cls, value: Union[str, "PolicyEnum"]) -> "PolicyEnum":
        """Return the member for ``value`` (member or value string).

        Raises ``ValueError`` naming every valid member, e.g.::

            unknown NodePolicy 'fancy'; expected one of
            'fifo', 'affinity', 'overlap'
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            for member in cls:
                if member.value == value:
                    return member
        valid = ", ".join(repr(m.value) for m in cls)
        raise ValueError(
            f"unknown {cls.__name__} {value!r}; expected one of {valid}"
        )

    @classmethod
    def values(cls) -> tuple:
        """The member value strings, in declaration order."""
        return tuple(m.value for m in cls)

    def __str__(self) -> str:  # stable across Python versions
        return self.value


class NodePolicy(PolicyEnum):
    """Single-node scheduling policy of :class:`ServingEngine`."""

    FIFO = "fifo"
    AFFINITY = "affinity"
    OVERLAP = "overlap"


class ClusterPolicy(PolicyEnum):
    """Cross-node dispatch policy of :class:`ClusterEngine`."""

    LEAST_LOADED = "least_loaded"
    AFFINITY = "affinity"
    STEAL = "steal"


class ServeMode(PolicyEnum):
    """Which clock drives a :class:`repro.coe.api.ServeConfig` run.

    ``SIM`` executes on the discrete-event simulator (the default and
    the fast path); ``LIVE`` executes the same policies on an asyncio
    wall clock (:mod:`repro.coe.live_engine`) with real admission,
    bounded queues and streaming token emission. Mode-specific options
    are rejected in the other mode with a typed
    :class:`repro.coe.api.ServeModeError`.
    """

    SIM = "sim"
    LIVE = "live"


class DrainMode(PolicyEnum):
    """How a :class:`ServingEngine` executes its queued groups.

    All three modes are byte-identical in every simulated output (the
    equivalence grid in ``tests/coe/test_batched_equivalence.py`` pins
    it); they differ only in how much Python runs per group:

    - ``REFERENCE`` — one begin/finish simulator event pair per group,
      the seed-equivalent event-by-event execution.
    - ``BATCHED`` — the PR 6 fast path: the whole queue drains in one
      simulator event on a local clock, one Python loop iteration per
      group.
    - ``COLUMNAR`` — the default: the queue is lowered to parallel
      arrays (:mod:`repro.coe.columnar`) and maximal runs of resident-
      expert groups are timestamped with one ``numpy`` cumsum instead of
      a Python iteration each; only cache-decision points drop back to
      Python. Falls back to ``BATCHED`` per drain whenever per-group
      Python decisions are inherent (the speculative ``overlap`` policy,
      span-traced runs) — see docs/PERFORMANCE.md.
    """

    REFERENCE = "reference"
    BATCHED = "batched"
    COLUMNAR = "columnar"


class CachePolicyName(PolicyEnum):
    """HBM expert-cache eviction policy of :class:`CoERuntime`.

    The names resolve to implementations in :mod:`repro.coe.cache`;
    ``BELADY`` is the offline oracle and needs a recorded trace, so it
    can only be configured by passing a
    :class:`~repro.coe.cache.BeladyPolicy` instance, never by name.
    ``LOOKAHEAD`` is nameable but needs a scheduler backlog: the serving
    engines attach their own queue view automatically, while a bare
    :class:`CoERuntime` raises a typed error at the first eviction
    decision (see :class:`~repro.coe.cache.LookaheadUnboundError`).
    """

    LRU = "lru"
    LFU = "lfu"
    GDSF = "gdsf"
    PREDICTIVE = "predictive"
    LOOKAHEAD = "lookahead"
    BELADY = "belady"


class SchedulerName(PolicyEnum):
    """Admission-time request-reordering scheduler of the engines.

    Applied to the queued backlog *before* node scheduling and group
    coalescing (see :mod:`repro.coe.scheduling`):

    - ``FIFO`` — arrival order, the historical behaviour.
    - ``EXPERT_REORDER`` — batch queued requests by expert over a long
      horizon to amortize tier switches (the CoServe scenario,
      arXiv:2503.02354): under a constrained HBM/DDR budget, runs of
      same-expert requests turn k misses into 1 miss + (k-1) hits.

    The names resolve to implementations through
    :data:`repro.coe.scheduling.SCHEDULERS` /
    :func:`repro.coe.scheduling.make_scheduler`, mirroring the
    ``CACHE_POLICIES`` pattern.
    """

    FIFO = "fifo"
    EXPERT_REORDER = "expert_reorder"


__all__ = [
    "CachePolicyName", "ClusterPolicy", "DrainMode", "NodePolicy",
    "PolicyEnum", "SchedulerName", "ServeMode",
]
