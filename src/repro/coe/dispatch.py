"""The pure cluster-dispatch core, shared by the sim and live backends.

:class:`repro.coe.cluster_engine.ClusterEngine` (discrete-event) and
:class:`repro.coe.live_engine.LiveEngine` (asyncio wall clock) must make
**byte-identical** dispatch and admission decisions for the same group
sequence — that is the contract the sim/live cross-check enforces. The
only way to guarantee that is to make the decision math a pure function
of explicitly-passed policy state, with no clock in sight; both engines
call these functions with state they maintain by identical rules:

- ``backlog_of(i)`` — the admission-logical backlog of node ``i``: the
  running float sum of every previously admitted group's execution
  time, accumulated in admission order (the cluster engine's
  ``_admission_backlog``; the live dispatcher's mirror of it). Never a
  measured quantity.
- ``tail_of(i)`` — the expert name of the last group admitted to node
  ``i`` (the queue tail at admission time), or None.

Floats flow through unchanged — same additions in the same order on
both backends — so even the tie-breaks agree bit for bit.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence


def choose_node(
    owner_indices: Sequence[int],
    expert_name: str,
    backlog_of: Callable[[int], float],
    tail_of: Callable[[int], Optional[str]],
    affinity: bool,
) -> int:
    """Pick the owner node for a group of ``expert_name`` requests.

    Least-loaded over ``owner_indices`` with index as the tie-break;
    with ``affinity``, owners whose admission tail already ends in this
    expert form the candidate pool first (extending a same-expert run
    avoids a future switch on that node).
    """
    if not owner_indices:
        raise ValueError(f"no node hosts expert {expert_name!r}")
    pool = owner_indices
    if affinity:
        tail_match = [
            i for i in owner_indices if tail_of(i) == expert_name
        ]
        if tail_match:
            pool = tail_match
    return min(pool, key=lambda i: (backlog_of(i), i))


def admission_eta(now: float, backlog_s: float, exec_s: float) -> float:
    """Estimated completion of a group admitted now behind ``backlog_s``.

    The one expression both backends use — a single float sum, so the
    deadline comparison below sees the identical value on either clock.
    """
    return now + backlog_s + exec_s


def deadline_admits(eta: float, deadline_s: Optional[float]) -> bool:
    """Whether an ETA meets the SLO deadline (no deadline admits all)."""
    return deadline_s is None or eta <= deadline_s


__all__ = ["admission_eta", "choose_node", "deadline_admits"]
