"""Expert model descriptors and the Samba-CoE expert library.

Samba-CoE (paper Section II) is 150 independently fine-tuned Llama2-7B
experts plus a router — over a trillion total parameters. Each expert is
an independent artifact: trained, compiled, and served on its own
lifecycle (Section V-B), which is what the CoE runtime's dynamic
linking/loading model exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import TransformerConfig

#: The expert domains of the deployed Samba-CoE (coding, math, language
#: translation, and other specialisations from the open-source community).
DEFAULT_DOMAINS = (
    "code",
    "math",
    "translation",
    "legal",
    "medical",
    "finance",
    "science",
    "writing",
    "chat",
    "summarization",
)


@dataclass(frozen=True)
class ExpertProfile:
    """One expert model in the composition."""

    name: str
    domain: str
    model: TransformerConfig = LLAMA2_7B
    #: Fraction of the expert's device state that is mutable (activations,
    #: KV scratch). Weights are read-only, so on eviction only this
    #: fraction must be copied back to DDR (paper Section V-B).
    mutable_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.mutable_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: mutable_fraction must be in [0,1], "
                f"got {self.mutable_fraction}"
            )

    @property
    def weight_bytes(self) -> int:
        return self.model.weight_bytes

    @property
    def copyback_bytes(self) -> int:
        """Bytes written back to DDR when this expert is evicted."""
        return round(self.weight_bytes * self.mutable_fraction)


@dataclass
class ExpertLibrary:
    """The full set of experts available to the CoE."""

    experts: List[ExpertProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [e.name for e in self.experts]
        if len(names) != len(set(names)):
            raise ValueError("duplicate expert names in library")
        self._by_name: Dict[str, ExpertProfile] = {e.name: e for e in self.experts}
        self._by_domain: Dict[str, List[ExpertProfile]] = {}
        for expert in self.experts:
            self._by_domain.setdefault(expert.domain, []).append(expert)

    def add(self, expert: ExpertProfile) -> None:
        """Register one more expert (hot-expert replication, growth).

        Keeps the name and domain indexes coherent, unlike appending to
        ``experts`` and re-running ``__post_init__`` by hand.
        """
        if expert.name in self._by_name:
            raise ValueError(f"duplicate expert name {expert.name!r}")
        self.experts.append(expert)
        self._by_name[expert.name] = expert
        self._by_domain.setdefault(expert.domain, []).append(expert)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.experts)

    def __getitem__(self, name: str) -> ExpertProfile:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no expert named {name!r}") from None

    @property
    def domains(self) -> List[str]:
        return sorted(self._by_domain)

    def for_domain(self, domain: str) -> List[ExpertProfile]:
        try:
            return list(self._by_domain[domain])
        except KeyError:
            raise KeyError(f"no experts in domain {domain!r}") from None

    @property
    def total_params(self) -> int:
        return sum(e.model.param_count for e in self.experts)

    @property
    def total_weight_bytes(self) -> int:
        return sum(e.weight_bytes for e in self.experts)


def build_heterogeneous_library(
    size_mix: Sequence[tuple] = None,
    domains: Sequence[str] = DEFAULT_DOMAINS,
) -> ExpertLibrary:
    """A library of experts with *different architectures and sizes*.

    The paper: "the router and expert models do not need to be
    homogeneous - they can be different architectures with different
    numbers of parameters" (Section II). ``size_mix`` is a sequence of
    ``(model_config, count)`` pairs; the default mixes 7B and 13B class
    experts (the common community fine-tune sizes).
    """
    from repro.models.catalog import LLAMA2_7B, LLAMA2_13B, MISTRAL_7B

    if size_mix is None:
        size_mix = ((LLAMA2_7B, 60), (MISTRAL_7B, 60), (LLAMA2_13B, 30))
    experts = []
    idx = 0
    for model, count in size_mix:
        if count < 0:
            raise ValueError(f"negative expert count for {model.name}")
        for _ in range(count):
            domain = domains[idx % len(domains)]
            experts.append(
                ExpertProfile(
                    name=f"expert-{idx:03d}-{model.name}-{domain}",
                    domain=domain,
                    model=model,
                )
            )
            idx += 1
    return ExpertLibrary(experts=experts)


def build_samba_coe_library(
    num_experts: int = 150,
    base_model: TransformerConfig = LLAMA2_7B,
    domains: Sequence[str] = DEFAULT_DOMAINS,
) -> ExpertLibrary:
    """Build a Samba-CoE-like library: ``num_experts`` over ``domains``.

    With the default 150 Llama2-7B experts the library crosses a trillion
    total parameters, matching the deployed system.
    """
    if num_experts < 1:
        raise ValueError(f"num_experts must be >= 1, got {num_experts}")
    if not domains:
        raise ValueError("need at least one domain")
    experts = [
        ExpertProfile(
            name=f"expert-{idx:03d}-{domains[idx % len(domains)]}",
            domain=domains[idx % len(domains)],
            model=base_model,
        )
        for idx in range(num_experts)
    ]
    return ExpertLibrary(experts=experts)
