"""Serving metrics: latency percentiles, throughput, goodput.

Turns streams of :class:`~repro.coe.serving.RequestLatency` records into
the SLO-style numbers an inference-serving deployment reports: p50/p95/p99
latency, requests/second, output tokens/second, and time-to-first-token.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, NamedTuple, Sequence

from repro.coe.serving import RequestLatency, ServeResult


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (the convention SLOs use).

    ``q`` in [0, 100]; the smallest value v such that at least q% of the
    samples are <= v.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


class LatencySummary(NamedTuple):
    """The p50/p95/p99/mean block every serving report carries."""

    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """One-sort p50/p95/p99/mean of a latency sample.

    The shared aggregation behind ``EngineReport``, ``ClusterReport``
    and ``LiveReport``: the sample is sorted **once** and each quantile
    is a nearest-rank index into that order — value-identical to three
    separate :func:`percentile` calls (which re-sort per quantile; that
    scalar form stays as the tested oracle). The mean is computed over
    ``values`` exactly as passed, so a caller that fed ``sum()`` an
    unsorted completion-order list before keeps the bitwise-identical
    float. An empty sample summarizes to zeros (a halted engine can
    finish with no completions; reports must not divide by zero).
    """
    if not values:
        return LatencySummary(0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    n = len(ordered)
    return LatencySummary(
        p50_s=ordered[math.ceil(0.50 * n) - 1],
        p95_s=ordered[math.ceil(0.95 * n) - 1],
        p99_s=ordered[math.ceil(0.99 * n) - 1],
        mean_s=sum(values) / n,
    )


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate metrics over a stream of served requests."""

    requests: int
    output_tokens: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    mean_ttft_s: float
    total_s: float

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.total_s if self.total_s > 0 else 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.output_tokens / self.total_s if self.total_s > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.requests} reqs in {self.total_s:.2f}s: "
            f"p50 {self.p50_s * 1e3:.0f}ms, p99 {self.p99_s * 1e3:.0f}ms, "
            f"{self.requests_per_second:.1f} req/s, "
            f"{self.tokens_per_second:.0f} tok/s"
        )


def compute_metrics(
    requests: Iterable[RequestLatency], output_tokens_per_request: int
) -> ServingMetrics:
    """Aggregate a request stream (e.g. across several ServeResults).

    Requests are served sequentially on one node, so total time is the
    sum of request latencies; time-to-first-token is everything before
    decoding starts (router + switch + prefill).
    """
    items: List[RequestLatency] = list(requests)
    if not items:
        raise ValueError("no requests to aggregate")
    if output_tokens_per_request < 0:
        raise ValueError("negative output_tokens_per_request")
    latencies = [r.total_s for r in items]
    ttfts = [r.router_s + r.switch_s + r.prefill_s for r in items]
    total = sum(latencies)
    return ServingMetrics(
        requests=len(items),
        output_tokens=len(items) * output_tokens_per_request,
        p50_s=percentile(latencies, 50),
        p95_s=percentile(latencies, 95),
        p99_s=percentile(latencies, 99),
        mean_s=total / len(items),
        mean_ttft_s=sum(ttfts) / len(items),
        total_s=total,
    )


def metrics_of(result: ServeResult, output_tokens_per_request: int) -> ServingMetrics:
    """Metrics of one served batch."""
    return compute_metrics(result.requests, output_tokens_per_request)
