"""Composition of Experts: experts, router, runtime, serving."""

from repro.coe.expert import (
    DEFAULT_DOMAINS,
    ExpertLibrary,
    ExpertProfile,
    build_heterogeneous_library,
    build_samba_coe_library,
)
from repro.coe.metrics import (
    LatencySummary,
    ServingMetrics,
    compute_metrics,
    metrics_of,
    summarize_latencies,
)
from repro.coe.columnar import CompletedLog
from repro.coe.router import Router, RoutingDecision, embed_text
from repro.coe.scheduling import (
    SCHEDULERS,
    ExpertPredictor,
    ExpertReorderScheduler,
    FifoScheduler,
    GroupAssembler,
    Request,
    RequestGroup,
    Scheduler,
    affinity_schedule,
    coalesce_groups,
    fifo_schedule,
    make_scheduler,
    serve_schedule,
    serve_with_prefetch,
)
from repro.coe.engine import (
    POLICIES,
    CompletedRequest,
    EngineReentryError,
    EngineReport,
    EngineRequest,
    ServingEngine,
    compare_policies,
    zipf_request_stream,
)
from repro.coe.cluster_engine import (
    CLUSTER_POLICIES,
    ClusterEngine,
    ClusterReport,
    NodeSummary,
    cluster_lanes,
    run_cluster,
    scaling_sweep,
)
from repro.coe.runtime import CoERuntime, RuntimeStats, SwitchEvent
from repro.coe.cache import (
    CACHE_POLICIES,
    BeladyPolicy,
    CachePolicy,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    PredictivePolicy,
    make_policy,
)
from repro.coe.policies import (
    CachePolicyName,
    ClusterPolicy,
    DrainMode,
    NodePolicy,
    PolicyEnum,
    SchedulerName,
    ServeMode,
)
from repro.coe.serving import (
    CoEServer,
    ExpertServer,
    RequestLatency,
    ServeResult,
)
from repro.coe.decisions import Decision, DecisionLog
from repro.coe.dispatch import admission_eta, choose_node, deadline_admits
from repro.coe.api import (
    ServeConfig,
    ServeModeError,
    Server,
    build_server,
    serve,
)
from repro.coe.live_engine import (
    LiveEngine,
    LiveReport,
    ShedRequest,
    TokenEvent,
)
from repro.coe.crosscheck import CrossCheckResult, cross_check

__all__ = [
    "DEFAULT_DOMAINS", "ExpertLibrary", "ExpertProfile",
    "build_samba_coe_library", "build_heterogeneous_library", "Router", "RoutingDecision", "embed_text",
    "CoERuntime", "RuntimeStats", "SwitchEvent", "CoEServer", "ExpertServer",
    "RequestLatency", "ServeResult", "ExpertPredictor", "Request",
    "affinity_schedule", "fifo_schedule", "serve_schedule",
    "serve_with_prefetch", "ServingMetrics", "compute_metrics", "metrics_of",
    "RequestGroup", "coalesce_groups", "POLICIES", "CompletedRequest",
    "CompletedLog", "LatencySummary", "summarize_latencies",
    "EngineReentryError", "EngineReport", "EngineRequest", "ServingEngine",
    "compare_policies",
    "zipf_request_stream", "CLUSTER_POLICIES", "ClusterEngine",
    "ClusterReport", "NodeSummary", "cluster_lanes", "run_cluster",
    "scaling_sweep", "ClusterPolicy", "DrainMode", "NodePolicy", "PolicyEnum",
    "CACHE_POLICIES", "BeladyPolicy", "CachePolicy", "CachePolicyName",
    "GDSFPolicy", "LFUPolicy", "LRUPolicy", "PredictivePolicy",
    "make_policy",
    "SCHEDULERS", "Scheduler", "SchedulerName", "FifoScheduler",
    "ExpertReorderScheduler", "make_scheduler",
    "ServeConfig", "Server", "build_server", "serve",
    "ServeMode", "ServeModeError", "GroupAssembler",
    "Decision", "DecisionLog",
    "admission_eta", "choose_node", "deadline_admits",
    "LiveEngine", "LiveReport", "ShedRequest", "TokenEvent",
    "CrossCheckResult", "cross_check",
]
