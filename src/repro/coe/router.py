"""The Samba-CoE router: prompt -> expert assignment.

The deployed router is itself a Llama2-7B-class specialist model (paper
Section II). Its *latency* is what matters to the serving model (one
prompt prefill plus a classification readout); its *function* — mapping a
prompt to the most relevant expert domain — we implement as a deterministic
hashed bag-of-words classifier over domain keyword seeds. This keeps the
reproduction fully functional (real prompts route to sensible domains, and
routing is exactly reproducible) without shipping model weights.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import TransformerConfig

#: Seed vocabulary characterising each domain. Extendable by callers.
DOMAIN_KEYWORDS: Dict[str, List[str]] = {
    "code": ["code", "function", "python", "bug", "compile", "class",
             "algorithm", "api", "debug", "implement", "javascript", "loop"],
    "math": ["math", "solve", "equation", "integral", "integrate",
             "derivative", "proof", "theorem", "algebra", "calculate",
             "compute", "probability", "matrix"],
    "translation": ["translate", "french", "spanish", "german", "japanese",
                    "language", "english", "chinese", "sentence", "meaning"],
    "legal": ["law", "contract", "legal", "clause", "liability", "court",
              "regulation", "compliance", "statute", "agreement"],
    "medical": ["symptom", "diagnosis", "patient", "treatment", "medicine",
                "disease", "drug", "clinical", "dose", "therapy"],
    "finance": ["stock", "finance", "investment", "portfolio", "interest",
                "market", "revenue", "tax", "bond", "earnings"],
    "science": ["physics", "chemistry", "biology", "experiment", "energy",
                "molecule", "quantum", "cell", "reaction", "hypothesis"],
    "writing": ["essay", "story", "poem", "write", "draft", "novel",
                "paragraph", "edit", "tone", "narrative"],
    "chat": ["hello", "hi", "thanks", "chat", "help", "please", "opinion",
             "recommend", "favorite", "weather"],
    "summarization": ["summarize", "summary", "tldr", "condense", "shorten",
                      "key", "points", "abstract", "brief", "digest"],
}

_EMBED_DIM = 4096
_TOKEN_RE = re.compile(r"[a-z0-9']+")


def _hash_token(token: str) -> tuple:
    """Stable token -> (dimension, sign) hash (PYTHONHASHSEED-independent).

    Signed feature hashing keeps accidental collisions unbiased, so two
    unrelated tokens colliding mostly cancel instead of reinforcing.
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    return value % _EMBED_DIM, 1.0 if (value >> 32) & 1 else -1.0


def embed_text(text: str) -> np.ndarray:
    """Signed hashed bag-of-words embedding, L2-normalised."""
    vec = np.zeros(_EMBED_DIM, dtype=np.float64)
    for token in _TOKEN_RE.findall(text.lower()):
        dim, sign = _hash_token(token)
        vec[dim] += sign
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


@dataclass(frozen=True)
class RoutingDecision:
    """The router's verdict for one prompt."""

    prompt: str
    domain: str
    expert: ExpertProfile
    score: float


@dataclass
class Router:
    """Deterministic domain router over an expert library.

    Builds one centroid embedding per domain from its keyword seeds and
    routes each prompt to the best-scoring domain; within a domain,
    experts are selected round-robin (domain specialists are
    interchangeable at this modelling granularity).
    """

    library: ExpertLibrary
    #: Architecture of the router model itself (drives latency modelling).
    model: TransformerConfig = LLAMA2_7B
    keywords: Dict[str, List[str]] = field(
        default_factory=lambda: dict(DOMAIN_KEYWORDS)
    )

    def __post_init__(self) -> None:
        missing = [d for d in self.library.domains if d not in self.keywords]
        if missing:
            raise ValueError(
                f"no keyword seeds for library domains: {missing}; "
                f"extend Router.keywords"
            )
        self._centroids = {
            domain: embed_text(" ".join(words))
            for domain, words in self.keywords.items()
            if domain in self.library.domains
        }
        self._rr: Dict[str, int] = {d: 0 for d in self.library.domains}

    def route(self, prompt: str) -> RoutingDecision:
        """Assign one prompt to an expert."""
        if not prompt.strip():
            raise ValueError("cannot route an empty prompt")
        query = embed_text(prompt)
        best_domain, best_score = None, -1.0
        for domain in sorted(self._centroids):  # sorted: deterministic ties
            score = float(query @ self._centroids[domain])
            if score > best_score:
                best_domain, best_score = domain, score
        candidates = self.library.for_domain(best_domain)
        index = self._rr[best_domain] % len(candidates)
        self._rr[best_domain] += 1
        return RoutingDecision(
            prompt=prompt,
            domain=best_domain,
            expert=candidates[index],
            score=best_score,
        )

    def route_batch(self, prompts: Sequence[str]) -> List[RoutingDecision]:
        """Route a batch; samples are independent (paper Section VI-B:
        "samples in a batch have no relationship with each other")."""
        return [self.route(p) for p in prompts]
