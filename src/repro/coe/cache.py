"""Pluggable HBM expert-cache policies for :class:`repro.coe.runtime.CoERuntime`.

The paper's Section V-B runtime manages the HBM expert region with a
fixed LRU policy. LRU is the right paper-faithful default, but the
serving layers above the runtime now carry strictly better signals —
router/Markov next-expert predictions, per-expert DDR->HBM copy costs,
the contents of the request queue — that LRU ignores. This module makes
the eviction decision a policy object so those signals can compete:

- :class:`LRUPolicy` — evict the least recently *used* expert. The
  default; byte-identical to the historical hard-coded behaviour.
- :class:`LFUPolicy` — evict the least frequently used expert (demand
  accesses only; ties broken least-recent-first). Protects a stable hot
  set against scan pollution.
- :class:`GDSFPolicy` — Greedy-Dual-Size-Frequency: priority is
  ``L + frequency * copy_cost / size``, evict the lowest. The inflation
  term ``L`` (raised to each evicted priority) ages stale frequency, so
  the policy adapts when the hot set drifts; with heterogeneous experts
  it also prefers evicting cheap-to-refetch artifacts.
- :class:`PredictivePolicy` — evict the expert the serving layer's
  :class:`~repro.coe.scheduling.ExpertPredictor` ranks least likely to
  be needed next (never-predicted residents go first).
- :class:`LookaheadPolicy` — the online Belady approximation: evict the
  resident whose next use lies farthest in the admission scheduler's
  reordered backlog (the CoServe lookahead window, arXiv:2503.02354).
  Nameable, but only usable once an engine binds its backlog view.
- :class:`BeladyPolicy` — the clairvoyant upper bound: evict the expert
  whose next use lies farthest in the future, replayed from a recorded
  demand trace (:attr:`CoERuntime.demand_trace` of a prior run). Not a
  deployable policy — it is the yardstick the heuristics are measured
  against in ``benchmarks/test_cache_policies.py``.

A policy only *ranks* victims; the runtime owns residency, byte
accounting, and stats. The contract (see :class:`CachePolicy`): the
runtime reports every activation via :meth:`~CachePolicy.on_access` —
or, for a columnar run of demand hits, in bulk via the order-equivalent
:meth:`~CachePolicy.on_access_run` —
successful insertions via :meth:`~CachePolicy.on_insert`, evictions via
:meth:`~CachePolicy.on_evict`, and asks :meth:`~CachePolicy.eviction_order`
for the full victim preference when it must free space. All policies are
deterministic: ties break on stable sequence numbers and names, never on
hash or wall-clock order.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.coe.expert import ExpertProfile
from repro.coe.policies import CachePolicyName

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports us)
    from repro.coe.runtime import CoERuntime
    from repro.coe.scheduling import ExpertPredictor


class CachePolicy:
    """The protocol an HBM expert-cache eviction policy implements.

    Subclasses override the hooks they need; the base class keeps the
    recency/sequence bookkeeping every policy wants for tie-breaking.
    ``name`` is the wire string reports and span args carry.
    """

    name = "base"

    def __init__(self) -> None:
        self._seq = 0
        #: name -> sequence number of the most recent access (any kind).
        self._last_access: Dict[str, int] = {}
        self._runtime: Optional["CoERuntime"] = None

    # ------------------------------------------------------------------
    def bind_runtime(self, runtime: "CoERuntime") -> None:
        """Called once by the owning runtime (cost model access)."""
        self._runtime = runtime

    def on_access(
        self, expert: ExpertProfile, hit: bool, *, speculative: bool = False
    ) -> None:
        """Every ``activate`` call, demand and speculative, hit or miss."""
        self._seq += 1
        self._last_access[expert.name] = self._seq

    def on_access_run(self, experts: Sequence[ExpertProfile]) -> None:
        """Bulk ``on_access(expert, hit=True)`` for a run of demand hits.

        The columnar drain's batch path: valid **only** for a stretch of
        demand accesses that are all hits (no eviction decision can fall
        between them, so no intermediate state is ever observed — the
        run-segmentation invariant of :mod:`repro.coe.columnar`). Must
        leave the policy in exactly the state the equivalent scalar call
        sequence would; subclasses that override :meth:`on_access` must
        override this too (order-equivalence is pinned per policy in
        ``tests/coe/test_columnar.py``).

        The base form assigns consecutive sequence numbers in run order;
        on duplicate names ``dict.update`` keeps the last pair, exactly
        as repeated scalar assignments would.
        """
        seq = self._seq
        names = [e.name for e in experts]
        self._last_access.update(zip(names, range(seq + 1, seq + len(names) + 1)))
        self._seq = seq + len(names)

    def on_insert(self, expert: ExpertProfile) -> None:
        """The expert became resident (its copy succeeded)."""

    def on_evict(self, name: str) -> None:
        """The expert was evicted from HBM."""
        # Access bookkeeping is kept: a re-inserted expert's recency and
        # frequency history survive eviction (standard for LFU/GDSF).

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        """All resident names, best victim first. Must be deterministic."""
        raise NotImplementedError

    def why(self, name: str) -> str:
        """One-line reason this resident ranks where it does (span args)."""
        return self.name

    def reset(self) -> None:
        """Forget residency-coupled state (the runtime was flushed)."""

    # ------------------------------------------------------------------
    def _recency(self, name: str) -> int:
        return self._last_access.get(name, 0)


class LRUPolicy(CachePolicy):
    """Least-recently-used — the paper-faithful default.

    The runtime's resident mapping is already kept in recency order
    (oldest first), so the eviction order is simply that order; this is
    bit-identical to the historical hard-coded LRU loop.
    """

    name = "lru"

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        return list(resident)

    def why(self, name: str) -> str:
        return f"lru: last access #{self._recency(name)}"


class LFUPolicy(CachePolicy):
    """Least-frequently-used over *demand* accesses, ties least-recent.

    Speculative prefetches are the cache talking to itself — they do not
    count as evidence of popularity.
    """

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._freq: Dict[str, int] = {}

    def on_access(
        self, expert: ExpertProfile, hit: bool, *, speculative: bool = False
    ) -> None:
        super().on_access(expert, hit, speculative=speculative)
        if not speculative:
            self._freq[expert.name] = self._freq.get(expert.name, 0) + 1

    def on_access_run(self, experts: Sequence[ExpertProfile]) -> None:
        # Demand hits only (the run contract): every access counts.
        # Summing each name's occurrences lands on the same final
        # frequencies as n scalar increments; the intermediates are
        # unobservable inside a hit run (no eviction_order call).
        super().on_access_run(experts)
        freq = self._freq
        for name, count in Counter(e.name for e in experts).items():
            freq[name] = freq.get(name, 0) + count

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        return sorted(
            resident,
            key=lambda n: (self._freq.get(n, 0), self._recency(n), n),
        )

    def why(self, name: str) -> str:
        return f"lfu: freq {self._freq.get(name, 0)}"


class GDSFPolicy(CachePolicy):
    """Greedy-Dual-Size-Frequency: evict the lowest ``L + f*cost/size``.

    ``cost`` is the platform's DDR->HBM copy time for the expert (what a
    refetch would actually pay), ``size`` its HBM footprint. ``L`` is
    the classic inflation clock: raised to each evicted priority, it
    ages the frequency of experts that stopped being touched, which is
    what lets the policy track a drifting hot set.
    """

    name = "gdsf"

    def __init__(self) -> None:
        super().__init__()
        self._freq: Dict[str, int] = {}
        self._priority: Dict[str, float] = {}
        self._inflation = 0.0

    def _cost(self, expert: ExpertProfile) -> float:
        if self._runtime is not None:
            # The DDR->HBM edge, regardless of where the expert sits now:
            # GDSF scores must not depend on transient NVMe residency or
            # the three-way drain equivalence would break.
            return self._runtime.transfer_time("ddr", "hbm", expert.weight_bytes)
        return float(expert.weight_bytes)

    def _reprice(self, expert: ExpertProfile) -> None:
        self._priority[expert.name] = self._inflation + (
            self._freq.get(expert.name, 0)
            * self._cost(expert)
            / max(expert.weight_bytes, 1)
        )

    def on_access(
        self, expert: ExpertProfile, hit: bool, *, speculative: bool = False
    ) -> None:
        super().on_access(expert, hit, speculative=speculative)
        if not speculative:
            self._freq[expert.name] = self._freq.get(expert.name, 0) + 1
            self._reprice(expert)

    def on_access_run(self, experts: Sequence[ExpertProfile]) -> None:
        # Frequencies bulk-sum like LFU; repricing once per distinct
        # expert with its *final* run frequency writes the same priority
        # the last scalar _reprice of the run would (the formula reads
        # only the current frequency, inflation never moves on a hit,
        # and intermediate priorities are unobservable inside a run).
        super().on_access_run(experts)
        freq = self._freq
        distinct: Dict[str, ExpertProfile] = {}
        for expert in experts:
            distinct[expert.name] = expert
        for name, count in Counter(e.name for e in experts).items():
            freq[name] = freq.get(name, 0) + count
        for expert in distinct.values():
            self._reprice(expert)

    def on_insert(self, expert: ExpertProfile) -> None:
        if expert.name not in self._priority:
            self._reprice(expert)

    def on_evict(self, name: str) -> None:
        self._inflation = max(self._inflation, self._priority.get(name, 0.0))

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        return sorted(
            resident,
            key=lambda n: (self._priority.get(n, 0.0), self._recency(n), n),
        )

    def why(self, name: str) -> str:
        return (
            f"gdsf: pri {self._priority.get(name, 0.0):.3e} "
            f"(freq {self._freq.get(name, 0)}, L {self._inflation:.3e})"
        )


class PredictivePolicy(CachePolicy):
    """Evict the resident the expert predictor ranks least likely next.

    Wraps the serving layer's first-order Markov
    :class:`~repro.coe.scheduling.ExpertPredictor`:
    :class:`~repro.coe.engine.ServingEngine` binds its own predictor
    automatically; standalone users pass one in (or set
    :attr:`predictor` later). Without a predictor — or for residents the
    predictor has never ranked — the order falls back to least-recent.
    """

    name = "predictive"

    def __init__(self, predictor: Optional["ExpertPredictor"] = None) -> None:
        super().__init__()
        self.predictor = predictor

    def _ranks(self) -> Dict[str, int]:
        if self.predictor is None:
            return {}
        return {
            c.name: i for i, c in enumerate(self.predictor.candidates())
        }

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        ranks = self._ranks()
        unranked = len(ranks) + len(resident)
        # Least likely first: worst (largest) rank index leads, residents
        # the predictor has never seen lead even that; recency tie-break.
        return sorted(
            resident,
            key=lambda n: (
                -ranks.get(n, unranked), self._recency(n), n
            ),
        )

    def why(self, name: str) -> str:
        rank = self._ranks().get(name)
        if rank is None:
            return "predictive: never predicted"
        return f"predictive: rank {rank} of next-use likelihood"


class LookaheadUnboundError(ValueError):
    """A :class:`LookaheadPolicy` was asked to rank victims with no
    scheduler backlog attached.

    Mirrors how ``"belady"`` is rejected by name in :func:`make_policy`:
    lookahead *is* nameable (the serving engines bind their own queue
    view automatically), but without a backlog there is no future to
    look ahead into, so a bare runtime fails at the first eviction
    decision instead of silently degrading to recency.
    """


class LookaheadPolicy(CachePolicy):
    """Evict the resident whose next use lies farthest in the backlog.

    The online approximation of :class:`BeladyPolicy`: instead of a
    clairvoyant trace, it reads the admission scheduler's *reordered
    backlog* — the queue of groups not yet begun — as a lookahead
    window (the CoServe trick, arXiv:2503.02354). Within ``horizon``
    upcoming accesses, each resident's distance to first use is exact;
    residents not appearing in the window rank as farthest (ties broken
    least-recent, then by name). Because the engines cascade one policy
    down the hierarchy, the same ranking drives both HBM evictions and
    DDR demotions.

    The backlog supplier is attached by the owning engine
    (:meth:`bind_backlog`): in sim mode it is the live view of the
    engine's remaining queue, in live mode the node's pending-group
    mirror — the cross-check pins that both views are identical at
    every decision point. Standalone use without a backlog raises
    :class:`LookaheadUnboundError`.
    """

    name = "lookahead"

    #: Default scan depth — matches ExpertReorderScheduler's horizon, so
    #: the window the policy reads is the window the scheduler sorted.
    DEFAULT_HORIZON = 256

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        super().__init__()
        if horizon <= 0:
            raise ValueError(f"lookahead horizon must be positive: {horizon}")
        self.horizon = horizon
        self._backlog: Optional[Callable[[], Sequence[str]]] = None

    def bind_backlog(self, supplier: Callable[[], Sequence[str]]) -> None:
        """Attach the engine's backlog view: a zero-arg callable yielding
        upcoming expert names in scheduled order (soonest first)."""
        self._backlog = supplier

    def _distances(self) -> Dict[str, int]:
        if self._backlog is None:
            raise LookaheadUnboundError(
                "the lookahead policy needs a scheduler backlog: serving "
                "engines attach one automatically (bind_backlog); a bare "
                "CoERuntime cannot rank victims by next-use distance"
            )
        distances: Dict[str, int] = {}
        for index, name in enumerate(self._backlog()):
            if index >= self.horizon:
                break
            if name not in distances:
                distances[name] = index
        return distances

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        distances = self._distances()
        beyond = self.horizon + 1
        return sorted(
            resident,
            key=lambda n: (
                -distances.get(n, beyond), self._recency(n), n
            ),
        )

    def why(self, name: str) -> str:
        if self._backlog is None:
            return "lookahead: no backlog bound"
        distance = self._distances().get(name)
        if distance is None:
            return f"lookahead: unused within horizon {self.horizon}"
        return f"lookahead: next use {distance} groups ahead"


class BeladyPolicy(CachePolicy):
    """Clairvoyant (offline-optimal) eviction, replayed from a trace.

    ``trace`` is the demand access sequence — expert names in the order
    the runtime will (re-)see them, e.g. :attr:`CoERuntime.demand_trace`
    recorded on a previous run of the same workload. The policy keeps a
    cursor that advances on every demand access and always evicts the
    resident whose next use lies farthest ahead (never-used-again
    first). With uniform expert sizes this is Belady's MIN: no online
    policy can achieve a higher hit rate on the same access sequence.
    """

    name = "belady"

    def __init__(self, trace: Sequence[str]) -> None:
        super().__init__()
        self.trace = tuple(trace)
        self._positions: Dict[str, List[int]] = {}
        for index, name in enumerate(self.trace):
            self._positions.setdefault(name, []).append(index)
        self._cursor = 0

    @classmethod
    def from_runtime(cls, runtime: "CoERuntime") -> "BeladyPolicy":
        """Replay the demand trace a prior run's runtime recorded."""
        return cls(runtime.demand_trace)

    def on_access(
        self, expert: ExpertProfile, hit: bool, *, speculative: bool = False
    ) -> None:
        super().on_access(expert, hit, speculative=speculative)
        if not speculative:
            self._cursor += 1

    def on_access_run(self, experts: Sequence[ExpertProfile]) -> None:
        # A run is all demand accesses: the replay cursor advances once
        # per access, exactly as the scalar path would step it.
        super().on_access_run(experts)
        self._cursor += len(experts)

    def _next_use(self, name: str) -> int:
        positions = self._positions.get(name)
        if positions is None:
            return len(self.trace) + 1
        index = bisect_left(positions, self._cursor)
        if index >= len(positions):
            return len(self.trace) + 1
        return positions[index]

    def eviction_order(self, resident: Mapping[str, ExpertProfile]) -> List[str]:
        return sorted(resident, key=lambda n: (-self._next_use(n), n))

    def why(self, name: str) -> str:
        nxt = self._next_use(name)
        if nxt > len(self.trace):
            return "belady: never used again"
        return f"belady: next use at trace index {nxt}"


#: What the serving layers accept wherever a cache policy is configured:
#: a name (string or :class:`CachePolicyName`), a ready policy instance,
#: a zero-arg factory, or None for the default (LRU).
CachePolicyLike = Union[
    None, str, CachePolicyName, CachePolicy, Callable[[], CachePolicy]
]

#: The by-name-configurable policies (belady is offline-only and needs a
#: trace, so it is constructable but not nameable — see make_policy).
CACHE_POLICIES = tuple(
    m.value for m in CachePolicyName if m is not CachePolicyName.BELADY
)

_FACTORIES: Dict[str, Callable[[], CachePolicy]] = {
    CachePolicyName.LRU.value: LRUPolicy,
    CachePolicyName.LFU.value: LFUPolicy,
    CachePolicyName.GDSF.value: GDSFPolicy,
    CachePolicyName.PREDICTIVE.value: PredictivePolicy,
    CachePolicyName.LOOKAHEAD.value: LookaheadPolicy,
}


def make_policy(spec: CachePolicyLike = None) -> CachePolicy:
    """Build the cache policy a spec calls for.

    ``None`` means the default (LRU). Instances pass through untouched —
    which is how :class:`BeladyPolicy` (trace-bound) and pre-configured
    policies are injected; note an *instance* holds mutable state and
    must not be shared between runtimes. ``"belady"`` by name is
    rejected: the oracle needs a recorded trace, so it can only be
    passed as an instance (see ``benchmarks/test_cache_policies.py``).
    """
    if spec is None:
        return LRUPolicy()
    if isinstance(spec, CachePolicy):
        return spec
    if isinstance(spec, (str, CachePolicyName)):
        name = CachePolicyName.coerce(spec).value
        if name == CachePolicyName.BELADY.value:
            raise ValueError(
                "the belady oracle needs a recorded trace; construct "
                "BeladyPolicy(trace) (e.g. BeladyPolicy.from_runtime of a "
                "prior run) and pass the instance"
            )
        return _FACTORIES[name]()
    if callable(spec):
        policy = spec()
        if not isinstance(policy, CachePolicy):
            raise TypeError(
                f"cache-policy factory returned {type(policy).__name__}, "
                "not a CachePolicy"
            )
        return policy
    raise TypeError(f"cannot build a cache policy from {spec!r}")


__all__ = [
    "CACHE_POLICIES",
    "BeladyPolicy",
    "CachePolicy",
    "CachePolicyLike",
    "GDSFPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "LookaheadPolicy",
    "LookaheadUnboundError",
    "PredictivePolicy",
    "make_policy",
]
