"""The CoE runtime: dynamic expert linking/loading with an LRU HBM cache.

Reproduces paper Section V-B:

- every expert is an independently compiled artifact whose HBM and DDR
  requirements are known ahead of time,
- all experts initially live in the capacity tier (DDR on the SN40L, host
  DRAM on a DGX); a region of HBM acts as a software-managed cache,
- on request, the runtime "activates" the expert by copying its
  HBM-destined segments up; if HBM is full, the **least recently used**
  expert is evicted first,
- read-only symbols (weights) are *not* copied back on eviction — only the
  mutable fraction pays the downgrade copy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.coe.expert import ExpertProfile
from repro.obs import Timeline


@dataclass(frozen=True)
class SwitchEvent:
    """The outcome of one expert activation."""

    expert: str
    hit: bool
    bytes_up: int
    bytes_down: int
    time_s: float
    evicted: tuple = ()


@dataclass
class RuntimeStats:
    """Cumulative cache behaviour.

    Every ``activate`` call counts as one request, including calls whose
    copy fails: those additionally increment ``failures`` and contribute
    nothing to ``bytes_up``/``bytes_down``/``switch_time_s`` (the copy
    never happened). Failed requests are a subset of ``misses``.
    """

    requests: int = 0
    hits: int = 0
    evictions: int = 0
    failures: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    switch_time_s: float = 0.0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class CoERuntime:
    """LRU expert cache over a fixed HBM byte budget.

    ``upgrade_time(num_bytes)`` and ``downgrade_time(num_bytes)`` supply
    the platform's copy costs (DDR->HBM and HBM->DDR respectively); the
    runtime is platform-agnostic, which is how the same code models both
    the SN40L node and the DGX baselines.
    """

    def __init__(
        self,
        hbm_budget_bytes: int,
        upgrade_time: Callable[[int], float],
        downgrade_time: Optional[Callable[[int], float]] = None,
    ) -> None:
        if hbm_budget_bytes < 0:
            raise ValueError(f"negative HBM budget: {hbm_budget_bytes}")
        self.hbm_budget_bytes = hbm_budget_bytes
        self._upgrade_time = upgrade_time
        self._downgrade_time = downgrade_time or upgrade_time
        #: name -> expert, in LRU order (oldest first).
        self._resident: "OrderedDict[str, ExpertProfile]" = OrderedDict()
        #: Running sum of resident weight bytes, maintained on insert and
        #: evict so the eviction loop is O(victims), not O(residents²).
        self._resident_bytes = 0
        self.stats = RuntimeStats()
        self._timeline: Optional[Timeline] = None
        self._clock: Optional[Callable[[], float]] = None
        self._span_lane = "dma"

    # ------------------------------------------------------------------
    def attach_timeline(
        self,
        timeline: Timeline,
        clock: Callable[[], float],
        lane: str = "dma",
    ) -> None:
        """Record each DDR->HBM copy as a span at ``clock()`` time.

        ``clock`` supplies the caller's notion of "now" (a simulator's
        clock in the serving engine; wall time in a driver); the copy
        span runs from ``clock()`` for the modelled transfer duration.
        """
        self._timeline = timeline
        self._clock = clock
        self._span_lane = lane

    def detach_timeline(self) -> None:
        """Stop recording copy spans (e.g. when a sim's clock dies)."""
        self._timeline = None
        self._clock = None

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def resident_experts(self) -> List[str]:
        return list(self._resident)

    def is_resident(self, expert: ExpertProfile) -> bool:
        return expert.name in self._resident

    def would_evict(self, expert: ExpertProfile) -> tuple:
        """Names of the LRU victims activating ``expert`` would evict.

        Pure preview — no mutation. Lets a speculative prefetcher decline
        a guess whose eviction set includes experts it must keep resident.
        """
        if expert.name in self._resident:
            return ()
        victims: List[str] = []
        free = self.hbm_budget_bytes - self._resident_bytes
        for name, resident in self._resident.items():  # oldest first
            if free >= expert.weight_bytes:
                break
            victims.append(name)
            free += resident.weight_bytes
        return tuple(victims)

    # ------------------------------------------------------------------
    def activate(self, expert: ExpertProfile, *, span: bool = True) -> SwitchEvent:
        """Make ``expert`` resident in HBM; returns the switch record.

        A hit refreshes recency and costs nothing ("if the next request is
        for the same model, it can resume immediately with no additional
        overhead"). A miss evicts LRU victims until the expert fits, pays
        the copy-back for their mutable state, then copies the expert up.

        With a timeline attached, each miss's copy is recorded as a span;
        ``span=False`` suppresses that for callers (the speculative
        prefetcher) that account for the copy's occupancy themselves.
        """
        self.stats.requests += 1
        if expert.name in self._resident:
            self._resident.move_to_end(expert.name)
            self.stats.hits += 1
            return SwitchEvent(
                expert=expert.name, hit=True, bytes_up=0, bytes_down=0, time_s=0.0
            )

        if expert.weight_bytes > self.hbm_budget_bytes:
            raise ValueError(
                f"expert {expert.name} ({expert.weight_bytes} B) exceeds the "
                f"HBM budget ({self.hbm_budget_bytes} B)"
            )

        evicted: List[str] = []
        victims: List[ExpertProfile] = []
        bytes_down = 0
        while self._resident_bytes + expert.weight_bytes > self.hbm_budget_bytes:
            victim_name, victim = self._resident.popitem(last=False)
            evicted.append(victim_name)
            victims.append(victim)
            self._resident_bytes -= victim.weight_bytes
            bytes_down += victim.copyback_bytes
            self.stats.evictions += 1

        bytes_up = expert.weight_bytes
        try:
            time_s = self._upgrade_time(bytes_up)
            if bytes_down:
                time_s += self._downgrade_time(bytes_down)
        except Exception:
            # A failed copy must not corrupt the cache: reinstate the
            # victims (oldest first, preserving LRU order) and undo the
            # eviction accounting before propagating the failure. The
            # request itself stays counted, as a failure.
            for victim in reversed(victims):
                self._resident[victim.name] = victim
                self._resident.move_to_end(victim.name, last=False)
                self._resident_bytes += victim.weight_bytes
            self.stats.evictions -= len(victims)
            self.stats.failures += 1
            raise
        self._resident[expert.name] = expert
        self._resident_bytes += expert.weight_bytes

        self.stats.bytes_up += bytes_up
        self.stats.bytes_down += bytes_down
        self.stats.switch_time_s += time_s
        if span and self._timeline is not None:
            now = self._clock()
            self._timeline.record(
                f"copy:{expert.name}",
                lane=self._span_lane,
                category="switch",
                start_s=now,
                end_s=now + time_s,
                args={
                    "bytes_up": bytes_up,
                    "bytes_down": bytes_down,
                    "evicted": list(evicted),
                },
            )
        return SwitchEvent(
            expert=expert.name,
            hit=False,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            time_s=time_s,
            evicted=tuple(evicted),
        )

    def flush(self) -> None:
        """Evict everything (between experiments)."""
        self._resident.clear()
        self._resident_bytes = 0
