"""The CoE runtime: dynamic expert linking/loading with a policy-driven HBM cache.

Reproduces paper Section V-B:

- every expert is an independently compiled artifact whose HBM and DDR
  requirements are known ahead of time,
- all experts initially live in the capacity tier (DDR on the SN40L, host
  DRAM on a DGX); a region of HBM acts as a software-managed cache,
- on request, the runtime "activates" the expert by copying its
  HBM-destined segments up; if HBM is full, resident experts are evicted
  first — **least recently used** by default (the paper's policy), or
  whatever :class:`repro.coe.cache.CachePolicy` the runtime was built
  with (LFU, cost-aware GDSF, predictor-driven, or the offline Belady
  oracle),
- read-only symbols (weights) are *not* copied back on eviction — only the
  mutable fraction pays the downgrade copy.

The runtime distinguishes **demand** activations (a request needs the
expert now) from **speculative** ones (a prefetcher warming a guess):
speculative traffic is accounted in its own counters so the demand
``hit_rate`` is not polluted by the cache talking to itself, and only
demand accesses extend :attr:`CoERuntime.demand_trace` — the recorded
access sequence the Belady oracle replays.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence

from repro.coe.cache import CachePolicy, CachePolicyLike, make_policy
from repro.coe.decisions import DecisionLog
from repro.coe.expert import ExpertProfile
from repro.memory.hierarchy import MemoryHierarchy, TierLike
from repro.obs import Timeline


class SwitchEvent(NamedTuple):
    """The outcome of one expert activation.

    A NamedTuple rather than a frozen dataclass: one is constructed per
    activation on the serving engines' hottest loop, where tuple
    construction is several times cheaper than per-field
    ``object.__setattr__``.
    """

    expert: str
    hit: bool
    bytes_up: int
    bytes_down: int
    time_s: float
    evicted: tuple = ()
    #: Which cache policy made the eviction decision.
    policy: str = "lru"
    #: Per-victim one-line reasons, parallel to ``evicted`` (span args).
    evicted_why: tuple = ()
    #: Whether this activation was speculative (prefetcher traffic).
    speculative: bool = False
    #: Which tier the expert was fetched from ("hbm" on a hit; "ddr" or
    #: "nvme" on a miss, depending on where it was resident).
    src_tier: str = "hbm"
    #: Experts demoted DDR->NVMe to make room for an NVMe promotion.
    demoted: tuple = ()


class PromotionEvent(NamedTuple):
    """The outcome of one pipelined (ahead-of-demand) NVMe->DDR promotion.

    Returned by :meth:`CoERuntime.promote_to_ddr`. ``time_s`` is the DMA
    occupancy of the promotion read plus any demotion write-backs it
    forced — the serving engine books it on the prefetch lane, where it
    overlaps compute instead of stalling a switch.
    """

    expert: str
    time_s: float
    bytes_read: int
    bytes_written: int
    demoted: tuple = ()


class TierOverrunError(RuntimeError):
    """A bounded DDR tier cannot be brought back under its budget.

    Raised (only with ``strict_tiers=True``) before any mutation when a
    promotion needs room but every demotion candidate is HBM-pinned, or
    the incoming expert alone exceeds the DDR budget. The default
    runtime clamps instead: it commits the promotion, counts the event
    in :attr:`RuntimeStats.tier_overruns`, and lets the tier run
    transiently oversubscribed until HBM pins lift.
    """


@dataclass
class RuntimeStats:
    """Cumulative cache behaviour, demand and speculative separated.

    Every *demand* ``activate`` call counts as one request, including
    calls whose copy fails: those additionally increment ``failures``
    and contribute nothing to ``bytes_up``/``bytes_down``/
    ``switch_time_s`` (the copy never happened). Failed requests are a
    subset of ``misses``.

    *Speculative* activations (``activate(..., speculative=True)`` —
    prefetcher warms, online-replication copies) land exclusively in the
    ``speculative_*`` counters, so ``hit_rate`` reflects what the
    serving path actually experienced. ``evictions`` counts every
    eviction regardless of which kind of copy forced it (an eviction is
    a real state change either way).
    """

    requests: int = 0
    hits: int = 0
    evictions: int = 0
    failures: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    switch_time_s: float = 0.0
    speculative_requests: int = 0
    speculative_hits: int = 0
    speculative_bytes_up: int = 0
    speculative_bytes_down: int = 0
    speculative_switch_time_s: float = 0.0
    #: Multi-tier traffic (zero unless the runtime has a bounded DDR
    #: tier): NVMe->DDR promotions riding a miss, DDR->NVMe demotions
    #: forced by the DDR budget, and the bytes moved to/from NVMe.
    #: Demotions are **priced**: each demoted victim pays the
    #: ``ddr -> nvme`` write-back edge, folded into the same switch time
    #: as the promotion that forced it (the DMA engine that fills the
    #: hole is the one that drained it). Like ``evictions``, tier moves
    #: are real state changes and are counted regardless of speculation.
    tier_promotions: int = 0
    tier_demotions: int = 0
    nvme_bytes_read: int = 0
    nvme_bytes_written: int = 0
    #: Times a bounded DDR tier could not reach its budget because every
    #: demotion candidate was HBM-pinned (or the incoming expert alone
    #: exceeds the budget). The default behaviour is a documented clamp:
    #: residency is committed anyway, the overrun is counted here, and
    #: the tier runs transiently oversubscribed until pins lift. A
    #: runtime built with ``strict_tiers=True`` raises
    #: :class:`TierOverrunError` instead, before any mutation.
    tier_overruns: int = 0
    #: Promotions started ahead of demand by the pipelined prefetch path
    #: (:meth:`CoERuntime.promote_to_ddr`) — kept separate from the
    #: demand ``tier_promotions`` so a run without pipelining still pins
    #: ``tier_promotions == 0`` at an unconstrained ladder point.
    pipelined_promotions: int = 0
    pipelined_promotion_time_s: float = 0.0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def speculative_misses(self) -> int:
        return self.speculative_requests - self.speculative_hits


class CoERuntime:
    """Policy-driven expert cache over a fixed HBM byte budget.

    Copy costs come from a :class:`repro.memory.MemoryHierarchy` —
    ``hierarchy.transfer_time(src, dst, num_bytes)`` prices every edge,
    which is how the same code models both the SN40L node and the DGX
    baselines. The legacy ``upgrade_time``/``downgrade_time`` callables
    are still accepted (they become the DDR<->HBM edges of a two-level
    hierarchy, bit for bit); pass one form or the other, not both.

    ``policy`` picks the eviction policy (see :mod:`repro.coe.cache`):
    a name (``"lru"``, ``"lfu"``, ``"gdsf"``, ``"predictive"``), a
    :class:`CachePolicy` instance, or a zero-arg factory; unset means
    LRU, bit-identical to the historical hard-coded behaviour.

    ``ddr_budget_bytes`` turns on the constrained-memory mode of the
    CoServe scenario (arXiv:2503.02354): DDR holds only a bounded slice
    of the library, the rest lives on the hierarchy's ``nvme`` backing
    tier, and a miss on an NVMe-resident expert pays the multi-hop
    promotion. The hierarchy is *inclusive*: an HBM-resident expert
    keeps its DDR home copy (that's the copy-back target), so the DDR
    budget must cover the HBM expert region and HBM residents are never
    demotion victims.
    """

    def __init__(
        self,
        hbm_budget_bytes: int,
        upgrade_time: Optional[Callable[[int], float]] = None,
        downgrade_time: Optional[Callable[[int], float]] = None,
        policy: CachePolicyLike = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        ddr_budget_bytes: Optional[int] = None,
        strict_tiers: bool = False,
    ) -> None:
        if hbm_budget_bytes < 0:
            raise ValueError(f"negative HBM budget: {hbm_budget_bytes}")
        if hierarchy is not None and upgrade_time is not None:
            raise ValueError(
                "pass either a MemoryHierarchy or upgrade/downgrade "
                "callables, not both"
            )
        if hierarchy is None:
            if upgrade_time is None:
                raise ValueError(
                    "CoERuntime needs a hierarchy or an upgrade_time callable"
                )
            hierarchy = MemoryHierarchy.from_edge_times(
                upgrade_time, downgrade_time
            )
        self.hbm_budget_bytes = hbm_budget_bytes
        self.hierarchy = hierarchy
        if ddr_budget_bytes is not None:
            if ddr_budget_bytes < 0:
                raise ValueError(f"negative DDR budget: {ddr_budget_bytes}")
            if ddr_budget_bytes < hbm_budget_bytes:
                raise ValueError(
                    f"DDR budget ({ddr_budget_bytes} B) must cover the HBM "
                    f"expert region ({hbm_budget_bytes} B): the hierarchy is "
                    "inclusive — every HBM resident keeps its DDR home copy"
                )
            if "nvme" not in hierarchy:
                raise ValueError(
                    "a DDR budget needs an 'nvme' backing tier to demote "
                    f"into; hierarchy levels are {hierarchy.names}"
                )
        self.ddr_budget_bytes = ddr_budget_bytes
        self.strict_tiers = strict_tiers
        self.policy: CachePolicy = make_policy(policy)
        self.policy.bind_runtime(self)
        #: name -> expert, in recency order (least recently used first).
        self._resident: "OrderedDict[str, ExpertProfile]" = OrderedDict()
        #: Running sum of resident weight bytes, maintained on insert and
        #: evict so the eviction loop is O(victims), not O(residents²).
        self._resident_bytes = 0
        #: DDR residency, recency-ordered — only consulted when the DDR
        #: tier is bounded (``ddr_budget_bytes`` set). Unbounded DDR
        #: means every non-HBM expert is DDR-resident, no bookkeeping.
        self._ddr_resident: "OrderedDict[str, ExpertProfile]" = OrderedDict()
        self._ddr_bytes = 0
        self.stats = RuntimeStats()
        #: Demand access sequence (expert names, in order) — the trace a
        #: :class:`repro.coe.cache.BeladyPolicy` replays.
        self.demand_trace: List[str] = []
        self._timeline: Optional[Timeline] = None
        self._clock: Optional[Callable[[], float]] = None
        self._span_lane = "dma"
        self._decisions: Optional[DecisionLog] = None
        self._decision_stream = "node0"

    # ------------------------------------------------------------------
    def transfer_time(
        self, src_tier: TierLike, dst_tier: TierLike, num_bytes: int
    ) -> float:
        """Edge-based copy cost between two tiers of the hierarchy."""
        return self.hierarchy.transfer_time(src_tier, dst_tier, num_bytes)

    def upgrade_time(self, num_bytes: int) -> float:
        """Deprecated: use ``transfer_time("ddr", "hbm", num_bytes)``."""
        warnings.warn(
            "CoERuntime.upgrade_time is deprecated; use "
            "transfer_time('ddr', 'hbm', num_bytes)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.hierarchy.transfer_time("ddr", "hbm", num_bytes)

    def downgrade_time(self, num_bytes: int) -> float:
        """Deprecated: use ``transfer_time("hbm", "ddr", num_bytes)``."""
        warnings.warn(
            "CoERuntime.downgrade_time is deprecated; use "
            "transfer_time('hbm', 'ddr', num_bytes)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.hierarchy.transfer_time("hbm", "ddr", num_bytes)

    # ------------------------------------------------------------------
    def attach_timeline(
        self,
        timeline: Timeline,
        clock: Callable[[], float],
        lane: str = "dma",
    ) -> None:
        """Record each DDR->HBM copy as a span at ``clock()`` time.

        ``clock`` supplies the caller's notion of "now" (a simulator's
        clock in the serving engine; wall time in a driver); the copy
        span runs from ``clock()`` for the modelled transfer duration.
        """
        self._timeline = timeline
        self._clock = clock
        self._span_lane = lane

    def detach_timeline(self) -> None:
        """Stop recording copy spans (e.g. when a sim's clock dies)."""
        self._timeline = None
        self._clock = None

    # ------------------------------------------------------------------
    def attach_decisions(self, log: DecisionLog, stream: str) -> None:
        """Record every *demand* cache decision into ``log``.

        This is the single choke point where cache hits and eviction
        choices happen, for every backend — the sim engines and the
        live asyncio engine all activate through here — so attaching a
        :class:`~repro.coe.decisions.DecisionLog` captures the cache
        half of the sim/live decision cross-check with no backend
        branches. Speculative (prefetcher/replication) traffic is not a
        policy decision about a request and is not recorded.
        """
        self._decisions = log
        self._decision_stream = stream

    def detach_decisions(self) -> None:
        self._decisions = None

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def resident_experts(self) -> List[str]:
        return list(self._resident)

    @property
    def resident_map(self) -> Mapping[str, ExpertProfile]:
        """The resident experts, name-keyed, recency-ordered (LRU first).

        A live read-only view over the runtime's own mapping — the
        columnar drain's run scanner does one membership probe per
        group, and going through :meth:`is_resident` would put a Python
        call back on the hottest loop. Callers must not mutate it.
        """
        return self._resident

    def is_resident(self, expert: ExpertProfile) -> bool:
        return expert.name in self._resident

    # ------------------------------------------------------------------
    @property
    def ddr_resident_experts(self) -> List[str]:
        """DDR residents when the DDR tier is bounded (else empty)."""
        return list(self._ddr_resident)

    def _backing_tier(self, name: str) -> str:
        """Where a non-HBM-resident expert currently lives."""
        if self.ddr_budget_bytes is None or name in self._ddr_resident:
            return "ddr"
        return "nvme"

    def tier_of(self, name: str) -> str:
        """The fastest tier holding ``name`` right now."""
        if name in self._resident:
            return "hbm"
        return self._backing_tier(name)

    def place(self, experts: Sequence[ExpertProfile]) -> Dict[str, str]:
        """Initial lower-tier placement; returns name -> tier.

        With an unbounded DDR tier this is the legacy world: everything
        is DDR-resident and nothing is recorded. With a bounded one,
        DDR fills in the given order and the overflow lands on NVMe —
        the cold-start state of the constrained-memory scenario.
        """
        if self.ddr_budget_bytes is None:
            return {e.name: "ddr" for e in experts}
        placement: Dict[str, str] = {}
        for expert in experts:
            if expert.name in self._ddr_resident:
                placement[expert.name] = "ddr"
                continue
            if self._ddr_bytes + expert.weight_bytes <= self.ddr_budget_bytes:
                self._ddr_resident[expert.name] = expert
                self._ddr_bytes += expert.weight_bytes
                placement[expert.name] = "ddr"
            else:
                placement[expert.name] = "nvme"
        return placement

    def _plan_ddr_demotions(
        self, expert: ExpertProfile, pinned: frozenset
    ) -> tuple:
        """The DDR victims promoting ``expert`` would demote, in policy
        order, plus whether the budget is unreachable. Pure — no
        mutation, no stats — so it can run inside :meth:`activate`'s
        pre-mutation pricing block.

        Victim choice reuses the *same* cache policy that ranks HBM
        evictions — the decision choke point cascades down the
        hierarchy rather than growing a second policy. ``pinned`` names
        are skipped: the inclusive hierarchy needs HBM residents' DDR
        copies as copy-back targets (and the incoming expert's own new
        home). An expert that alone exceeds the DDR budget demotes
        nothing — no amount of demotion could make it fit.
        """
        victims: List[ExpertProfile] = []
        if expert.weight_bytes > self.ddr_budget_bytes:
            return victims, True
        projected = self._ddr_bytes + expert.weight_bytes
        if projected <= self.ddr_budget_bytes:
            return victims, False
        # Materialize the order first: eviction_order may lazily iterate
        # the mapping the commit step will pop from.
        for name in list(self.policy.eviction_order(self._ddr_resident)):
            if name in pinned:
                continue
            victim = self._ddr_resident[name]
            victims.append(victim)
            projected -= victim.weight_bytes
            if projected <= self.ddr_budget_bytes:
                return victims, False
        return victims, True

    def _commit_ddr_promotion(
        self,
        expert: ExpertProfile,
        victims: Sequence[ExpertProfile],
        overrun: bool,
    ) -> None:
        """Apply a planned promotion: demote victims, seat the expert."""
        for victim in victims:
            del self._ddr_resident[victim.name]
            self._ddr_bytes -= victim.weight_bytes
            self.stats.tier_demotions += 1
        self._ddr_resident[expert.name] = expert
        self._ddr_bytes += expert.weight_bytes
        if overrun:
            self.stats.tier_overruns += 1

    def promote_to_ddr(self, expert: ExpertProfile) -> PromotionEvent:
        """Promote an NVMe resident to DDR ahead of demand (pipelined).

        The serving engine's promotion-pipelining path: when the
        scheduler's reordered backlog shows an upcoming NVMe-resident
        expert, the engine starts this promotion on the prefetch lane
        while the current group decodes, so the later demand miss pays
        only the DDR->HBM hop. Residency commits immediately (the sim is
        analytic — the returned ``time_s`` is the DMA occupancy the
        caller must serialize on its copy lane); demotion write-backs
        are priced exactly as on the demand path. Accounted in the
        ``pipelined_*`` counters, never in ``tier_promotions`` and never
        in the decision log: a promotion is prefetcher traffic, not a
        policy decision about a request, so sim/live decision streams
        stay identical with pipelining on or off.

        No-op (zero-cost event) if the expert already has a DDR home or
        is HBM-resident; raises unless the DDR tier is bounded.
        """
        if self.ddr_budget_bytes is None:
            raise ValueError(
                "promote_to_ddr needs a bounded DDR tier (ddr_budget_bytes)"
            )
        if expert.name in self._ddr_resident or expert.name in self._resident:
            return PromotionEvent(expert.name, 0.0, 0, 0)
        pinned = frozenset(self._resident) | {expert.name}
        victims, overrun = self._plan_ddr_demotions(expert, pinned)
        if overrun and self.strict_tiers:
            raise TierOverrunError(
                f"pipelined promotion of {expert.name} "
                f"({expert.weight_bytes} B) cannot bring DDR back under its "
                f"budget ({self.ddr_budget_bytes} B)"
            )
        bytes_read = expert.weight_bytes
        bytes_written = sum(v.weight_bytes for v in victims)
        time_s = self.hierarchy.transfer_time("nvme", "ddr", bytes_read)
        if bytes_written:
            time_s += self.hierarchy.transfer_time("ddr", "nvme", bytes_written)
        demoted = tuple(v.name for v in victims)
        self._commit_ddr_promotion(expert, victims, overrun)
        self.stats.pipelined_promotions += 1
        self.stats.pipelined_promotion_time_s += time_s
        self.stats.nvme_bytes_read += bytes_read
        self.stats.nvme_bytes_written += bytes_written
        return PromotionEvent(
            expert.name, time_s, bytes_read, bytes_written, demoted
        )

    def _select_victims(self, expert: ExpertProfile) -> List[ExpertProfile]:
        """The residents activating ``expert`` would evict, in policy
        order. Pure — no mutation, no stats."""
        victims: List[ExpertProfile] = []
        free = self.hbm_budget_bytes - self._resident_bytes
        if free >= expert.weight_bytes:
            return victims
        for name in self.policy.eviction_order(self._resident):
            victims.append(self._resident[name])
            free += self._resident[name].weight_bytes
            if free >= expert.weight_bytes:
                break
        return victims

    def would_evict(self, expert: ExpertProfile) -> tuple:
        """Names of the victims activating ``expert`` would evict, under
        the runtime's cache policy.

        Pure preview — no mutation. Lets a speculative prefetcher decline
        a guess whose eviction set includes experts it must keep resident.
        """
        if expert.name in self._resident:
            return ()
        return tuple(v.name for v in self._select_victims(expert))

    # ------------------------------------------------------------------
    def activate(
        self,
        expert: ExpertProfile,
        *,
        span: bool = True,
        speculative: bool = False,
    ) -> SwitchEvent:
        """Make ``expert`` resident in HBM; returns the switch record.

        A hit refreshes recency and costs nothing ("if the next request is
        for the same model, it can resume immediately with no additional
        overhead"). A miss evicts policy-chosen victims until the expert
        fits, pays the copy-back for their mutable state, then copies the
        expert up. Nothing mutates until the copy cost is known to
        succeed, so a failed copy leaves the cache exactly as it was.

        ``speculative=True`` marks prefetcher traffic: it is accounted in
        the separate ``speculative_*`` counters and does not extend the
        demand trace. With a timeline attached, each miss's copy is
        recorded as a span; ``span=False`` suppresses that for callers
        (the speculative prefetcher) that account for the copy's
        occupancy themselves.
        """
        if speculative:
            self.stats.speculative_requests += 1
        else:
            self.stats.requests += 1
            self.demand_trace.append(expert.name)
        self.policy.on_access(expert, expert.name in self._resident,
                              speculative=speculative)
        if expert.name in self._resident:
            self._resident.move_to_end(expert.name)
            if speculative:
                self.stats.speculative_hits += 1
            else:
                self.stats.hits += 1
                if self._decisions is not None:
                    self._decisions.record(
                        self._decision_stream, "cache", expert.name, "hit"
                    )
            return SwitchEvent(
                expert=expert.name, hit=True, bytes_up=0, bytes_down=0,
                time_s=0.0, policy=self.policy.name, speculative=speculative,
            )

        if expert.weight_bytes > self.hbm_budget_bytes:
            raise ValueError(
                f"expert {expert.name} ({expert.weight_bytes} B) exceeds the "
                f"HBM budget ({self.hbm_budget_bytes} B)"
            )

        src_tier = self._backing_tier(expert.name)
        if self.ddr_budget_bytes is not None and src_tier == "ddr":
            # A DDR hit-on-the-way-up refreshes DDR recency so the
            # policy's demotion ranking sees real reuse order.
            self._ddr_resident.move_to_end(expert.name)
        victims = self._select_victims(expert)
        evicted = tuple(v.name for v in victims)
        evicted_why = tuple(self.policy.why(v.name) for v in victims)
        bytes_down = sum(v.copyback_bytes for v in victims)
        bytes_up = expert.weight_bytes
        demote_victims: List[ExpertProfile] = []
        demote_bytes = 0
        overrun = False
        if src_tier == "nvme":
            # Plan the DDR demotions *before* anything mutates, so a
            # failed copy (or a strict-mode overrun) leaves every tier
            # untouched. Pinned: HBM residents that survive this
            # activation (same-call HBM victims ARE demotable — their
            # copy-back already happened by the time the hole opens) and
            # the incoming expert's own new DDR home.
            pinned = frozenset(
                name for name in self._resident if name not in evicted
            ) | {expert.name}
            demote_victims, overrun = self._plan_ddr_demotions(expert, pinned)
            demote_bytes = sum(v.weight_bytes for v in demote_victims)
        try:
            if overrun and self.strict_tiers:
                raise TierOverrunError(
                    f"promoting {expert.name} ({expert.weight_bytes} B) "
                    f"cannot bring DDR back under its budget "
                    f"({self.ddr_budget_bytes} B): every demotion candidate "
                    "is HBM-pinned or the expert alone exceeds the budget"
                )
            time_s = self.hierarchy.transfer_time(src_tier, "hbm", bytes_up)
            if bytes_down:
                time_s += self.hierarchy.transfer_time("hbm", "ddr", bytes_down)
            if demote_bytes:
                # Each demoted victim pays the DDR->NVMe write-back on
                # the same DMA engine as the promotion that forced it.
                time_s += self.hierarchy.transfer_time(
                    "ddr", "nvme", demote_bytes
                )
        except Exception:
            # A failed copy must not corrupt the cache: nothing was
            # evicted, inserted, promoted, or demoted yet, so only the
            # failure is recorded. The request itself stays counted.
            if not speculative:
                self.stats.failures += 1
            raise
        for victim in victims:
            del self._resident[victim.name]
            self._resident_bytes -= victim.weight_bytes
            self.policy.on_evict(victim.name)
            self.stats.evictions += 1
        self._resident[expert.name] = expert
        self._resident_bytes += expert.weight_bytes
        self.policy.on_insert(expert)
        demoted: tuple = ()
        if src_tier == "nvme":
            demoted = tuple(v.name for v in demote_victims)
            self._commit_ddr_promotion(expert, demote_victims, overrun)
            self.stats.tier_promotions += 1
            self.stats.nvme_bytes_read += bytes_up
            self.stats.nvme_bytes_written += demote_bytes

        if speculative:
            self.stats.speculative_bytes_up += bytes_up
            self.stats.speculative_bytes_down += bytes_down
            self.stats.speculative_switch_time_s += time_s
        else:
            self.stats.bytes_up += bytes_up
            self.stats.bytes_down += bytes_down
            self.stats.switch_time_s += time_s
            if self._decisions is not None:
                self._decisions.record(
                    self._decision_stream, "cache", expert.name, "miss",
                    detail=evicted,
                )
        if span and self._timeline is not None:
            now = self._clock()
            self._timeline.record(
                f"copy:{expert.name}",
                lane=self._span_lane,
                category="switch",
                start_s=now,
                end_s=now + time_s,
                args={
                    "hit": False,
                    "speculative": speculative,
                    "policy": self.policy.name,
                    "bytes_up": bytes_up,
                    "bytes_down": bytes_down,
                    "evicted": list(evicted),
                    "evicted_why": list(evicted_why),
                },
            )
        return SwitchEvent(
            expert=expert.name,
            hit=False,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            time_s=time_s,
            evicted=evicted,
            policy=self.policy.name,
            evicted_why=evicted_why,
            speculative=speculative,
            src_tier=src_tier,
            demoted=demoted,
        )

    def touch_run(self, experts: Sequence[ExpertProfile]) -> None:
        """Bulk demand-hit path: ``activate`` a run of resident experts.

        The columnar drain's batch form of n consecutive hit
        ``activate`` calls (:mod:`repro.coe.columnar`); every expert
        **must** be resident — a run, by construction, contains no miss,
        so no eviction decision and no byte movement can occur, and the
        final runtime/policy state is exactly what the scalar sequence
        would leave: stats count every access, the demand trace extends
        in order, :meth:`CachePolicy.on_access_run` applies the policy
        bookkeeping, and recency ordering moves each *distinct* name to
        the back in last-occurrence order (earlier moves of a repeated
        name are overwritten by its last one, so only that one matters).
        Demand decisions are still recorded one per access — the
        decision stream is the sim/live cross-check's evidence and must
        stay record-for-record identical.
        """
        resident = self._resident
        names = [e.name for e in experts]
        if not all(map(resident.__contains__, names)):
            missing = [n for n in names if n not in resident]
            raise ValueError(
                f"touch_run requires resident experts; missing {missing!r}"
            )
        n = len(names)
        self.stats.requests += n
        self.stats.hits += n
        self.demand_trace.extend(names)
        self.policy.on_access_run(experts)
        if n == 1:
            resident.move_to_end(names[0])
        else:
            seen = set()
            add = seen.add
            distinct_rev = [
                name for name in reversed(names)
                if not (name in seen or add(name))
            ]
            move = resident.move_to_end
            for name in reversed(distinct_rev):
                move(name)
        if self._decisions is not None:
            record = self._decisions.record
            stream = self._decision_stream
            for name in names:
                record(stream, "cache", name, "hit")

    def flush(self) -> None:
        """Evict everything from HBM (between experiments).

        Lower-tier placement survives: the hierarchy is inclusive, so
        every flushed resident already has its DDR (or NVMe) home copy.
        """
        self._resident.clear()
        self._resident_bytes = 0
        self.policy.reset()
