"""Columnar (structure-of-arrays) drain core for the serving engines.

The PR 6 batched drain (:meth:`ServingEngine._drain_batched`) replaced
per-group simulator events with one Python loop iteration per group.
On a million-request run that loop *is* the cost: a dict probe, a
predictor observation, a cache activation, a float add chain and one
``CompletedRequest`` NamedTuple per request — all interpreter work.

This module vectorizes the loop itself. A queued backlog is *lowered*
once into parallel arrays (:func:`lower_queue`): per-group expert names,
phase-time triples (read from the engine's phase memo, which
:meth:`ServingEngine.precompute_phases` seeds through the vectorized
``perf.kernel_cost`` batch entry points), batch sizes, and per-request
request-id/arrival/output-token columns. The drain (:func:`drain`) then
segments the queue into **runs**:

    a run is a maximal stretch of groups whose experts are all
    HBM-resident with no pending copy-done barrier — so no eviction,
    no DMA wait, no prefetch decision can occur inside it, and every
    timestamp in the run is a pure prefix sum over phase durations.

Run timestamps come from one ``numpy.cumsum`` over the interleaved
``(router, prefill, decode)`` durations. ``cumsum`` accumulates strictly
left-to-right, so each partial sum performs the *same* float additions
in the *same* order as the scalar loop — the timestamps are bitwise
identical, not merely close (pinned by ``tests/coe/test_columnar.py``).
Cache/predictor bookkeeping for a run goes through the batch APIs
(:meth:`CoERuntime.touch_run`, :meth:`CachePolicy.on_access_run`,
:meth:`ExpertPredictor.observe_run`), each an order-equivalent bulk form
of its scalar path. Only *decision points* — a cache miss (victim
selection + demand copy), or a hit gated on a pending copy barrier —
drop back to the exact scalar code of the batched drain, preserving
``CoERuntime.activate`` as the single cache-decision choke point the
sim/live cross-check relies on.

Completions land in a :class:`CompletedLog`: run segments append whole
column blocks (no per-request allocation), decision points append scalar
``CompletedRequest`` records, and materialization back to the exact
NamedTuples today's report/consumer code sees is lazy. Latency and
token aggregation read the columns directly (``finish - arrival`` over
float64 arrays is elementwise-bitwise-equal to the scalar property).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.coe.engine import CompletedRequest, ServingEngine
    from repro.coe.scheduling import RequestGroup

__all__ = [
    "CompletedLog",
    "GroupColumns",
    "drain",
    "latency_values",
    "lower_queue",
    "token_total",
]


def _completed_request_type():
    from repro.coe.engine import CompletedRequest

    return CompletedRequest


class _Block:
    """One drained run, as columns. Per-group arrays (``names``,
    ``sizes``, ``start``, ``end``) plus per-request arrays aligned with
    ``sizes`` expansion (``req_ids``, ``arrivals``, ``tokens``)."""

    __slots__ = (
        "names", "sizes", "start", "end", "req_ids", "arrivals", "tokens",
        "num_requests",
    )

    def __init__(self, names, sizes, start, end, req_ids, arrivals, tokens):
        self.names = names
        self.sizes = sizes
        self.start = start
        self.end = end
        self.req_ids = req_ids
        self.arrivals = arrivals
        self.tokens = tokens
        self.num_requests = len(req_ids)

    def materialize(self) -> List["CompletedRequest"]:
        """Expand back to per-request records, in completion order.

        ``.tolist()`` converts every ``float64``/``int64`` back to the
        native Python scalar — exactly (no rounding) — so the records
        are indistinguishable from ones the scalar path appended.
        """
        CompletedRequest = _completed_request_type()
        sizes = self.sizes.tolist()
        names = [n for n, b in zip(self.names, sizes) for _ in range(b)]
        batches = [b for b in sizes for _ in range(b)]
        starts = np.repeat(self.start, self.sizes).tolist()
        ends = np.repeat(self.end, self.sizes).tolist()
        return [
            CompletedRequest(*fields)
            for fields in zip(
                self.req_ids.tolist(), names, batches,
                self.arrivals.tolist(), starts, ends, self.tokens.tolist(),
            )
        ]

    def latency_values(self) -> List[float]:
        finish = np.repeat(self.end, self.sizes)
        return (finish - self.arrivals).tolist()

    def token_total(self) -> int:
        return int(self.tokens.sum())


class CompletedLog:
    """Completion store mixing scalar records and column blocks.

    Ordered segments: plain ``CompletedRequest`` lists (decision points,
    and any fallback drain that appends record by record) interleaved
    with :class:`_Block` columns (vectorized runs). :attr:`append` is
    the *bound* ``list.append`` of the current tail segment — the scalar
    paths pay zero dispatch overhead over appending to a bare list.

    Iteration, indexing and ``materialize()`` present the exact
    per-request NamedTuples, in completion order, that a plain list
    would hold; the result is cached until the log grows.
    """

    __slots__ = ("_segments", "_tail", "append", "_cache", "_cache_len")

    def __init__(self) -> None:
        self._tail: List["CompletedRequest"] = []
        self._segments: List[object] = [self._tail]
        #: Bound tail-list append; rebound whenever a block closes the tail.
        self.append = self._tail.append
        self._cache: Optional[List["CompletedRequest"]] = None
        self._cache_len = -1

    def extend_block(
        self, names, sizes, start, end, req_ids, arrivals, tokens
    ) -> None:
        """Append one drained run as columns (see :class:`_Block`)."""
        block = _Block(names, sizes, start, end, req_ids, arrivals, tokens)
        if self._tail:
            self._segments.append(block)
            self._tail = []
            self._segments.append(self._tail)
            self.append = self._tail.append
        else:
            # Keep the (empty) tail last so `append` stays valid.
            self._segments.insert(len(self._segments) - 1, block)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(
            seg.num_requests if isinstance(seg, _Block) else len(seg)
            for seg in self._segments
        )

    def __iter__(self) -> Iterator["CompletedRequest"]:
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def materialize(self) -> List["CompletedRequest"]:
        """The full per-request record list, built lazily and cached."""
        total = len(self)
        if self._cache is not None and self._cache_len == total:
            return self._cache
        records: List["CompletedRequest"] = []
        for seg in self._segments:
            if isinstance(seg, _Block):
                records.extend(seg.materialize())
            else:
                records.extend(seg)
        self._cache = records
        self._cache_len = total
        return records

    # ------------------------------------------------------------------
    def latency_values(self) -> List[float]:
        """Per-request ``finish - arrival``, in completion order.

        Column segments subtract whole float64 arrays; IEEE-754 binary
        subtraction is the same operation either way, so each value is
        bitwise-equal to the scalar ``CompletedRequest.latency_s``.
        """
        out: List[float] = []
        for seg in self._segments:
            if isinstance(seg, _Block):
                out.extend(seg.latency_values())
            else:
                out.extend(c.latency_s for c in seg)
        return out

    def token_total(self) -> int:
        total = 0
        for seg in self._segments:
            if isinstance(seg, _Block):
                total += seg.token_total()
            else:
                total += sum(c.output_tokens for c in seg)
        return total


def latency_values(completed) -> List[float]:
    """Per-request latencies of any completion store (list or log)."""
    if isinstance(completed, CompletedLog):
        return completed.latency_values()
    return [c.latency_s for c in completed]


def token_total(completed) -> int:
    """Total output tokens of any completion store (list or log)."""
    if isinstance(completed, CompletedLog):
        return completed.token_total()
    return sum(c.output_tokens for c in completed)


# ----------------------------------------------------------------------
# Lowering + the drain core
# ----------------------------------------------------------------------


class GroupColumns:
    """A queued backlog, lowered to parallel arrays (one row per group)."""

    __slots__ = (
        "groups", "experts", "names", "phases", "flat", "sizes", "offsets",
        "req_ids", "arrivals", "tokens",
    )

    def __init__(self, groups, experts, names, phases, flat, sizes, offsets,
                 req_ids, arrivals, tokens):
        self.groups = groups
        self.experts = experts
        self.names = names
        #: Python-float phase triples — the decision path computes its
        #: timestamps from these in pure Python so no ``np.float64``
        #: ever leaks into engine state or completion records.
        self.phases = phases
        #: The same triples as an (n, 3) float64 array (exact values:
        #: float -> float64 is an identity conversion) for the cumsum.
        self.flat = flat
        self.sizes = sizes
        #: Request-column offsets: group ``i`` owns rows
        #: ``offsets[i]:offsets[i+1]`` of the per-request arrays.
        self.offsets = offsets
        self.req_ids = req_ids
        self.arrivals = arrivals
        self.tokens = tokens

    def __len__(self) -> int:
        return len(self.groups)


def lower_queue(
    engine: "ServingEngine", groups: Sequence["RequestGroup"]
) -> GroupColumns:
    """Lower ``groups`` into :class:`GroupColumns` for one drain.

    Phase triples come from the engine's phase memo (seeded in bulk by
    the vectorized ``precompute_phases``; any cold shape falls through
    the same memoized scalar path the batched drain uses). The slow
    factor is applied here once — it cannot change inside a drain event,
    and ``x * 1.0`` is skipped exactly as the batched loop skips it.
    """
    base_of = engine._base_phase_times
    cache = engine._phase_cache
    # The drain seeds the memo via precompute_phases first, so the direct
    # lookup hits for every group; cold shapes (callers that skipped the
    # precompute) fall through the memoized scalar path.
    base = [cache.get(g.phase_key) for g in groups]
    if None in base:
        base = [
            b if b is not None else base_of(g) for b, g in zip(base, groups)
        ]
    factor = engine.slow_factor
    if factor != 1.0:
        phases = [
            (b[0] * factor, b[1] * factor, b[2] * factor) for b in base
        ]
    else:
        phases = base
    experts = [g.expert for g in groups]
    sizes = np.asarray([len(g.requests) for g in groups], dtype=np.int64)
    offsets = np.empty(len(groups) + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return GroupColumns(
        groups=list(groups),
        experts=experts,
        names=[e.name for e in experts],
        phases=phases,
        flat=np.asarray(phases, dtype=np.float64).reshape(len(groups), 3),
        sizes=sizes,
        offsets=offsets,
        req_ids=np.asarray(
            [r.request_id for g in groups for r in g.requests],
            dtype=np.int64,
        ),
        arrivals=np.asarray(
            [r.arrival_s for g in groups for r in g.requests],
            dtype=np.float64,
        ),
        tokens=np.asarray(
            [r.output_tokens for g in groups for r in g.requests],
            dtype=np.int64,
        ),
    )


def drain(engine: "ServingEngine", cols: GroupColumns, start_at: float) -> float:
    """Drain lowered columns on a local clock; returns the end time.

    The array-parallel form of :meth:`ServingEngine._drain_batched` for
    the non-``overlap``, untraced case (the caller guarantees both).
    Runs of resident-expert groups are timestamped by one cumsum and
    their cache/predictor bookkeeping applied through the batch APIs;
    each decision point executes the batched loop's scalar code
    verbatim. The segmentation is conservative — a group is only
    admitted to a run if its expert is resident *and* any pending copy
    completed by the run's start — and a group it excludes is simply
    re-examined (scalar) at its true start time, where the identical
    hit/barrier/miss arithmetic applies. State mutations therefore
    happen in the same order with the same values as the batched loop,
    which the three-way equivalence grid asserts byte-for-byte.
    """
    CompletedRequest = _completed_request_type()
    runtime = engine.server.runtime
    resident = runtime.resident_map
    copy_done = engine._copy_done
    predictor = engine._predictor
    observe = predictor.observe
    log = engine.completed
    names = cols.names
    experts = cols.experts
    phases = cols.phases
    flat = cols.flat
    offsets = cols.offsets
    n = len(names)
    now = start_at
    pos = 0
    while pos < n:
        # --- scan the maximal run of barrier-free resident hits -------
        run_end = pos
        while run_end < n:
            name = names[run_end]
            if name not in resident:
                break
            done = copy_done.get(name)
            if done is not None and done > now:
                break
            run_end += 1
        if run_end > pos:
            m = run_end - pos
            # One prefix sum over [now, r0, p0, d0, r1, ...]: acc[3k] is
            # group k's exec start, acc[3k+3] its end — each partial sum
            # adds the same floats in the same order as the scalar loop.
            acc = np.empty(3 * m + 1, dtype=np.float64)
            acc[0] = now
            acc[1:] = flat[pos:run_end].reshape(-1)
            np.cumsum(acc, out=acc)
            run_experts = experts[pos:run_end]
            predictor.observe_run(run_experts)
            runtime.touch_run(run_experts)
            lo = offsets[pos]
            hi = offsets[run_end]
            log.extend_block(
                names[pos:run_end],
                cols.sizes[pos:run_end],
                acc[0 : 3 * m : 3].copy(),
                acc[3::3].copy(),
                cols.req_ids[lo:hi],
                cols.arrivals[lo:hi],
                cols.tokens[lo:hi],
            )
            now = float(acc[-1])
            pos = run_end
            continue
        # --- decision point: the batched loop's scalar code -----------
        group = cols.groups[pos]
        expert = experts[pos]
        expert_name = names[pos]
        observe(expert)
        if expert_name in resident:
            runtime.activate(expert)  # hit: free recency refresh
            done = copy_done.get(expert_name)
            exec_start = now if done is None or done <= now else done
        else:
            exec_start = engine._demand_copy(expert, now=now)
        base = phases[pos]
        end = exec_start + base[0] + base[1] + base[2]
        batch = len(group.requests)
        append = log.append
        for req in group.requests:
            append(CompletedRequest(
                req.request_id, expert_name, batch, req.arrival_s,
                exec_start, end, req.output_tokens,
            ))
        now = end
        pos += 1
        if pos < n:
            head_name = names[pos]
            done = copy_done.get(head_name)
            if done is not None and done > now and head_name in resident:
                now = done
    engine._busy_until_s = now
    return now
