"""Sim/live decision cross-check: one trace, two clocks, one verdict.

The policy/clock split (:mod:`repro.sim.clock`) claims that every
decision-making component — grouping, cluster dispatch, deadline
admission, cache victim selection — is clock-agnostic: the same request
stream must produce **byte-identical decisions** whether the policies
run on the discrete-event simulator or on the asyncio wall clock. This
module is the proof harness. :func:`cross_check` serves the same
backlog through both backends with a :class:`repro.coe.decisions
.DecisionLog` attached to each, then compares the logs stream by
stream:

- ``admission`` — dispatch target per group, plus admit/shed verdicts
  with the ETA at full ``repr`` float precision (cluster configs only,
  matching which engine the sim backend selects);
- ``node0``/``node1``/... — each node runtime's demand cache decisions:
  hits, and misses with the exact eviction victim list.

A single different bit anywhere — a backlog sum, a tie-break, a cache
recency update — shows up as a differing record and a non-``None``
:meth:`~repro.coe.decisions.DecisionLog.diff`.

Two preconditions are enforced rather than assumed: priorities must be
uniform (the sim's deadline path sorts by priority; live admission is
arrival-ordered, so only the uniform case is order-identical), and the
live run must shed nothing to backpressure (a backpressure shed skips a
group's cache activity, which would desynchronize the node streams — so
the check pins ``max_queue`` above the whole backlog by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.coe.decisions import DecisionLog
from repro.coe.engine import EngineRequest
from repro.coe.expert import ExpertLibrary

#: Fast-forward time_scale (wall seconds per model second) the check
#: runs live mode at when the caller did not pin one: a multi-second
#: model trace finishes in tens of wall milliseconds.
CHECK_TIME_SCALE = 0.01


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of one sim/live decision comparison."""

    match: bool
    #: First divergence, human-readable; ``None`` on a match.
    mismatch: Optional[str]
    decisions: int
    streams: tuple
    sim_log: DecisionLog = field(repr=False, compare=False, default=None)
    live_log: DecisionLog = field(repr=False, compare=False, default=None)
    sim_report: object = field(repr=False, compare=False, default=None)
    live_report: object = field(repr=False, compare=False, default=None)

    def to_dict(self) -> dict:
        return {
            "match": self.match,
            "mismatch": self.mismatch,
            "decisions": self.decisions,
            "streams": list(self.streams),
        }


def cross_check(
    platform,
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    config=None,
) -> CrossCheckResult:
    """Serve ``requests`` on both clocks and diff every decision.

    ``config`` may be a sim- or live-mode :class:`repro.coe.api
    .ServeConfig` (or ``None`` for a live-valid default); the other
    mode's twin is derived from it — the whole point is that one config
    describes both runs. Sim-only features (faults, ``overlap``,
    ``steal``) raise the usual typed :class:`~repro.coe.api
    .ServeModeError` because no live twin exists for them.
    """
    from repro.coe.api import ServeConfig, ServeMode, build_server
    from repro.coe.live_engine import LiveEngine

    if config is None:
        config = ServeConfig(
            policy="affinity", cluster_policy="least_loaded", mode="live",
        )
    requests = list(requests)
    priorities = {r.priority for r in requests}
    if len(priorities) > 1:
        raise ValueError(
            "cross_check needs uniform request priorities: the sim's "
            "deadline admission re-sorts by priority while live admission "
            "is arrival-ordered, so mixed priorities compare different "
            "orders, not different clocks"
        )
    sim_config = config.with_(
        mode=ServeMode.SIM,
        max_queue=None, time_scale=None, drain_timeout_s=None,
    )
    live_config = config.with_(
        mode=ServeMode.LIVE,
        # Never backpressure-shed: a shed group skips its cache activity
        # and the node streams would diverge for queueing reasons, not
        # policy reasons.
        max_queue=max(config.max_queue or 0, len(requests) + 1),
        time_scale=(
            config.time_scale if config.time_scale is not None
            else CHECK_TIME_SCALE
        ),
    )

    sim_log = DecisionLog()
    sim_report = build_server(
        platform, library, sim_config, decision_log=sim_log
    ).serve(requests)

    live_log = DecisionLog()
    live_engine = LiveEngine(
        platform, library, live_config, decision_log=live_log
    )
    live_report = live_engine.serve(requests)
    if live_report.shed_backpressure:
        raise RuntimeError(
            f"cross_check shed {live_report.shed_backpressure} requests to "
            f"backpressure despite max_queue={live_config.max_queue}"
        )

    mismatch = sim_log.diff(live_log)
    return CrossCheckResult(
        match=mismatch is None,
        mismatch=mismatch,
        decisions=len(sim_log),
        streams=tuple(sim_log.streams),
        sim_log=sim_log,
        live_log=live_log,
        sim_report=sim_report,
        live_report=live_report,
    )


__all__ = ["CHECK_TIME_SCALE", "CrossCheckResult", "cross_check"]
