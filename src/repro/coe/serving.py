"""End-to-end Samba-CoE serving: router -> expert switch -> generation.

Implements the paper's Figure 9 flow on any :class:`Platform`:

1. run the router (always HBM-resident) over the incoming prompt batch,
2. activate the required experts (DDR->HBM on SN40L; host->HBM on DGX),
3. run each (prompt, expert) pair sequentially — batch samples are
   independent and may need different experts (paper Section VI-B).

Latency is broken into router / switch / execution components, which is
exactly the paper's Figure 1 decomposition.

:class:`ExpertServer` is this latency path's cost model; the throughput
engines (:mod:`repro.coe.engine`, :mod:`repro.coe.cluster_engine`) embed
one per node for phase timings and the LRU runtime. The old public name
``CoEServer`` is a deprecated alias kept for back-compat — new code goes
through the unified facade, :func:`repro.serve` (see
:mod:`repro.coe.api` and ``docs/SERVING_API.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.coe.router import Router, RoutingDecision
from repro.coe.runtime import CoERuntime
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.catalog import LLAMA2_7B
from repro.systems.platforms import Platform
from repro.units import GiB


@dataclass(frozen=True)
class RequestLatency:
    """Latency breakdown of one served prompt."""

    expert: str
    router_s: float
    switch_s: float
    prefill_s: float
    decode_s: float

    @property
    def execute_s(self) -> float:
        """Model execution (the paper's non-switching component)."""
        return self.router_s + self.prefill_s + self.decode_s

    @property
    def total_s(self) -> float:
        return self.router_s + self.switch_s + self.prefill_s + self.decode_s


@dataclass
class ServeResult:
    """Latency of one served batch."""

    platform: str
    requests: List[RequestLatency] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def total_s(self) -> float:
        return sum(r.total_s for r in self.requests)

    @property
    def switch_s(self) -> float:
        return sum(r.switch_s for r in self.requests)

    @property
    def execute_s(self) -> float:
        return sum(r.execute_s for r in self.requests)

    @property
    def switch_fraction(self) -> float:
        return self.switch_s / self.total_s if self.total_s > 0 else 0.0


#: Tier names a ``tier_capacities`` override may size.
TIER_CAPACITY_KEYS = ("hbm", "ddr", "nvme")


def validate_tier_capacities(tier_capacities) -> Optional[Dict[str, int]]:
    """Normalize/validate a ``tier_capacities`` mapping; None passes through.

    Keys must be drawn from :data:`TIER_CAPACITY_KEYS`, values must be
    positive integers, and a bounded DDR tier must cover the HBM region
    (the hierarchy is inclusive — HBM residents keep DDR home copies).
    """
    if tier_capacities is None:
        return None
    caps = dict(tier_capacities)
    unknown = set(caps) - set(TIER_CAPACITY_KEYS)
    if unknown:
        raise ValueError(
            f"unknown tier_capacities keys {sorted(unknown)}; "
            f"expected a subset of {TIER_CAPACITY_KEYS}"
        )
    for name, value in caps.items():
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise ValueError(
                f"tier_capacities[{name!r}] must be a positive byte count, "
                f"got {value!r}"
            )
    hbm, ddr = caps.get("hbm"), caps.get("ddr")
    if hbm is not None and ddr is not None and ddr < hbm:
        raise ValueError(
            f"tier_capacities['ddr'] ({ddr}) must be >= the HBM expert "
            f"region ({hbm}): the hierarchy is inclusive — every HBM "
            "resident keeps its DDR home copy"
        )
    return caps


class ExpertServer:
    """Serves a CoE on one platform with a policy-cached HBM expert region.

    ``cache_policy`` picks the HBM eviction policy (see
    :mod:`repro.coe.cache`): a name (``"lru"``/``"lfu"``/``"gdsf"``/
    ``"predictive"``), a :class:`~repro.coe.cache.CachePolicy` instance,
    or a zero-arg factory; unset means the paper-faithful LRU.

    ``tier_capacities`` overrides hierarchy byte budgets by tier name:
    ``"hbm"`` sizes the expert region directly (mutually exclusive with
    ``reserved_hbm_bytes``, which sizes it by subtraction), ``"ddr"``
    bounds the capacity tier and turns on NVMe backing — the
    constrained-memory ladder of the CoServe scenario sweeps both.
    """

    def __init__(
        self,
        platform: Platform,
        library: ExpertLibrary,
        router: Optional[Router] = None,
        reserved_hbm_bytes: Optional[int] = None,
        cache_policy=None,
        tier_capacities: Optional[Dict[str, int]] = None,
    ) -> None:
        self.platform = platform
        self.library = library
        self.router = router or Router(library)
        caps = validate_tier_capacities(tier_capacities) or {}
        self.tier_capacities = caps or None
        hbm_override = caps.get("hbm")
        if hbm_override is not None:
            if reserved_hbm_bytes is not None:
                raise ValueError(
                    "reserved_hbm_bytes and tier_capacities['hbm'] both size "
                    "the HBM expert region; pass one or the other"
                )
            # The ladder sweeps capacities independent of the concrete
            # platform (a what-if region may exceed physical HBM), so the
            # implied reservation just floors at zero.
            budget = hbm_override
            reserved_hbm_bytes = max(
                0, platform.hbm_capacity_bytes - hbm_override
            )
        else:
            if reserved_hbm_bytes is None:
                # Router weights stay pinned in HBM; reserve headroom for
                # the KV cache and activations as well (paper: "The router
                # and KV-cache is always in HBM").
                reserved_hbm_bytes = self.router.model.weight_bytes + 8 * GiB
            budget = platform.hbm_capacity_bytes - reserved_hbm_bytes
            if budget <= 0:
                raise ValueError(
                    f"{platform.name}: reservation {reserved_hbm_bytes} "
                    "exceeds HBM"
                )
        self.reserved_hbm_bytes = reserved_hbm_bytes
        ddr_budget = caps.get("ddr")
        if ddr_budget is not None and ddr_budget < budget:
            raise ValueError(
                f"tier_capacities['ddr'] ({ddr_budget}) must cover the HBM "
                f"expert region ({budget})"
            )
        self.hierarchy = MemoryHierarchy.from_platform(platform)
        if caps:
            self.hierarchy = self.hierarchy.with_capacities(caps)
        self.runtime = CoERuntime(
            hbm_budget_bytes=budget,
            policy=cache_policy,
            hierarchy=self.hierarchy,
            ddr_budget_bytes=ddr_budget,
        )
        if ddr_budget is not None:
            # Cold start: DDR fills in library order, the overflow is
            # NVMe-resident until first demand promotes it.
            self.runtime.place(library.experts)

    # ------------------------------------------------------------------
    def router_time(self, batch: int, prompt_tokens: int) -> float:
        """Router latency: one batched prefill plus a classification step."""
        prefill = self.platform.prefill_time(
            self.router.model, batch=batch, seq=prompt_tokens
        )
        readout = self.platform.decode_token_time(
            self.router.model, batch=batch, context=prompt_tokens
        )
        return prefill + readout

    def expert_time(
        self,
        expert: ExpertProfile,
        output_tokens: int,
        prompt_tokens: int,
        batch: int = 1,
    ) -> tuple:
        """(prefill_s, decode_s) of one batched expert generation.

        Decode over the growing context uses the closed-form aggregate
        (:meth:`Platform.decode_span_time`) instead of a per-token loop.
        """
        prefill = self.platform.prefill_time(expert.model, batch, prompt_tokens)
        decode = self.platform.decode_span_time(
            expert.model, output_tokens, batch, prompt_tokens
        )
        return prefill, decode

    # ------------------------------------------------------------------
    def serve_prompts(
        self,
        prompts: Sequence[str],
        output_tokens: int = 20,
        prompt_tokens: int = 256,
    ) -> ServeResult:
        """Serve a batch of text prompts through router + experts."""
        if not prompts:
            raise ValueError("need at least one prompt")
        decisions = self.router.route_batch(prompts)
        return self._serve_decisions(decisions, output_tokens, prompt_tokens)

    def serve_experts(
        self,
        experts: Sequence[ExpertProfile],
        output_tokens: int = 20,
        prompt_tokens: int = 256,
    ) -> ServeResult:
        """Serve requests with pre-assigned experts (synthetic workloads).

        Used by the Figure 12 sweep, where requests draw uniformly over an
        expert population and the routing function itself is not under
        test (its latency still is).
        """
        if not experts:
            raise ValueError("need at least one expert request")
        decisions = [
            RoutingDecision(prompt="", domain=e.domain, expert=e, score=1.0)
            for e in experts
        ]
        return self._serve_decisions(decisions, output_tokens, prompt_tokens)

    def _serve_decisions(
        self,
        decisions: List[RoutingDecision],
        output_tokens: int,
        prompt_tokens: int,
    ) -> ServeResult:
        batch = len(decisions)
        router_total = self.router_time(batch, prompt_tokens)
        router_share = router_total / batch
        result = ServeResult(platform=self.platform.name)
        for decision in decisions:
            switch = self.runtime.activate(decision.expert)
            prefill, decode = self.expert_time(
                decision.expert, output_tokens, prompt_tokens
            )
            result.requests.append(
                RequestLatency(
                    expert=decision.expert.name,
                    router_s=router_share,
                    switch_s=switch.time_s,
                    prefill_s=prefill,
                    decode_s=decode,
                )
            )
        return result


class CoEServer(ExpertServer):
    """Deprecated alias of :class:`ExpertServer`.

    Serving entry points moved to the unified facade: build a
    :class:`repro.coe.api.ServeConfig` and call :func:`repro.serve`
    (single node or cluster, with fault tolerance), or use
    :class:`ExpertServer` directly for the batch-of-one latency path.
    ``RequestLatency`` and ``ServeResult`` stay importable both from
    here and from :mod:`repro.coe.api`.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "CoEServer is deprecated; use repro.serve(...) with a "
            "ServeConfig (see docs/SERVING_API.md), or ExpertServer for "
            "the batch-of-one latency path",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


__all__ = ["CoEServer", "ExpertServer", "RequestLatency", "ServeResult"]
