"""Request scheduling and speculative prefetch for CoE serving.

Two serving-layer optimisations that build on the paper's runtime design
(the paper's Section V-B runtime is FIFO; these are the natural
extensions its architecture enables):

- **Expert-affinity batching** — within a bounded reordering window,
  group requests that need the same expert so one DDR->HBM copy serves
  several generations. The three-tier design makes switches cheap, but a
  hit is still free; affinity turns random arrival streams into runs of
  hits.
- **Speculative prefetch** — the router takes a full model forward pass
  to pick the expert, during which the DMA engines are idle. A Markov
  transition predictor over past routing decisions starts copying its
  best non-resident guess *during* routing; a correct guess hides the
  switch behind the router pass, a wrong guess costs nothing over the
  baseline (the mispredicted copy is abandoned; the bandwidth was
  otherwise idle).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.coe.expert import ExpertProfile
from repro.coe.policies import SchedulerName
from repro.coe.serving import ExpertServer


@dataclass(frozen=True)
class Request:
    """One serving request with a pre-routed expert."""

    request_id: int
    expert: ExpertProfile


def fifo_schedule(requests: Sequence[Request]) -> List[Request]:
    """The baseline: serve in arrival order."""
    return list(requests)


def affinity_schedule(requests: Sequence[Request], window: int = 16) -> List[Request]:
    """Group same-expert requests within a bounded reordering window.

    Requests are taken ``window`` at a time; inside a window they are
    stably grouped by expert (groups ordered by first arrival), so no
    request is delayed by more than ``window - 1`` positions — a bounded
    fairness guarantee.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    scheduled: List[Request] = []
    for start in range(0, len(requests), window):
        chunk = requests[start : start + window]
        groups: "OrderedDict[str, List[Request]]" = OrderedDict()
        for request in chunk:
            groups.setdefault(request.expert.name, []).append(request)
        for group in groups.values():
            scheduled.extend(group)
    return scheduled


# ----------------------------------------------------------------------
# Admission-time schedulers (registry mirrors repro.coe.cache's
# CACHE_POLICIES / make_policy pattern)
# ----------------------------------------------------------------------


class Scheduler:
    """Admission-time request reordering, applied to the whole backlog.

    Runs *before* node scheduling: the engines hand the queued requests
    to :meth:`order` once per run (or, live, once per admitted backlog)
    and feed the result through the usual windowed node policy and group
    coalescing. Schedulers are stateless — :meth:`order` is a pure
    function of its input — which is what makes one instance safely
    shareable across cluster nodes and across the sim and live engines
    of a cross-check pair.
    """

    #: Registry key; subclasses set it to a :class:`SchedulerName` value.
    name = "scheduler"

    def order(self, requests: Sequence["Request"]) -> List["Request"]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoScheduler(Scheduler):
    """Arrival order — the historical admission behaviour, untouched."""

    name = "fifo"

    def order(self, requests: Sequence["Request"]) -> List["Request"]:
        return list(requests)


class ExpertReorderScheduler(Scheduler):
    """Batch the backlog by expert to amortize tier switches (CoServe).

    :func:`affinity_schedule` with a long horizon: where the node
    policy's ``window`` bounds per-request delay (fairness), the
    admission horizon trades that fairness for switch amortization —
    under a constrained HBM (or DDR) budget, a run of same-expert
    requests turns k misses into one promotion plus k-1 hits, which is
    the whole point of serving a CoE from less memory than its working
    set.
    """

    name = "expert_reorder"

    def __init__(self, horizon: int = 256) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon

    def order(self, requests: Sequence["Request"]) -> List["Request"]:
        return affinity_schedule(requests, window=self.horizon)

    def __repr__(self) -> str:
        return f"ExpertReorderScheduler(horizon={self.horizon})"


#: What the engines accept wherever a scheduler is expected: a name, an
#: enum member, an instance, a zero-arg factory, or None (FIFO).
SchedulerLike = Optional[object]

#: Every scheduler configurable by name.
SCHEDULERS = SchedulerName.values()

_SCHEDULER_FACTORIES = {
    SchedulerName.FIFO: FifoScheduler,
    SchedulerName.EXPERT_REORDER: ExpertReorderScheduler,
}


def make_scheduler(spec: SchedulerLike = None) -> Scheduler:
    """Coerce a scheduler spec into a :class:`Scheduler` instance.

    Accepts ``None`` (FIFO, the historical behaviour), a name or
    :class:`SchedulerName` member, an existing instance (returned
    as-is), or a zero-arg factory returning one.
    """
    if spec is None:
        return FifoScheduler()
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, (str, SchedulerName)):
        return _SCHEDULER_FACTORIES[SchedulerName.coerce(spec)]()
    if callable(spec):
        scheduler = spec()
        if not isinstance(scheduler, Scheduler):
            raise TypeError(
                f"scheduler factory returned {type(scheduler).__name__}, "
                "expected a Scheduler"
            )
        return scheduler
    raise TypeError(
        f"cannot make a scheduler from {spec!r}; expected a name "
        f"({', '.join(map(repr, SCHEDULERS))}), a Scheduler, or a factory"
    )


@dataclass(frozen=True)
class RequestGroup:
    """A run of same-expert requests served as one batched generation."""

    expert: ExpertProfile
    requests: tuple

    @property
    def batch(self) -> int:
        return len(self.requests)

    @property
    def phase_key(self) -> tuple:
        """Everything the group's phase times depend on, cached.

        Requests in a group may differ in lengths; the batch pads to the
        longest prompt and generation (standard static-batching cost).
        Computed once per group — the serving engine keys its phase memo
        on this from several hot paths (routing, admission, the drain
        loop), and the max() scans over the requests dominate when
        recomputed each time. The cache slot lives in ``__dict__`` only,
        so the generated ``__eq__``/``__hash__``/``repr`` (fields only)
        are unaffected.
        """
        key = self.__dict__.get("_phase_key")
        if key is None:
            key = (
                self.expert.name,
                len(self.requests),
                max(r.prompt_tokens for r in self.requests),
                max(r.output_tokens for r in self.requests),
            )
            object.__setattr__(self, "_phase_key", key)
        return key


def coalesce_groups(
    schedule: Sequence[Request], max_batch: int = 8
) -> List[RequestGroup]:
    """Merge *consecutive* same-expert requests into batched groups.

    One group pays one expert switch and one batched prefill/decode
    instead of ``batch`` batch-of-one generations. Only adjacent requests
    merge (reordering is the scheduler's job — see
    :func:`affinity_schedule`), and groups are capped at ``max_batch`` so
    the batched roofline stays within the platform's calibrated regime.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: List[RequestGroup] = []
    run: List[Request] = []
    for request in schedule:
        if run and (request.expert.name != run[0].expert.name
                    or len(run) >= max_batch):
            groups.append(RequestGroup(expert=run[0].expert, requests=tuple(run)))
            run = []
        run.append(request)
    if run:
        groups.append(RequestGroup(expert=run[0].expert, requests=tuple(run)))
    return groups


class GroupAssembler:
    """Streaming equivalent of ``coalesce_groups(affinity_schedule(...))``.

    The batch pipeline needs the whole backlog up front; an open-loop
    front end (the live serving engine, or the sim fed by an arrival
    trace) sees requests one at a time. This assembler ingests requests
    incrementally and emits exactly the groups the batch pipeline would
    have built — provably, because both halves of that pipeline are
    already streaming-shaped: :func:`affinity_schedule` is chunk-local
    (it only ever reorders within one ``window``-sized chunk), and
    :func:`coalesce_groups` is a single left-to-right scan whose only
    state is the open run. So buffering one window, reordering it, and
    feeding it through a persistent run-coalescer reproduces the batch
    output group for group — the equivalence property the scheduling
    tests assert, and the reason sim and live backends see the same
    group sequence for the same arrivals.

    ``policy`` is a :class:`repro.coe.policies.NodePolicy` value;
    ``fifo`` skips the window reorder entirely (matching
    ``ServingEngine._order``).
    """

    def __init__(
        self, policy: str = "affinity", window: int = 16, max_batch: int = 8
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.policy = policy
        self.window = window
        self.max_batch = max_batch
        #: The partially-filled reordering window (non-fifo only).
        self._pending: List[Request] = []
        #: The open same-expert run, possibly spanning window boundaries.
        self._run: List[Request] = []

    def _close_run(self) -> RequestGroup:
        group = RequestGroup(expert=self._run[0].expert,
                             requests=tuple(self._run))
        self._run = []
        return group

    def _feed(self, request: Request, out: List[RequestGroup]) -> None:
        """One step of the streaming coalescer (coalesce_groups' loop)."""
        if self._run and (
            request.expert.name != self._run[0].expert.name
            or len(self._run) >= self.max_batch
        ):
            out.append(self._close_run())
        self._run.append(request)

    def _drain_window(self, out: List[RequestGroup]) -> None:
        chunk = self._pending
        self._pending = []
        groups: "OrderedDict[str, List[Request]]" = OrderedDict()
        for request in chunk:
            groups.setdefault(request.expert.name, []).append(request)
        for run in groups.values():
            for request in run:
                self._feed(request, out)

    def push(self, request: Request) -> List[RequestGroup]:
        """Ingest one request; returns the groups this arrival closed."""
        out: List[RequestGroup] = []
        if self.policy == "fifo":
            self._feed(request, out)
            return out
        self._pending.append(request)
        if len(self._pending) >= self.window:
            self._drain_window(out)
        return out

    def flush(self) -> List[RequestGroup]:
        """End of stream: close the partial window and the open run."""
        out: List[RequestGroup] = []
        if self._pending:
            self._drain_window(out)
        if self._run:
            out.append(self._close_run())
        return out


@dataclass
class ScheduleOutcome:
    """Timing and cache behaviour of one served schedule."""

    policy: str
    total_s: float
    switch_s: float
    switches: int
    hits: int

    @property
    def requests(self) -> int:
        return self.switches + self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def serve_schedule(
    server: ExpertServer,
    schedule: Sequence[Request],
    policy_name: str,
    output_tokens: int = 20,
    prompt_tokens: int = 256,
) -> ScheduleOutcome:
    """Serve a schedule through a server, collecting timing totals."""
    if not schedule:
        raise ValueError("empty schedule")
    result = server.serve_experts(
        [r.expert for r in schedule],
        output_tokens=output_tokens,
        prompt_tokens=prompt_tokens,
    )
    switches = sum(1 for r in result.requests if r.switch_s > 0)
    return ScheduleOutcome(
        policy=policy_name,
        total_s=result.total_s,
        switch_s=result.switch_s,
        switches=switches,
        hits=len(result.requests) - switches,
    )


# ----------------------------------------------------------------------
# Speculative prefetch
# ----------------------------------------------------------------------


class ExpertPredictor:
    """First-order Markov predictor over expert transitions.

    The paper's CoE pipeline is explicitly sequential: "Outputs from one
    expert determine which expert(s) to execute next" (Section I), so the
    strongest signal for the *next* expert is the identity of the current
    one. The predictor learns transition counts (prev -> next) with a
    global-frequency fallback, and can rank all known experts so callers
    can pick the best candidate that is *not* already HBM-resident — the
    only kind of guess whose prefetch hides a switch.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._transitions: Dict[str, Counter] = {}
        self._last_seen: Dict[str, int] = {}
        self._clock = 0
        self._prev: Optional[str] = None
        self._experts: Dict[str, ExpertProfile] = {}
        self.predictions = 0
        self.correct = 0

    def observe(self, expert: ExpertProfile) -> None:
        """Record one routing decision (and the transition into it)."""
        self._clock += 1
        self._counts[expert.name] += 1
        self._last_seen[expert.name] = self._clock
        self._experts[expert.name] = expert
        if self._prev is not None:
            transitions = self._transitions.get(self._prev)
            if transitions is None:
                transitions = self._transitions[self._prev] = Counter()
            transitions[expert.name] += 1
        self._prev = expert.name

    def observe_run(self, experts: Sequence[ExpertProfile]) -> None:
        """Bulk :meth:`observe` of a run of consecutive routing decisions.

        The columnar drain's batch path: leaves the predictor in exactly
        the state n scalar ``observe`` calls would (counts summed per
        name, ``last_seen`` at each name's final clock tick, transition
        pairs — including the edge from the previous run's tail —
        counted in bulk). Nothing reads predictor state mid-run by
        construction (rankings are only consulted at prefetch/eviction
        decision points, which end a run), so the intermediate states a
        scalar sequence would pass through are unobservable.
        """
        if not experts:
            return
        names = [e.name for e in experts]
        clock = self._clock
        self._last_seen.update(
            zip(names, range(clock + 1, clock + len(names) + 1))
        )
        self._clock = clock + len(names)
        self._counts.update(names)
        self._experts.update(zip(names, experts))
        chain = names if self._prev is None else [self._prev] + names
        if len(chain) > 1:
            transitions = self._transitions
            for (prev, nxt), count in Counter(
                zip(chain, chain[1:])
            ).items():
                bucket = transitions.get(prev)
                if bucket is None:
                    bucket = transitions[prev] = Counter()
                bucket[nxt] += count
        self._prev = names[-1]

    def _iter_ranked_names(self) -> Iterator[str]:
        """Yield expert names most-likely-next first, lazily.

        The global-frequency fallback ranking (a sort over *every* known
        expert) is only computed if a consumer exhausts the
        transition-ranked head — the overlap prefetcher usually accepts
        one of the first few candidates, so the common case pays one
        small sort instead of two full ones.
        """
        def global_key(name: str):
            return (self._counts[name], self._last_seen[name])

        head: List[str] = []
        if self._prev is not None and self._prev in self._transitions:
            transitions = self._transitions[self._prev]
            head = sorted(
                transitions,
                key=lambda n: (transitions[n], global_key(n)),
                reverse=True,
            )
            yield from head
        seen = set(head)
        for name in sorted(self._counts, key=global_key, reverse=True):
            if name not in seen:
                yield name

    def _ranked_names(self) -> List[str]:
        return list(self._iter_ranked_names())

    def predict(self) -> Optional[ExpertProfile]:
        """Single best guess for the next expert (None without history)."""
        return next(
            (self._experts[n] for n in self._iter_ranked_names()), None
        )

    def candidates(self) -> List[ExpertProfile]:
        """All known experts, most-likely-next first."""
        return [self._experts[name] for name in self._ranked_names()]

    def iter_candidates(self) -> Iterator[ExpertProfile]:
        """Lazy :meth:`candidates`: same order, ranking computed on
        demand — the cheap path for consumers that stop at the first
        acceptable candidate."""
        return (self._experts[name] for name in self._iter_ranked_names())

    def score(self, actual: ExpertProfile, predicted: Optional[ExpertProfile]) -> bool:
        """Record prediction accuracy; returns whether it was correct.

        A ``None`` prediction (no history yet) is still a prediction the
        caller acted on — it counts as a miss, so ``accuracy`` is hits
        over *all* scored predictions, not just the confident ones.
        """
        self.predictions += 1
        hit = predicted is not None and predicted.name == actual.name
        if hit:
            self.correct += 1
        return hit

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


@dataclass
class PrefetchOutcome:
    """Timing of a speculatively-prefetched request stream."""

    total_s: float
    baseline_s: float
    hidden_switch_s: float
    predictor_accuracy: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.total_s if self.total_s > 0 else 1.0


def serve_with_prefetch(
    server: ExpertServer,
    experts: Sequence[ExpertProfile],
    output_tokens: int = 20,
    prompt_tokens: int = 256,
    predictor: Optional[ExpertPredictor] = None,
) -> PrefetchOutcome:
    """Serve a request stream with speculative prefetch during routing.

    For each request: the predictor guesses an expert and the copy starts
    concurrently with the router's forward pass. If the guess matches the
    router's decision, the switch overlaps the router time (only the
    excess beyond router time remains visible). A wrong guess falls back
    to the sequential baseline; an abandoned speculative copy consumes
    otherwise-idle DMA bandwidth and is not charged.
    """
    if not experts:
        raise ValueError("empty request stream")
    predictor = predictor or ExpertPredictor()
    router_s = server.router_time(batch=1, prompt_tokens=prompt_tokens)
    total = 0.0
    baseline = 0.0
    hidden = 0.0
    for expert in experts:
        # Prefetch the most likely *non-resident* expert: a resident guess
        # would have nothing to copy, so it can never hide a switch.
        guess = next(
            (c for c in predictor.iter_candidates()
             if not server.runtime.is_resident(c)),
            None,
        )
        correct = predictor.score(expert, guess)
        switch = server.runtime.activate(expert)
        prefill, decode = server.expert_time(expert, output_tokens, prompt_tokens)
        sequential = router_s + switch.time_s + prefill + decode
        baseline += sequential
        if correct and switch.time_s > 0:
            overlapped = max(router_s, switch.time_s) + prefill + decode
            hidden += sequential - overlapped
            total += overlapped
        else:
            total += sequential
        predictor.observe(expert)
    return PrefetchOutcome(
        total_s=total,
        baseline_s=baseline,
        hidden_switch_s=hidden,
        predictor_accuracy=predictor.accuracy,
    )
