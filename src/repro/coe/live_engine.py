"""Wall-clock CoE serving: the same policies, an asyncio backend.

The simulator answers "what would this policy do"; this module answers
"does the deployed loop actually do it". A :class:`LiveEngine` runs one
asyncio worker task per node against a :class:`repro.sim.clock.WallClock`
— real admission at arrival time, bounded per-node queues with
backpressure shedding, streamed token callbacks as decode steps complete,
and a graceful drain on shutdown — while making **byte-identical policy
decisions** to the sim backend for the same request stream:

- Grouping goes through :class:`repro.coe.scheduling.GroupAssembler`,
  the proven streaming equivalent of the batch pipeline's
  ``coalesce_groups(affinity_schedule(...))``.
- Node choice and deadline admission go through the pure decision core
  (:mod:`repro.coe.dispatch`) over a mirror of the sim's
  admission-logical state: monotone per-node backlog sums and queue-tail
  experts, fed by the same :func:`repro.coe.engine.group_phase_times`
  floats. Like the sim (where every request is backlogged at t=0),
  admission evaluates ETAs at logical ``now = 0.0`` — so the arithmetic
  is bitwise-identical even though wall arrivals are spread in time.
- Cache decisions happen inside :meth:`repro.coe.runtime.CoERuntime
  .activate`, the single choke point both backends share.

The cross-check (:mod:`repro.coe.crosscheck`) runs both backends over a
recorded trace and diffs their :class:`~repro.coe.decisions.DecisionLog`
streams — the correctness artifact for the whole policy/clock split.

What live mode deliberately does *not* model: speculative prefetch
(``overlap``), runtime stealing, and fault injection are sim-clock
features; :class:`repro.coe.api.ServeConfig` rejects them with a typed
:class:`~repro.coe.api.ServeModeError` rather than silently diverging.

Timestamps: everything is **model seconds** (``time_scale`` wall seconds
each — see :class:`~repro.sim.clock.WallClock`), so a live timeline's
spans line up with a sim run of the same work, and a 10-model-second
trace smoke-tests in a fraction of a wall second.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable, Deque, Dict, List, NamedTuple, Optional, Sequence, Set,
    TYPE_CHECKING, Tuple,
)

from repro.coe.cache import LookaheadPolicy, PredictivePolicy
from repro.coe.decisions import DecisionLog
from repro.coe.dispatch import admission_eta, choose_node, deadline_admits
from repro.coe.engine import (
    CompletedRequest,
    EngineRequest,
    group_phase_times,
)
from repro.coe.expert import ExpertLibrary
from repro.coe.metrics import summarize_latencies
from repro.coe.scheduling import (
    ExpertPredictor,
    GroupAssembler,
    RequestGroup,
    make_scheduler,
)
from repro.coe.serving import ExpertServer
from repro.obs import Timeline
from repro.sim.clock import WallClock
from repro.systems.cluster import partition_experts

if TYPE_CHECKING:  # avoid the api <-> live_engine import cycle
    from repro.coe.api import PlatformLike, ServeConfig

#: Live defaults, applied here so :class:`ServeConfig` can keep ``None``
#: (= "not set") and reject the knobs in sim mode.
DEFAULT_MAX_QUEUE = 64
DEFAULT_TIME_SCALE = 1.0
DEFAULT_DRAIN_TIMEOUT_S = 30.0

#: Shed reasons a :class:`ShedRequest` can carry.
SHED_REASONS = ("deadline", "backpressure")


class ShedRequest(NamedTuple):
    """One request the live engine refused, and why.

    ``deadline`` mirrors the sim's admission shedding (the ETA busts the
    SLO); ``backpressure`` is live-only (the chosen node's bounded queue
    was full at arrival). Shed work is reported, never silently dropped
    — the same contract as :attr:`ClusterEngine.rejected`.
    """

    request_id: int
    expert: str
    reason: str
    output_tokens: int


class TokenEvent(NamedTuple):
    """One streamed decode token, delivered to the token callback."""

    request_id: int
    expert: str
    #: 0-based index of this token within the request's generation.
    index: int
    #: Model-seconds timestamp of the decode step that produced it.
    time_s: float
    node: str


@dataclass
class _LiveNode:
    """One live node: cost model + cache + its worker's queue."""

    index: int
    name: str
    server: ExpertServer
    predictor: ExpertPredictor
    hosted: Set[str]
    #: Shared-shape phase memo (see :func:`group_phase_times`).
    phase_cache: Dict[Tuple[str, int, int, int], Tuple[float, float, float]] = (
        field(default_factory=dict)
    )
    #: Admission-logical backlog: running sum of admitted groups'
    #: execution times, the mirror of the sim's ``_admission_backlog``.
    backlog_s: float = 0.0
    #: Expert of the last admitted group (the sim's queue-tail expert).
    tail: Optional[str] = None
    queue: Optional[asyncio.Queue] = None
    #: Mirror of the not-yet-begun groups in this node's queue, in
    #: admission order — the live twin of the sim engine's ``_queue``
    #: deque. A lookahead cache policy reads it as its backlog window,
    #: and the pipelined-promotion peek reads its head; the worker pops
    #: it at group *begin* so its contents match what the sim's queue
    #: holds at every decision point.
    pending: Deque[RequestGroup] = field(default_factory=deque)
    #: Model-time point when this node's (single) DMA path frees up:
    #: pipelined NVMe->DDR promotions and demand copies serialize
    #: through it, mirroring the sim engine's ``_dma_free_s``.
    dma_free_s: float = 0.0
    completed: List[CompletedRequest] = field(default_factory=list)
    groups_done: int = 0

    def lane(self, base: str) -> str:
        return f"{self.name}/{base}"


@dataclass(frozen=True)
class LiveReport:
    """Result of one wall-clock serving run.

    Latencies and the makespan are model seconds (finish minus arrival,
    queueing and wall jitter included); ``wall_s`` is the raw wall-clock
    duration of the run. ``drained`` is False only when graceful
    shutdown hit ``drain_timeout_s`` and in-flight work was cancelled.
    """

    policy: str
    cluster_policy: str
    cache_policy: str
    num_nodes: int
    requests: int
    completed_requests: int
    shed_deadline: int
    shed_backpressure: int
    #: Output tokens of *completed* requests only.
    output_tokens: int
    #: Tokens actually delivered through the streaming callback.
    tokens_streamed: int
    makespan_s: float
    wall_s: float
    time_scale: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    drained: bool = True
    demand_hit_rate: float = 0.0
    #: Admission-time scheduler the backlog went through (SchedulerName).
    scheduler: str = "fifo"
    #: NVMe->DDR promotions started ahead of demand by the pipelined
    #: prefetch path (0 unless ``pipeline_promotions`` was enabled).
    pipelined_promotions: int = 0
    completed: tuple = field(repr=False, default=())
    shed: tuple = field(repr=False, default=())
    timeline: Optional[Timeline] = field(repr=False, compare=False, default=None)

    @property
    def shed_requests(self) -> int:
        return self.shed_deadline + self.shed_backpressure

    @property
    def shed_rate(self) -> float:
        return self.shed_requests / self.requests if self.requests else 0.0

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.completed_requests / self.makespan_s

    @property
    def tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.output_tokens / self.makespan_s

    @property
    def goodput_tokens_per_second(self) -> float:
        """Completed-work throughput; shed tokens never count."""
        return self.tokens_per_second

    def to_dict(self) -> dict:
        """JSON-serializable summary (benchmark harness + CLI)."""
        return {
            "policy": self.policy,
            "cluster_policy": self.cluster_policy,
            "cache_policy": self.cache_policy,
            "num_nodes": self.num_nodes,
            "requests": self.requests,
            "completed_requests": self.completed_requests,
            "shed_deadline": self.shed_deadline,
            "shed_backpressure": self.shed_backpressure,
            "shed_rate": self.shed_rate,
            "output_tokens": self.output_tokens,
            "tokens_streamed": self.tokens_streamed,
            "makespan_s": self.makespan_s,
            "wall_s": self.wall_s,
            "time_scale": self.time_scale,
            "requests_per_second": self.requests_per_second,
            "goodput_tokens_per_second": self.goodput_tokens_per_second,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "drained": self.drained,
            "demand_hit_rate": self.demand_hit_rate,
            "scheduler": self.scheduler,
            "pipelined_promotions": self.pipelined_promotions,
        }


class LiveEngine:
    """Serves an arrival stream on the wall clock, one task per node.

    Construct via :func:`repro.coe.api.build_server` with a
    ``mode="live"`` config (which has already vetted the policy subset),
    then :meth:`serve` a backlog — or :meth:`aserve` from inside an
    existing event loop. ``token_callback(event: TokenEvent)`` fires for
    every decode token as its step completes; ``decision_log`` records
    the same streams the sim backend would.
    """

    def __init__(
        self,
        platform: "PlatformLike",
        library: ExpertLibrary,
        config: "ServeConfig",
        *,
        decision_log: Optional[DecisionLog] = None,
        token_callback: Optional[Callable[[TokenEvent], None]] = None,
    ) -> None:
        from repro.coe.api import ServeMode, ServeModeError

        if config.mode is not ServeMode.LIVE:
            raise ServeModeError(
                "LiveEngine needs a mode='live' ServeConfig; use "
                "repro.serve / build_server for sim configs"
            )
        self.config = config
        self.library = library
        self.policy = config.policy.value
        self.cluster_policy = config.cluster_policy.value
        self.scheduler = make_scheduler(config.scheduler)
        self.deadline_s = config.deadline_s
        self.max_queue = (
            config.max_queue if config.max_queue is not None
            else DEFAULT_MAX_QUEUE
        )
        self.time_scale = (
            config.time_scale if config.time_scale is not None
            else DEFAULT_TIME_SCALE
        )
        self.drain_timeout_s = (
            config.drain_timeout_s if config.drain_timeout_s is not None
            else DEFAULT_DRAIN_TIMEOUT_S
        )
        self._decisions = decision_log
        #: The sim backend records admission decisions only when the
        #: config selects the cluster engine; mirror that exactly so the
        #: two logs have the same streams.
        self._record_admission = config.wants_cluster
        self._token_callback = token_callback
        self.shed: List[ShedRequest] = []
        self.timeline = Timeline()
        self.clock = WallClock(
            time_scale=self.time_scale, timeline=self.timeline
        )

        factory = platform if callable(platform) else (lambda: platform)
        self.nodes: List[_LiveNode] = []
        #: Expert name -> indices of nodes hosting a replica.
        self._owners: Dict[str, List[int]] = {}
        if config.wants_cluster:
            # Mirror ClusterEngine's sharding (and its ExpertServer
            # defaults — reserved_hbm_bytes is a single-node-only knob).
            shards = [
                s for s in partition_experts(
                    library, config.num_nodes, balanced=True
                ) if s
            ]
        else:
            shards = [list(library.experts)]
        for idx, shard in enumerate(shards):
            server = ExpertServer(
                factory(),
                ExpertLibrary(experts=list(shard))
                if config.wants_cluster else library,
                reserved_hbm_bytes=(
                    None if config.wants_cluster
                    else config.reserved_hbm_bytes
                ),
                cache_policy=config.cache_policy.value,
                tier_capacities=config.tier_capacities,
            )
            predictor = ExpertPredictor()
            runtime_policy = server.runtime.policy
            if (isinstance(runtime_policy, PredictivePolicy)
                    and runtime_policy.predictor is None):
                runtime_policy.predictor = predictor
            node = _LiveNode(
                index=idx,
                name=f"node{idx}",
                server=server,
                predictor=predictor,
                hosted={e.name for e in shard},
            )
            if isinstance(runtime_policy, LookaheadPolicy):
                # The live backlog window: this node's pending mirror
                # holds exactly the groups not yet begun, in admission
                # order — the same view the sim engine's queue gives its
                # lookahead policy, so eviction decisions stay
                # byte-identical across backends.
                runtime_policy.bind_backlog(
                    lambda n=node: (g.expert.name for g in n.pending)
                )
            if decision_log is not None:
                server.runtime.attach_decisions(decision_log, node.name)
            self.nodes.append(node)
            for expert in shard:
                self._owners.setdefault(expert.name, []).append(idx)
        self.cache_policy = self.nodes[0].server.runtime.policy.name
        #: CoServe-style promotion pipelining, wall-clocked: active only
        #: with a bounded DDR tier, exactly like the sim engine.
        self.pipeline_promotions = bool(config.pipeline_promotions)
        self._pipeline_active = (
            self.pipeline_promotions
            and self.nodes[0].server.runtime.ddr_budget_bytes is not None
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Admission (the dispatcher task)
    # ------------------------------------------------------------------
    def _group_exec_time(self, node: _LiveNode, group: RequestGroup) -> float:
        router, prefill, decode = group_phase_times(
            node.server, group, node.phase_cache
        )
        return router + prefill + decode

    def _shed(self, group: RequestGroup, reason: str) -> None:
        name = group.expert.name
        for req in group.requests:
            self.shed.append(
                ShedRequest(req.request_id, name, reason, req.output_tokens)
            )

    def _admit(self, group: RequestGroup) -> None:
        """Route one closed group — the sim's ``_dispatch``, re-clocked.

        Same pure decision core, same logical state, same record shapes;
        ETAs are evaluated at logical ``now = 0.0`` exactly like the
        sim's all-backlogged-at-t0 admission, so ``repr(eta)`` matches
        bit for bit. A full queue sheds with ``backpressure`` *after*
        the dispatch decision and still advances the logical backlog and
        tail — the decision stream stays sim-identical even under shed
        (the cache streams cannot, which is why the cross-check pins
        ``max_queue`` high enough to never shed).
        """
        name = group.expert.name
        owners = self._owners.get(name)
        if not owners:
            raise KeyError(f"no node hosts expert {name!r}")
        index = choose_node(
            owners,
            name,
            backlog_of=lambda i: self.nodes[i].backlog_s,
            tail_of=lambda i: self.nodes[i].tail,
            affinity=self.cluster_policy == "affinity",
        )
        node = self.nodes[index]
        decisions = self._decisions if self._record_admission else None
        label = f"{name}x{group.batch}"
        exec_s = self._group_exec_time(node, group)
        if self.deadline_s is not None:
            eta = admission_eta(0.0, node.backlog_s, exec_s)
            admitted = deadline_admits(eta, self.deadline_s)
            if decisions is not None:
                decisions.record(
                    "admission", "admit", label,
                    "admit" if admitted else "shed",
                    detail=(node.name, repr(eta)),
                )
            if not admitted:
                self._shed(group, "deadline")
                return
        if decisions is not None:
            decisions.record("admission", "dispatch", label, node.name)
        try:
            node.queue.put_nowait(group)
        except asyncio.QueueFull:
            self._shed(group, "backpressure")
        else:
            # The pending mirror tracks the *work* queue only: a shed
            # group never reaches the worker, so it must not appear in
            # the lookahead/pipelining backlog window either.
            node.pending.append(group)
        node.backlog_s += exec_s
        node.tail = name

    async def _dispatch_all(self, requests: Sequence[EngineRequest]) -> None:
        """Open-loop admission: release each arrival at its model time."""
        assembler = GroupAssembler(
            policy=self.policy,
            window=self.config.window,
            max_batch=self.config.max_batch,
        )
        clock = self.clock
        for request in requests:
            await clock.sleep_until(request.arrival_s)
            for group in assembler.push(request):
                self._admit(group)
        for group in assembler.flush():
            self._admit(group)

    # ------------------------------------------------------------------
    # Execution (one worker task per node)
    # ------------------------------------------------------------------
    async def _run_group(self, node: _LiveNode, group: RequestGroup) -> None:
        clock = self.clock
        server = node.server
        runtime = server.runtime
        expert = group.expert
        # This group begins: drop it off the pending mirror so the
        # lookahead backlog window and the pipelining peek see only the
        # not-yet-begun groups, exactly like the sim's popped queue.
        if node.pending:
            node.pending.popleft()
        # The predictor always observes the demand stream (it feeds a
        # predictive cache policy), exactly as the sim engine does at
        # group begin.
        node.predictor.observe(expert)
        router_s, prefill_s, decode_s = group_phase_times(
            server, group, node.phase_cache
        )
        if runtime.is_resident(expert):
            runtime.activate(expert)  # hit: free recency refresh
        else:
            event = runtime.activate(expert, span=False)
            # Demand copies queue behind any in-flight pipelined
            # promotion on the node's single DMA path (the sim's
            # ``_dma_free_s`` serialization); with pipelining off the
            # cursor stays 0.0 and this is exactly the old sleep.
            start = max(clock.now, node.dma_free_s)
            done = start + event.time_s
            node.dma_free_s = done
            await clock.sleep_until(done)
            clock.record_span(
                f"copy:{expert.name}", node.lane("switch"), "switch",
                start_s=start, end_s=done,
                args={
                    "hit": False,
                    "speculative": False,
                    "policy": event.policy,
                    "bytes_up": event.bytes_up,
                    "bytes_down": event.bytes_down,
                    "evicted": list(event.evicted),
                    "evicted_why": list(event.evicted_why),
                },
            )
        self._pipeline_promote(node)
        exec_start = clock.now
        await clock.sleep(router_s + prefill_s)
        callback = self._token_callback
        steps = group.phase_key[3]
        if callback is not None and steps > 0 and decode_s > 0:
            # Stream: one decode step per output token position, the
            # batch's tokens delivered as each step completes. Steps
            # sleep to *absolute* model deadlines, so the event loop's
            # ~1ms timer floor is paid once per behind-schedule stretch
            # — late steps fire back to back — instead of compounding
            # per token.
            step_s = decode_s / steps
            decode_start = clock.now
            node_name = node.name
            expert_name = expert.name
            for step in range(steps):
                await clock.sleep_until(decode_start + step_s * (step + 1))
                now = clock.now
                for req in group.requests:
                    if step < req.output_tokens:
                        callback(TokenEvent(
                            req.request_id, expert_name, step, now, node_name,
                        ))
                        self._tokens_streamed += 1
        else:
            await clock.sleep(decode_s)
        finish = clock.now
        # Phase spans at their planned model durations, anchored at the
        # actual start — wall jitter shifts spans, never stretches them.
        end = exec_start
        for category, duration in zip(
            ("router", "prefill", "decode"), (router_s, prefill_s, decode_s)
        ):
            if duration > 0:
                clock.record_span(
                    f"{category}:{expert.name}", node.lane("compute"),
                    category, start_s=end, end_s=end + duration,
                    args={"group": node.groups_done, "batch": group.batch},
                )
            end += duration
        expert_name = expert.name
        batch = group.batch
        for req in group.requests:
            node.completed.append(CompletedRequest(
                request_id=req.request_id,
                expert=expert_name,
                batch=batch,
                arrival_s=req.arrival_s,
                start_s=exec_start,
                finish_s=finish,
                output_tokens=req.output_tokens,
            ))
        node.groups_done += 1

    def _pipeline_promote(self, node: _LiveNode) -> None:
        """Start the pending head's NVMe->DDR promotion behind this group.

        The live twin of :meth:`ServingEngine._pipeline_promote`: right
        after the current group's activation, peek the node's pending
        mirror and, if the next group's expert is still NVMe-resident,
        commit its promotion and book the DMA occupancy from the DMA's
        next free slot. Spans are *deferred* to shutdown rather than
        recorded inline: a promotion whose copy window would outlive the
        run is clipped at the makespan (the wall-clock-legal analogue of
        the sim's speculation flush), so a cancelled drain never paints
        DMA activity past the moment the engine stopped. Promotions are
        never recorded in the decision log — prefetcher traffic, not a
        policy decision — so cross-check streams are unchanged.
        """
        if not self._pipeline_active or not node.pending:
            return
        nxt = node.pending[0].expert
        runtime = node.server.runtime
        if runtime.tier_of(nxt.name) != "nvme":
            return
        promo = runtime.promote_to_ddr(nxt)
        if promo.time_s <= 0:
            return
        start = max(self.clock.now, node.dma_free_s)
        done = start + promo.time_s
        node.dma_free_s = done
        self._promo_spans.append((
            f"promote:{nxt.name}", node.lane("prefetch"), start, done,
            {
                "pipelined": True,
                "bytes_read": promo.bytes_read,
                "bytes_written": promo.bytes_written,
                "demoted": list(promo.demoted),
            },
        ))

    async def _worker(self, node: _LiveNode) -> None:
        while True:
            group = await node.queue.get()
            try:
                if group is None:  # drain sentinel
                    return
                await self._run_group(node, group)
            finally:
                node.queue.task_done()

    # ------------------------------------------------------------------
    async def aserve(self, requests: Sequence[EngineRequest]) -> LiveReport:
        """Serve the stream inside the caller's event loop."""
        if not requests:
            raise ValueError("empty request backlog")
        # Admission-time reordering over the known backlog, same as the
        # sim engines. Dispatch still honours each request's arrival
        # time (``sleep_until`` treats past deadlines as a no-op), so
        # for an all-at-t0 backlog — the cross-check precondition — the
        # live group stream matches the sim's exactly.
        requests = self.scheduler.order(list(requests))
        self._tokens_streamed = 0
        self._promo_spans: List[Tuple[str, str, float, float, dict]] = []
        self.clock.start()
        for node in self.nodes:
            node.queue = asyncio.Queue(maxsize=self.max_queue)
        tasks = [
            asyncio.create_task(self._worker(node), name=f"live-{node.name}")
            for node in self.nodes
        ]
        drained = True
        try:
            await self._dispatch_all(requests)
            for node in self.nodes:
                await node.queue.put(None)  # waits for space: still bounded
            try:
                await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=self.drain_timeout_s
                )
            except asyncio.TimeoutError:
                drained = False
        finally:
            # No task leaks, on any path: cancel whatever still runs and
            # reap every task before returning.
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        makespan = self.clock.now
        wall_s = self.clock.wall_elapsed_s
        # Flush the deferred promotion spans, clipped at the makespan: a
        # promotion whose DMA window outlived the run (drain timeout, or
        # simply the last compute finishing first) is truncated at the
        # instant the engine stopped, and one that never got to start is
        # dropped — the cancellation is visible in the trace instead of
        # painting phantom DMA activity past shutdown.
        for name, lane, start, done, args in self._promo_spans:
            if start >= makespan:
                continue
            self.clock.record_span(
                name, lane, "promote",
                start_s=start, end_s=min(done, makespan), args=args,
            )
        completed = [c for node in self.nodes for c in node.completed]
        if drained and len(completed) + len(self.shed) != len(requests):
            raise RuntimeError(
                f"live engine lost requests: {len(completed)} completed + "
                f"{len(self.shed)} shed of {len(requests)} submitted"
            )
        # sorted first so mean_s accumulates in the same order as before the
        # summarize_latencies migration (fp addition is order-sensitive)
        latency_summary = summarize_latencies(sorted(c.latency_s for c in completed))
        hits = sum(n.server.runtime.stats.hits for n in self.nodes)
        demand = sum(n.server.runtime.stats.requests for n in self.nodes)
        shed_deadline = sum(1 for s in self.shed if s.reason == "deadline")
        shed_backpressure = len(self.shed) - shed_deadline
        return LiveReport(
            policy=self.policy,
            cluster_policy=self.cluster_policy,
            cache_policy=self.cache_policy,
            scheduler=self.scheduler.name,
            num_nodes=self.num_nodes,
            requests=len(requests),
            completed_requests=len(completed),
            shed_deadline=shed_deadline,
            shed_backpressure=shed_backpressure,
            output_tokens=sum(c.output_tokens for c in completed),
            tokens_streamed=self._tokens_streamed,
            makespan_s=makespan,
            wall_s=wall_s,
            time_scale=self.time_scale,
            p50_s=latency_summary.p50_s,
            p95_s=latency_summary.p95_s,
            p99_s=latency_summary.p99_s,
            mean_s=latency_summary.mean_s,
            drained=drained,
            demand_hit_rate=(hits / demand if demand else 0.0),
            pipelined_promotions=sum(
                n.server.runtime.stats.pipelined_promotions
                for n in self.nodes
            ),
            completed=tuple(completed),
            shed=tuple(self.shed),
            timeline=self.timeline,
        )

    def serve(self, requests: Sequence[EngineRequest]) -> LiveReport:
        """Run the stream to completion on a private event loop."""
        return asyncio.run(self.aserve(requests))


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_S",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_TIME_SCALE",
    "LiveEngine",
    "LiveReport",
    "SHED_REASONS",
    "ShedRequest",
    "TokenEvent",
]
