"""Cluster-level CoE serving: event-driven multi-node dispatch.

The paper's Section III-B motivates the single-node SN40L by the pain of
the alternative: multi-machine CoE serving "increases costs, complicates
deployment, and introduces load balancing challenges". This module makes
that trade-off *measurable*: one :class:`repro.coe.engine.ServingEngine`
per node, all on a **shared** :class:`repro.sim.engine.Simulator` clock,
with every node's activity on its own lanes (``node0/compute``,
``node0/switch``, ``node0/prefetch``, ``node0/faults``, ``node1/...``)
of a single :class:`repro.obs.Timeline` — so a Perfetto trace shows
cross-node overlap directly, and the scaling curve is derived from the
same spans.

Cluster policies (:class:`repro.coe.policies.ClusterPolicy`; the legacy
strings in :data:`CLUSTER_POLICIES` still coerce):

- ``least_loaded`` — static admission: each group goes to the owner
  replica with the smallest estimated backlog. The baseline: whatever
  skew the sharding creates, the nodes keep.
- ``affinity`` — least-loaded, but an owner whose queue tail already
  ends in the group's expert wins ties: extending a same-expert run
  avoids a future switch on that node.
- ``steal`` — ``least_loaded`` admission plus *runtime* rebalancing:
  when a node drains, it steals queued groups whose expert it hosts
  from the deepest queue; when nothing is stealable and online
  replication is on, it picks the hottest queued expert on the deepest
  node, replicates it locally (paying the DDR->HBM copy span on the sim
  clock via :meth:`ServingEngine.warm` — replication is *not* free),
  and then pulls that expert's queued groups over.

Under Zipf-skewed traffic the single-owner sharding of
:func:`repro.systems.cluster.partition_experts` leaves most nodes idle
while the hot expert's owner grinds through a long queue; online
replication plus stealing is what converts those idle replicas into
throughput, which is exactly the load-balancing machinery the paper says
a scale-out CoE deployment must carry.

Fault tolerance
---------------

A production-scale deployment also has to survive the unhealthy days.
Passing a :class:`repro.sim.faults.FaultSchedule` arms deterministic
faults on the shared clock:

- **Node crash** — the node fail-stops (:meth:`ServingEngine.halt`); a
  heartbeat sweep (period ``heartbeat_s``) detects the silence on its
  next beat and runs recovery: the dead node's in-flight and queued
  groups are drained and re-dispatched to surviving owners exactly once,
  and any expert whose *only* replica died is promoted onto a survivor,
  paying the DDR->HBM copy on the sim clock when orphaned work needs it.
- **Slow node** — a transient straggler window; every group *started*
  inside it runs ``multiplier``x slower (windows stack multiplicatively).
- **Copy fault** — the node's next demand DDR->HBM copies fail once
  each and retry, doubling those copies' DMA occupancy.

With a ``deadline_s``, admission (initial and at re-dispatch) becomes
deadline-aware: groups whose estimated finish would bust the deadline
are shed lowest-priority first and reported as ``rejected`` — degraded
service is explicit, never a silent loss. The outage and the rebalance
are first-class spans on each node's ``faults`` lane (``crash`` between
death and detection, ``recovery`` while copies land, ``slow`` windows),
and :class:`ClusterReport` derives availability, goodput, recovery time
and latency percentiles from the same record the trace exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union,
)

from repro.coe.cache import CachePolicy, CachePolicyLike
from repro.coe.columnar import latency_values, token_total
from repro.coe.decisions import DecisionLog
from repro.coe.dispatch import admission_eta, choose_node, deadline_admits
from repro.coe.engine import (
    DRAIN_EVENT_KIND,
    CompletedRequest,
    EngineReentryError,
    EngineRequest,
    ServingEngine,
    _run_drain_batch,
    zipf_request_stream,
)
from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.coe.metrics import summarize_latencies
from repro.coe.policies import ClusterPolicy, DrainMode, NodePolicy
from repro.coe.scheduling import (
    RequestGroup,
    SchedulerLike,
    affinity_schedule,
    coalesce_groups,
    make_scheduler,
)
from repro.obs import Timeline
from repro.sim.engine import Simulator
from repro.sim.faults import (
    CopyFault,
    FaultInjector,
    FaultSchedule,
    NodeCrash,
    SlowNode,
)
from repro.systems.cluster import partition_experts

#: Legacy value-string tuple; :class:`repro.coe.policies.ClusterPolicy`
#: is the typed source of truth and coerces these (kept for back-compat).
CLUSTER_POLICIES = ClusterPolicy.values()

#: Per-node lane bases, in the order traces should display them.
NODE_LANES = ("compute", "switch", "prefetch", "faults")

#: What the constructor accepts as a fault schedule.
FaultsLike = Union[FaultSchedule, Iterable]


def cluster_lanes(num_nodes: int) -> List[str]:
    """The lane names a ``num_nodes`` cluster records, in display order."""
    return [
        f"node{idx}/{base}" for idx in range(num_nodes) for base in NODE_LANES
    ]


def _coerce_faults(faults: Optional[FaultsLike]) -> FaultSchedule:
    if faults is None:
        return FaultSchedule()
    if isinstance(faults, FaultSchedule):
        return faults
    items = tuple(faults)
    if all(isinstance(item, str) for item in items):
        return FaultSchedule.from_specs(items)
    return FaultSchedule(faults=items)


@dataclass
class _Node:
    """One cluster node: its engine plus the scheduler's bookkeeping."""

    index: int
    name: str
    engine: ServingEngine
    hosted: Set[str]
    steals_in: int = 0
    replicas_hosted: int = 0
    #: Fault-tolerance state: a crashed node flips ``alive`` at the
    #: fault instant and is *detected* on the next heartbeat.
    alive: bool = True
    crashed_at: Optional[float] = None
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None
    #: Groups this node lost to a crash that were re-dispatched.
    redispatched: int = 0
    #: Active straggler multipliers (windows stack multiplicatively).
    slow_stack: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class NodeSummary:
    """Per-node slice of a cluster run."""

    name: str
    requests: int
    groups: int
    output_tokens: int
    busy_s: float
    switch_s: float
    hidden_switch_s: float
    steals_in: int
    replicas_hosted: int
    tokens_per_second: float
    alive: bool = True
    crashed_at: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "groups": self.groups,
            "output_tokens": self.output_tokens,
            "busy_s": self.busy_s,
            "switch_s": self.switch_s,
            "hidden_switch_s": self.hidden_switch_s,
            "steals_in": self.steals_in,
            "replicas_hosted": self.replicas_hosted,
            "tokens_per_second": self.tokens_per_second,
            "alive": self.alive,
            "crashed_at": self.crashed_at,
        }


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate result of one cluster run, timeline-derived."""

    policy: str
    node_policy: str
    cache_policy: str
    num_nodes: int
    requests: int
    groups: int
    output_tokens: int
    makespan_s: float
    steals: int
    replications: int
    events_run: int
    #: Admission-time scheduler the backlog went through (SchedulerName).
    scheduler: str = "fifo"
    #: Fault-tolerance outcome. ``rejected`` counts requests shed by
    #: deadline admission (never silently dropped), ``availability`` is
    #: alive node-time over total node-time, ``recovery_s`` the worst
    #: crash-to-recovered interval, and the percentiles cover completed
    #: request latency (queueing included).
    rejected: int = 0
    rejected_tokens: int = 0
    crashes: int = 0
    promotions: int = 0
    redispatched_groups: int = 0
    availability: float = 1.0
    recovery_s: float = 0.0
    p50_s: float = 0.0
    p99_s: float = 0.0
    fault_specs: Tuple[str, ...] = ()
    deadline_s: Optional[float] = None
    nodes: Tuple[NodeSummary, ...] = ()
    #: ``None`` when the run was traced with ``record_timeline=False``;
    #: excluded from equality so batched and reference runs compare by
    #: their simulated metrics (lane dict order differs — compare lanes
    #: explicitly via :meth:`repro.obs.Timeline.spans` when needed).
    timeline: Optional[Timeline] = field(repr=False, compare=False, default=None)

    @property
    def tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.output_tokens / self.makespan_s

    @property
    def goodput_tokens_per_second(self) -> float:
        """Throughput of *useful* work: shed tokens don't count."""
        if self.makespan_s <= 0:
            return 0.0
        return (self.output_tokens - self.rejected_tokens) / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.requests / self.makespan_s

    @property
    def load_imbalance(self) -> float:
        """Busiest-to-average node compute-busy ratio (1.0 = perfect)."""
        times = [n.busy_s for n in self.nodes]
        mean = sum(times) / len(times) if times else 0.0
        if mean == 0.0:
            return 1.0
        return max(times) / mean

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "node_policy": self.node_policy,
            "cache_policy": self.cache_policy,
            "scheduler": self.scheduler,
            "num_nodes": self.num_nodes,
            "requests": self.requests,
            "groups": self.groups,
            "output_tokens": self.output_tokens,
            "makespan_s": self.makespan_s,
            "tokens_per_second": self.tokens_per_second,
            "goodput_tokens_per_second": self.goodput_tokens_per_second,
            "requests_per_second": self.requests_per_second,
            "load_imbalance": self.load_imbalance,
            "steals": self.steals,
            "replications": self.replications,
            "events_run": self.events_run,
            "rejected": self.rejected,
            "rejected_tokens": self.rejected_tokens,
            "crashes": self.crashes,
            "promotions": self.promotions,
            "redispatched_groups": self.redispatched_groups,
            "availability": self.availability,
            "recovery_s": self.recovery_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "faults": list(self.fault_specs),
            "deadline_s": self.deadline_s,
            "nodes": [n.to_dict() for n in self.nodes],
        }


class ClusterEngine:
    """Runs one :class:`ServingEngine` per node on a shared clock."""

    def __init__(
        self,
        platform_factory: Callable[[], object],
        library: ExpertLibrary,
        num_nodes: int,
        policy: Union[str, ClusterPolicy] = "steal",
        node_policy: Union[str, NodePolicy] = "overlap",
        max_batch: int = 8,
        window: int = 16,
        balanced: bool = True,
        online_replication: bool = True,
        replication_depth: int = 3,
        max_replicas: Optional[int] = None,
        faults: Optional[FaultsLike] = None,
        heartbeat_s: float = 0.05,
        deadline_s: Optional[float] = None,
        cache_policy: CachePolicyLike = None,
        event_batching: bool = True,
        record_timeline: bool = True,
        decision_log: Optional[DecisionLog] = None,
        drain_mode: "Union[str, DrainMode, None]" = None,
        scheduler: SchedulerLike = None,
        tier_capacities: Optional[Dict[str, int]] = None,
        pipeline_promotions: bool = False,
    ) -> None:
        self.policy = ClusterPolicy.coerce(policy).value
        self.node_policy = NodePolicy.coerce(node_policy).value
        #: Admission-time backlog reordering, applied once in
        #: :meth:`serve` before dispatch — cluster-global, so same-expert
        #: runs stay contiguous through per-node routing. Schedulers are
        #: stateless order functions, safe to share across nodes.
        self.scheduler = make_scheduler(scheduler)
        self.tier_capacities = tier_capacities
        if isinstance(cache_policy, CachePolicy) and num_nodes > 1:
            # A policy instance carries per-cache mutable state; sharing
            # one across nodes would corrupt every node's bookkeeping.
            # Pass a name or a zero-arg factory to get one per node.
            raise ValueError(
                "cache_policy must be a name or factory (not a CachePolicy "
                "instance) when num_nodes > 1: each node needs its own "
                "stateful policy object"
            )
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if replication_depth < 1:
            raise ValueError(
                f"replication_depth must be >= 1, got {replication_depth}"
            )
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.library = library
        self.max_batch = max_batch
        self.window = window
        self.online_replication = online_replication
        self.replication_depth = replication_depth
        self.max_replicas = num_nodes if max_replicas is None else max_replicas
        self.heartbeat_s = heartbeat_s
        self.deadline_s = deadline_s
        self.cache_policy_spec = cache_policy
        self.pipeline_promotions = bool(pipeline_promotions)
        self.record_timeline = record_timeline
        self.timeline: Optional[Timeline] = (
            Timeline() if record_timeline else None
        )
        self.sim = Simulator(timeline=self.timeline)
        self.sim.set_batch_handler(DRAIN_EVENT_KIND, _run_drain_batch)
        self.faults = _coerce_faults(faults)
        #: Requested drain mode: an explicit ``drain_mode`` wins, else
        #: the legacy ``event_batching`` flag maps True -> columnar and
        #: False -> reference (see :class:`DrainMode`).
        if drain_mode is None:
            requested = (
                DrainMode.COLUMNAR if event_batching else DrainMode.REFERENCE
            )
        else:
            requested = DrainMode.coerce(drain_mode)
        #: Whole-queue drains are only equivalent when nothing can
        #: interleave with a node's queue mid-run: the steal policy's
        #: hooks and every fault path (crash/slow/copy-fault events land
        #: between a node's begin/finish events) force event-by-event.
        if self.policy == "steal" or self.faults:
            effective = DrainMode.REFERENCE
        else:
            effective = requested
        self.drain_mode = effective.value
        self.event_batching = effective is not DrainMode.REFERENCE
        #: The fast-path feature set follows the *requested* mode, not
        #: the policy/fault-gated one: incremental admission backlog and
        #: bulk phase precompute are bitwise-identical to the reference
        #: math, so they stay on for steal/fault runs too. Only an
        #: explicitly requested reference configuration (the
        #: seed-equivalent one the equivalence tests and perf benchmarks
        #: compare against) reverts admission to fresh per-route sums.
        self._fast_admission = requested is not DrainMode.REFERENCE
        #: During admission (before the clock runs) each engine's backlog
        #: is the running sum of what was submitted to it; this tracker
        #: keeps that sum incrementally — bitwise-identical to the fresh
        #: left-to-right sum while queues are append-only — turning the
        #: O(groups x queue) admission scan into O(groups). ``None``
        #: outside admission: once the clock runs, queues pop and steal,
        #: so routing falls back to the fresh estimate.
        self._admission_backlog: Optional[Dict[int, float]] = None
        #: Cross-check evidence: dispatch/admission verdicts land on the
        #: ``"admission"`` stream, each node runtime's cache decisions on
        #: its own ``"nodeN"`` stream (attached below).
        self._decisions = decision_log
        #: One-shot guard for :meth:`serve` (see EngineReentryError):
        #: node caches, ``_drained_until`` markers and the shared
        #: simulator's event count all survive a serve, so a second call
        #: would fold a prior run's makespan and events into its report.
        self._served = False
        self.steals = 0
        self.replications = 0
        self.promotions = 0
        self.redispatches = 0
        #: Requests shed by deadline admission (reported, never dropped).
        self.rejected: List[EngineRequest] = []
        self._injector: Optional[FaultInjector] = None
        self._crashes_pending = 0
        self._recovery_ends: List[float] = []

        shards = [
            s for s in partition_experts(library, num_nodes, balanced=balanced)
            if s
        ]
        self.nodes: List[_Node] = []
        #: Expert name -> indices of nodes hosting a replica.
        self._owners: Dict[str, List[int]] = {}
        for idx, shard in enumerate(shards):
            engine = ServingEngine(
                platform_factory(),
                ExpertLibrary(experts=list(shard)),
                policy=self.node_policy,
                max_batch=max_batch,
                window=window,
                simulator=self.sim,
                lane_prefix=f"node{idx}/",
                cache_policy=cache_policy,
                drain_mode=self.drain_mode,
                decision_log=decision_log,
                tier_capacities=tier_capacities,
                pipeline_promotions=pipeline_promotions,
            )
            node = _Node(
                index=idx,
                name=f"node{idx}",
                engine=engine,
                hosted={e.name for e in shard},
            )
            if self.policy == "steal":
                # Only the steal policy reacts to these hooks
                # (:meth:`_node_idle` is a no-op otherwise); leaving them
                # uninstalled lets the other policies' engines take the
                # batched-drain fast path.
                engine.on_idle = lambda _eng, n=node: self._node_idle(n)
                engine.on_group_done = (
                    lambda _eng, _group, n=node: self._node_idle(n)
                    if not n.engine.busy
                    else None
                )
            self.nodes.append(node)
            for expert in shard:
                self._owners.setdefault(expert.name, []).append(idx)

        self.faults.validate_for(len(self.nodes))
        self._crashes_pending = len(self.faults.crashes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Admission routing
    # ------------------------------------------------------------------
    def _owner_nodes(self, expert: ExpertProfile) -> List[_Node]:
        try:
            return [self.nodes[i] for i in self._owners[expert.name]]
        except KeyError:
            raise KeyError(f"no node hosts expert {expert.name!r}") from None

    def _backlog_s(self, node: _Node) -> float:
        """Estimated backlog for routing; O(1) during admission."""
        if self._admission_backlog is not None:
            return self._admission_backlog[node.index]
        return node.engine.estimated_backlog_s()

    def _route(self, group: RequestGroup) -> _Node:
        """Pick the owner node, through the shared pure dispatch core.

        The decision math lives in :mod:`repro.coe.dispatch` so the
        live backend makes the identical choice from its mirror of the
        same state (admission backlog sums, queue-tail experts).
        """
        name = group.expert.name
        owners = self._owners.get(name)
        if not owners:
            raise KeyError(f"no node hosts expert {name!r}")
        if len(owners) == 1:
            # Single-owner fast path: with one replica there is no
            # choice to make, and under single-owner sharding (the
            # default partition with replication off) this is *every*
            # route — skipping the per-call closure construction and the
            # dispatch-core scan is the admission profile's biggest win.
            # choose_node() over a one-element owner list returns the
            # same index unconditionally, so decisions are unchanged.
            return self.nodes[owners[0]]
        index = choose_node(
            owners,
            name,
            backlog_of=lambda i: self._backlog_s(self.nodes[i]),
            tail_of=lambda i: self.nodes[i].engine.last_queued_expert,
            affinity=self.policy == "affinity",
        )
        return self.nodes[index]

    def _dispatch(self, group: RequestGroup, now: float) -> bool:
        """Route + submit one group; returns False when it was shed.

        With a ``deadline_s``, a group whose estimated completion (queue
        backlog plus its own execution) would bust the deadline is shed
        instead of submitted: its requests land in :attr:`rejected`.
        Callers feed groups highest-priority first so degradation sheds
        the lowest priorities.
        """
        node = self._route(group)
        decisions = self._decisions
        # The per-group exec estimate is the same memoized float for the
        # deadline ETA and the admission-backlog increment; compute it
        # lazily and at most once per dispatch (it used to be evaluated
        # twice, dominating the admission profile alongside routing).
        exec_s: Optional[float] = None
        label = (
            f"{group.expert.name}x{group.batch}"
            if decisions is not None else ""
        )
        if self.deadline_s is not None:
            exec_s = node.engine._group_exec_time(group)
            eta = admission_eta(now, self._backlog_s(node), exec_s)
            admitted = deadline_admits(eta, self.deadline_s)
            if decisions is not None:
                # repr(eta) carries full float precision: one different
                # bit in either backend's backlog math fails the check.
                decisions.record(
                    "admission", "admit", label,
                    "admit" if admitted else "shed",
                    detail=(node.name, repr(eta)),
                )
            if not admitted:
                self.rejected.extend(group.requests)
                return False
        if decisions is not None:
            decisions.record("admission", "dispatch", label, node.name)
        node.engine.submit(group)
        if self._admission_backlog is not None:
            if exec_s is None:
                exec_s = node.engine._group_exec_time(group)
            self._admission_backlog[node.index] += exec_s
        return True

    @staticmethod
    def _priority_order(groups: Sequence[RequestGroup]) -> List[RequestGroup]:
        """Highest priority first, original order within a priority."""
        indexed = list(enumerate(groups))
        indexed.sort(key=lambda pair: (
            -max((r.priority for r in pair[1].requests), default=0), pair[0]
        ))
        return [g for _, g in indexed]

    # ------------------------------------------------------------------
    # Runtime rebalancing (the ``steal`` policy)
    # ------------------------------------------------------------------
    def _node_idle(self, node: _Node) -> None:
        if self.policy != "steal" or not node.alive:
            return
        if node.engine.queue_depth > 0:
            return
        if self._steal_into(node):
            return
        if self.online_replication:
            self._replicate_into(node)

    def _steal_into(self, node: _Node) -> bool:
        """Pull one queued group this node can serve off the deepest queue."""
        hosted = node.hosted
        victims = sorted(
            (v for v in self.nodes
             if v is not node and v.alive and v.engine.queue_depth >= 2),
            key=lambda v: -v.engine.estimated_backlog_s(),
        )
        for victim in victims:
            group = victim.engine.steal(lambda e: e.name in hosted)
            if group is not None:
                self.steals += 1
                node.steals_in += 1
                node.engine.submit(group)
                return True
        return False

    def _replicate_into(self, node: _Node) -> bool:
        """Replicate the hottest queued expert of the deepest node here.

        The replica's DDR->HBM copy is paid on the simulator clock via
        :meth:`ServingEngine.warm` — replication is never free — and the
        victim's queued groups of that expert then move to this node.
        """
        victims = sorted(
            (
                v for v in self.nodes
                if v is not node and v.alive
                and v.engine.queue_depth >= self.replication_depth
            ),
            key=lambda v: -v.engine.estimated_backlog_s(),
        )
        for victim in victims:
            counts = victim.engine.queued_expert_counts()
            candidates = sorted(
                (
                    name for name, count in counts.items()
                    if count >= 2
                    and name not in node.hosted
                    and len(self._owners.get(name, ())) < self.max_replicas
                ),
                key=lambda name: (-counts[name], name),
            )
            for name in candidates:
                expert = self.library[name]
                node.engine.host(expert)
                node.hosted.add(name)
                node.replicas_hosted += 1
                self._owners.setdefault(name, []).append(node.index)
                self.replications += 1
                node.engine.warm(expert)
                # Move roughly half the victim's queued groups of this
                # expert; the owner keeps the rest so both replicas work.
                move = max(1, counts[name] // 2)
                for _ in range(move):
                    group = victim.engine.steal(lambda e: e.name == name)
                    if group is None:
                        break
                    self.steals += 1
                    node.steals_in += 1
                    node.engine.submit(group)
                return True
        return False

    # ------------------------------------------------------------------
    # Fault handling (driven by the FaultInjector on the shared clock)
    # ------------------------------------------------------------------
    def _record_fault_span(
        self,
        node: _Node,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record on the node's ``faults`` lane, clipped against what is
        already there (a crash inside a straggler window, stacked slow
        windows) so the lane's non-overlap invariant always holds."""
        if end_s < start_s or self.timeline is None:
            return
        lane = f"{node.name}/faults"
        pieces = [(start_s, end_s)]
        for span in self.timeline.spans(lane):
            clipped: List[Tuple[float, float]] = []
            for a, b in pieces:
                if b <= span.start_s or a >= span.end_s:
                    clipped.append((a, b))
                    continue
                if a < span.start_s:
                    clipped.append((a, span.start_s))
                if b > span.end_s:
                    clipped.append((span.end_s, b))
            pieces = clipped
        for a, b in pieces:
            self.sim.record_span(
                name, lane, category, start_s=a, end_s=b, args=args
            )

    def _on_crash(self, fault: NodeCrash) -> None:
        self._crashes_pending -= 1
        node = self.nodes[fault.node]
        if not node.alive:
            return
        node.alive = False
        node.crashed_at = self.sim.now
        node.engine.halt()

    def _on_slow_start(self, fault: SlowNode) -> None:
        node = self.nodes[fault.node]
        if not node.alive:
            return
        node.slow_stack.append(fault.multiplier)
        factor = 1.0
        for m in node.slow_stack:
            factor *= m
        node.engine.slow_factor = factor

    def _on_slow_end(self, fault: SlowNode) -> None:
        node = self.nodes[fault.node]
        if node.alive and fault.multiplier in node.slow_stack:
            node.slow_stack.remove(fault.multiplier)
            factor = 1.0
            for m in node.slow_stack:
                factor *= m
            node.engine.slow_factor = factor
        end = fault.end_s
        if node.crashed_at is not None:
            end = min(end, node.crashed_at)
        self._record_fault_span(
            node, f"slow:{fault.multiplier:g}x", "slow", fault.at_s, end,
            args={"multiplier": fault.multiplier},
        )

    def _on_copy_fault(self, fault: CopyFault) -> None:
        node = self.nodes[fault.node]
        if node.alive:
            node.engine.inject_copy_faults(fault.count)

    def _heartbeat(self) -> None:
        """Periodic liveness sweep: a dead node is noticed on the first
        beat after its crash, bounding detection latency by the period."""
        now = self.sim.now
        for node in self.nodes:
            if not node.alive and node.detected_at is None:
                node.detected_at = now
                self._recover(node, now)
        if self._crashes_pending > 0 or any(
            not n.alive and n.detected_at is None for n in self.nodes
        ):
            self.sim.schedule_at(now + self.heartbeat_s, self._heartbeat)

    def _recover(self, node: _Node, now: float) -> None:
        """React to a detected crash: promote orphaned experts, then
        re-dispatch the dead node's unfinished groups exactly once."""
        self._record_fault_span(
            node, f"crash:{node.name}", "fault",
            node.crashed_at if node.crashed_at is not None else now, now,
            args={"detected_s": now, "reason": "heartbeat timeout"},
        )
        drained = node.engine.drain()
        for owners in self._owners.values():
            if node.index in owners:
                owners.remove(node.index)
        alive = [n for n in self.nodes if n.alive]
        if not alive:
            raise RuntimeError("no surviving node to recover onto")
        # Promote every expert whose only replica died; pay the DDR->HBM
        # copy now only when orphaned work actually needs the expert —
        # the rest land lazily (copy on first demand).
        orphaned = sorted(
            name for name, owners in self._owners.items() if not owners
        )
        needed = {g.expert.name for g in drained}
        placed: Dict[int, int] = {n.index: 0 for n in alive}
        copy_ends: List[float] = []
        for name in orphaned:
            expert = self.library[name]
            target = min(alive, key=lambda n: (
                n.engine.estimated_backlog_s(), placed[n.index], n.index
            ))
            placed[target.index] += 1
            target.engine.host(expert)
            target.hosted.add(name)
            target.replicas_hosted += 1
            self._owners[name].append(target.index)
            self.promotions += 1
            if name in needed:
                done = target.engine.warm(expert)
                if done is not None:
                    copy_ends.append(done)
        # Exactly-once re-dispatch: the halted engine completed none of
        # these and can never finish them; survivors get each group once,
        # highest priority first so any deadline shedding degrades
        # gracefully from the bottom.
        shed_before = len(self.rejected)
        for group in self._priority_order(drained):
            if self._dispatch(group, now):
                node.redispatched += 1
                self.redispatches += 1
        recovery_end = max(copy_ends, default=now)
        node.recovered_at = recovery_end
        self._recovery_ends.append(recovery_end)
        self._record_fault_span(
            node, f"recovery:{node.name}", "recovery", now, recovery_end,
            args={
                "redispatched": node.redispatched,
                "shed": len(self.rejected) - shed_before,
                "promoted": len(orphaned),
            },
        )

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[EngineRequest]) -> ClusterReport:
        """Drain the whole backlog across the cluster; one shared clock.

        Single-use, like :meth:`ServingEngine.run`: a second call raises
        :class:`EngineReentryError` — node cache/predictor state, each
        engine's ``_drained_until`` and the shared simulator's event
        count persist, so a reused cluster would leak a prior run's
        makespan into ``max(sim.run(), drained_until)`` and double-count
        events. Construct a fresh :class:`ClusterEngine` per run.
        """
        if self._served:
            raise EngineReentryError(
                "this ClusterEngine already served a backlog; node caches, "
                "drained-until markers and the shared simulator's event "
                "count persist — construct a fresh ClusterEngine per run"
            )
        self._served = True
        if not requests:
            raise ValueError("empty request backlog")
        if self.faults:
            self._injector = FaultInjector(
                self.sim,
                self.faults,
                on_crash=self._on_crash,
                on_slow_start=self._on_slow_start,
                on_slow_end=self._on_slow_end,
                on_copy_fault=self._on_copy_fault,
            )
            if self.faults.crashes:
                self.sim.schedule_at(self.heartbeat_s, self._heartbeat)
        admitted = self.scheduler.order(requests)
        if self.node_policy == "fifo":
            ordered = list(admitted)
        else:
            ordered = affinity_schedule(admitted, window=self.window)
        groups = coalesce_groups(ordered, self.max_batch)
        admit = (self._priority_order(groups) if self.deadline_s is not None
                 else groups)
        # Fast path: seed every node's phase memo with one vectorized
        # batch over the shapes it could be routed (the experts it
        # hosts), and track the admission backlog incrementally; both
        # turn admission from the sweep's dominant cost (a fresh
        # O(queue) sum per routed group) into a linear pass, with
        # bitwise-identical routing decisions.
        if self._fast_admission:
            for node in self.nodes:
                hosted = node.hosted
                node.engine.precompute_phases(
                    [g for g in admit if g.expert.name in hosted]
                )
            self._admission_backlog = {n.index: 0.0 for n in self.nodes}
        try:
            for group in admit:
                self._dispatch(group, now=0.0)
        finally:
            self._admission_backlog = None
        end_clock = self.sim.run()
        # Batched drains finish their work on local clocks past the last
        # shared-clock event; the cluster end is the latest of both.
        end_clock = max(
            [end_clock] + [n.engine._drained_until for n in self.nodes]
        )
        for node in self.nodes:
            if not node.engine.halted:
                node.engine.flush_speculation(end_clock)
        completed = sum(len(n.engine.completed) for n in self.nodes)
        if completed + len(self.rejected) != len(requests):
            raise RuntimeError(
                f"cluster lost requests: {completed} completed + "
                f"{len(self.rejected)} rejected "
                f"of {len(requests)} submitted"
            )
        if self.faults:
            # The raw clock runs to the last scheduled fault event even
            # when traffic drained earlier; the makespan is when *work*
            # (completions, recovery copies) actually ended.
            work_end = max(
                (c.finish_s for n in self.nodes for c in n.engine.completed),
                default=0.0,
            )
            makespan = max([work_end] + self._recovery_ends)
        else:
            makespan = end_clock
        # Columnar nodes aggregate straight off their completion
        # columns; list-backed nodes take the scalar path. The summary
        # sorts the pooled sample once for both quantiles.
        latencies: List[float] = []
        for n in self.nodes:
            latencies.extend(latency_values(n.engine.completed))
        latency_summary = summarize_latencies(latencies)
        crashed = [n for n in self.nodes if not n.alive]
        alive_time = sum(
            min(n.crashed_at, makespan) if n.crashed_at is not None
            else makespan
            for n in self.nodes
        )
        total_time = len(self.nodes) * makespan
        recovery_s = max(
            (
                (n.recovered_at if n.recovered_at is not None else makespan)
                - n.crashed_at
                for n in crashed
            ),
            default=0.0,
        )
        summaries = []
        for node in self.nodes:
            tokens = token_total(node.engine.completed)
            summaries.append(
                NodeSummary(
                    name=node.name,
                    requests=len(node.engine.completed),
                    groups=node.engine.groups_done,
                    output_tokens=tokens,
                    busy_s=(
                        self.timeline.busy_s(node.engine.lane("compute"))
                        if self.timeline is not None else 0.0
                    ),
                    switch_s=(
                        self.timeline.busy_s(node.engine.lane("switch"))
                        if self.timeline is not None else 0.0
                    ),
                    hidden_switch_s=(
                        self.timeline.overlap_s(
                            node.engine.lane("switch"),
                            node.engine.lane("compute"),
                        ) if self.timeline is not None else 0.0
                    ),
                    steals_in=node.steals_in,
                    replicas_hosted=node.replicas_hosted,
                    tokens_per_second=(
                        tokens / makespan if makespan > 0 else 0.0
                    ),
                    alive=node.alive,
                    crashed_at=node.crashed_at,
                )
            )
        return ClusterReport(
            policy=self.policy,
            node_policy=self.node_policy,
            cache_policy=self.nodes[0].engine.cache_policy,
            scheduler=self.scheduler.name,
            num_nodes=self.num_nodes,
            requests=len(requests),
            groups=len(groups),
            output_tokens=sum(r.output_tokens for r in requests),
            makespan_s=makespan,
            steals=self.steals,
            replications=self.replications,
            events_run=self.sim.events_run,
            rejected=len(self.rejected),
            rejected_tokens=sum(r.output_tokens for r in self.rejected),
            crashes=len(crashed),
            promotions=self.promotions,
            redispatched_groups=self.redispatches,
            availability=(alive_time / total_time if total_time > 0 else 1.0),
            recovery_s=recovery_s,
            p50_s=latency_summary.p50_s,
            p99_s=latency_summary.p99_s,
            fault_specs=tuple(self.faults.specs()),
            deadline_s=self.deadline_s,
            nodes=tuple(summaries),
            timeline=self.timeline,
        )

    def completed_requests(self) -> List[CompletedRequest]:
        """All completions across nodes, in finish order."""
        out: List[CompletedRequest] = []
        for node in self.nodes:
            out.extend(node.engine.completed)
        out.sort(key=lambda c: (c.finish_s, c.request_id))
        return out


# ----------------------------------------------------------------------
# Convenience drivers
# ----------------------------------------------------------------------
def run_cluster(
    platform_factory: Callable[[], object],
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    num_nodes: int,
    policy: Union[str, ClusterPolicy] = "steal",
    node_policy: Union[str, NodePolicy] = "overlap",
    max_batch: int = 8,
    window: int = 16,
    online_replication: bool = True,
    faults: Optional[FaultsLike] = None,
    heartbeat_s: float = 0.05,
    deadline_s: Optional[float] = None,
    cache_policy: CachePolicyLike = None,
    event_batching: bool = True,
    record_timeline: bool = True,
    drain_mode: "Union[str, DrainMode, None]" = None,
    scheduler: SchedulerLike = None,
    tier_capacities: Optional[Dict[str, int]] = None,
    pipeline_promotions: bool = False,
) -> ClusterReport:
    """One cluster run over a fresh engine (fresh timeline, fresh clock)."""
    engine = ClusterEngine(
        platform_factory,
        library,
        num_nodes,
        policy=policy,
        node_policy=node_policy,
        max_batch=max_batch,
        window=window,
        online_replication=online_replication,
        faults=faults,
        heartbeat_s=heartbeat_s,
        deadline_s=deadline_s,
        cache_policy=cache_policy,
        event_batching=event_batching,
        record_timeline=record_timeline,
        drain_mode=drain_mode,
        scheduler=scheduler,
        tier_capacities=tier_capacities,
        pipeline_promotions=pipeline_promotions,
    )
    return engine.serve(requests)


def scaling_sweep(
    platform_factory: Callable[[], object],
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    node_counts: Sequence[int] = (1, 2, 4, 8),
    policy: Union[str, ClusterPolicy] = "steal",
    node_policy: Union[str, NodePolicy] = "overlap",
    max_batch: int = 8,
    online_replication: bool = True,
) -> Dict[int, ClusterReport]:
    """The scaling curve: the same backlog at each node count."""
    reports: Dict[int, ClusterReport] = {}
    for n in node_counts:
        reports[n] = run_cluster(
            platform_factory,
            library,
            requests,
            num_nodes=n,
            policy=policy,
            node_policy=node_policy,
            max_batch=max_batch,
            online_replication=online_replication,
        )
    return reports


__all__ = [
    "CLUSTER_POLICIES",
    "NODE_LANES",
    "ClusterEngine",
    "ClusterReport",
    "NodeSummary",
    "cluster_lanes",
    "run_cluster",
    "scaling_sweep",
    "zipf_request_stream",
]
