"""Cluster-level CoE serving: event-driven multi-node dispatch.

The paper's Section III-B motivates the single-node SN40L by the pain of
the alternative: multi-machine CoE serving "increases costs, complicates
deployment, and introduces load balancing challenges". This module makes
that trade-off *measurable*: one :class:`repro.coe.engine.ServingEngine`
per node, all on a **shared** :class:`repro.sim.engine.Simulator` clock,
with every node's activity on its own lanes (``node0/compute``,
``node0/switch``, ``node0/prefetch``, ``node1/...``) of a single
:class:`repro.obs.Timeline` — so a Perfetto trace shows cross-node
overlap directly, and the scaling curve is derived from the same spans.

Cluster policies (:data:`CLUSTER_POLICIES`):

- ``least_loaded`` — static admission: each group goes to the owner
  replica with the smallest estimated backlog. The baseline: whatever
  skew the sharding creates, the nodes keep.
- ``affinity`` — least-loaded, but an owner whose queue tail already
  ends in the group's expert wins ties: extending a same-expert run
  avoids a future switch on that node.
- ``steal`` — ``least_loaded`` admission plus *runtime* rebalancing:
  when a node drains, it steals queued groups whose expert it hosts
  from the deepest queue; when nothing is stealable and online
  replication is on, it picks the hottest queued expert on the deepest
  node, replicates it locally (paying the DDR->HBM copy span on the sim
  clock via :meth:`ServingEngine.warm` — replication is *not* free),
  and then pulls that expert's queued groups over.

Under Zipf-skewed traffic the single-owner sharding of
:func:`repro.systems.cluster.partition_experts` leaves most nodes idle
while the hot expert's owner grinds through a long queue; online
replication plus stealing is what converts those idle replicas into
throughput, which is exactly the load-balancing machinery the paper says
a scale-out CoE deployment must carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.coe.engine import (
    CompletedRequest,
    EngineRequest,
    ServingEngine,
    zipf_request_stream,
)
from repro.coe.expert import ExpertLibrary, ExpertProfile
from repro.coe.scheduling import RequestGroup, affinity_schedule, coalesce_groups
from repro.obs import Timeline
from repro.sim.engine import Simulator
from repro.systems.cluster import partition_experts

CLUSTER_POLICIES = ("least_loaded", "affinity", "steal")

#: Per-node lane bases, in the order traces should display them.
NODE_LANES = ("compute", "switch", "prefetch")


def cluster_lanes(num_nodes: int) -> List[str]:
    """The lane names a ``num_nodes`` cluster records, in display order."""
    return [
        f"node{idx}/{base}" for idx in range(num_nodes) for base in NODE_LANES
    ]


@dataclass
class _Node:
    """One cluster node: its engine plus the scheduler's bookkeeping."""

    index: int
    name: str
    engine: ServingEngine
    hosted: Set[str]
    steals_in: int = 0
    replicas_hosted: int = 0


@dataclass(frozen=True)
class NodeSummary:
    """Per-node slice of a cluster run."""

    name: str
    requests: int
    groups: int
    output_tokens: int
    busy_s: float
    switch_s: float
    hidden_switch_s: float
    steals_in: int
    replicas_hosted: int
    tokens_per_second: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "groups": self.groups,
            "output_tokens": self.output_tokens,
            "busy_s": self.busy_s,
            "switch_s": self.switch_s,
            "hidden_switch_s": self.hidden_switch_s,
            "steals_in": self.steals_in,
            "replicas_hosted": self.replicas_hosted,
            "tokens_per_second": self.tokens_per_second,
        }


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate result of one cluster run, timeline-derived."""

    policy: str
    node_policy: str
    num_nodes: int
    requests: int
    groups: int
    output_tokens: int
    makespan_s: float
    steals: int
    replications: int
    events_run: int
    nodes: Tuple[NodeSummary, ...]
    timeline: Timeline = field(repr=False)

    @property
    def tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.output_tokens / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.requests / self.makespan_s

    @property
    def load_imbalance(self) -> float:
        """Busiest-to-average node compute-busy ratio (1.0 = perfect)."""
        times = [n.busy_s for n in self.nodes]
        mean = sum(times) / len(times) if times else 0.0
        if mean == 0.0:
            return 1.0
        return max(times) / mean

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "node_policy": self.node_policy,
            "num_nodes": self.num_nodes,
            "requests": self.requests,
            "groups": self.groups,
            "output_tokens": self.output_tokens,
            "makespan_s": self.makespan_s,
            "tokens_per_second": self.tokens_per_second,
            "requests_per_second": self.requests_per_second,
            "load_imbalance": self.load_imbalance,
            "steals": self.steals,
            "replications": self.replications,
            "events_run": self.events_run,
            "nodes": [n.to_dict() for n in self.nodes],
        }


class ClusterEngine:
    """Runs one :class:`ServingEngine` per node on a shared clock."""

    def __init__(
        self,
        platform_factory: Callable[[], object],
        library: ExpertLibrary,
        num_nodes: int,
        policy: str = "steal",
        node_policy: str = "overlap",
        max_batch: int = 8,
        window: int = 16,
        balanced: bool = True,
        online_replication: bool = True,
        replication_depth: int = 3,
        max_replicas: Optional[int] = None,
    ) -> None:
        if policy not in CLUSTER_POLICIES:
            raise ValueError(
                f"unknown cluster policy {policy!r}; "
                f"expected one of {CLUSTER_POLICIES}"
            )
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if replication_depth < 1:
            raise ValueError(
                f"replication_depth must be >= 1, got {replication_depth}"
            )
        self.policy = policy
        self.node_policy = node_policy
        self.library = library
        self.max_batch = max_batch
        self.window = window
        self.online_replication = online_replication
        self.replication_depth = replication_depth
        self.max_replicas = num_nodes if max_replicas is None else max_replicas
        self.timeline = Timeline()
        self.sim = Simulator(timeline=self.timeline)
        self.steals = 0
        self.replications = 0

        shards = [
            s for s in partition_experts(library, num_nodes, balanced=balanced)
            if s
        ]
        self.nodes: List[_Node] = []
        #: Expert name -> indices of nodes hosting a replica.
        self._owners: Dict[str, List[int]] = {}
        for idx, shard in enumerate(shards):
            engine = ServingEngine(
                platform_factory(),
                ExpertLibrary(experts=list(shard)),
                policy=node_policy,
                max_batch=max_batch,
                window=window,
                simulator=self.sim,
                lane_prefix=f"node{idx}/",
            )
            node = _Node(
                index=idx,
                name=f"node{idx}",
                engine=engine,
                hosted={e.name for e in shard},
            )
            engine.on_idle = lambda _eng, n=node: self._node_idle(n)
            engine.on_group_done = (
                lambda _eng, _group, n=node: self._node_idle(n)
                if not n.engine.busy
                else None
            )
            self.nodes.append(node)
            for expert in shard:
                self._owners.setdefault(expert.name, []).append(idx)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Admission routing
    # ------------------------------------------------------------------
    def _owner_nodes(self, expert: ExpertProfile) -> List[_Node]:
        try:
            return [self.nodes[i] for i in self._owners[expert.name]]
        except KeyError:
            raise KeyError(f"no node hosts expert {expert.name!r}") from None

    def _route(self, group: RequestGroup) -> _Node:
        owners = self._owner_nodes(group.expert)
        if self.policy == "affinity":
            # An owner already ending in this expert extends its run for
            # free (no switch); among those, and otherwise, least loaded.
            tail_match = [
                n for n in owners
                if n.engine.last_queued_expert == group.expert.name
            ]
            pool = tail_match or owners
        else:
            pool = owners
        return min(pool, key=lambda n: (n.engine.estimated_backlog_s(), n.index))

    # ------------------------------------------------------------------
    # Runtime rebalancing (the ``steal`` policy)
    # ------------------------------------------------------------------
    def _node_idle(self, node: _Node) -> None:
        if self.policy != "steal":
            return
        if node.engine.queue_depth > 0:
            return
        if self._steal_into(node):
            return
        if self.online_replication:
            self._replicate_into(node)

    def _steal_into(self, node: _Node) -> bool:
        """Pull one queued group this node can serve off the deepest queue."""
        hosted = node.hosted
        victims = sorted(
            (v for v in self.nodes if v is not node and v.engine.queue_depth >= 2),
            key=lambda v: -v.engine.estimated_backlog_s(),
        )
        for victim in victims:
            group = victim.engine.steal(lambda e: e.name in hosted)
            if group is not None:
                self.steals += 1
                node.steals_in += 1
                node.engine.submit(group)
                return True
        return False

    def _replicate_into(self, node: _Node) -> bool:
        """Replicate the hottest queued expert of the deepest node here.

        The replica's DDR->HBM copy is paid on the simulator clock via
        :meth:`ServingEngine.warm` — replication is never free — and the
        victim's queued groups of that expert then move to this node.
        """
        victims = sorted(
            (
                v for v in self.nodes
                if v is not node
                and v.engine.queue_depth >= self.replication_depth
            ),
            key=lambda v: -v.engine.estimated_backlog_s(),
        )
        for victim in victims:
            counts = victim.engine.queued_expert_counts()
            candidates = sorted(
                (
                    name for name, count in counts.items()
                    if count >= 2
                    and name not in node.hosted
                    and len(self._owners.get(name, ())) < self.max_replicas
                ),
                key=lambda name: (-counts[name], name),
            )
            for name in candidates:
                expert = self.library[name]
                node.engine.host(expert)
                node.hosted.add(name)
                node.replicas_hosted += 1
                self._owners.setdefault(name, []).append(node.index)
                self.replications += 1
                node.engine.warm(expert)
                # Move roughly half the victim's queued groups of this
                # expert; the owner keeps the rest so both replicas work.
                move = max(1, counts[name] // 2)
                for _ in range(move):
                    group = victim.engine.steal(lambda e: e.name == name)
                    if group is None:
                        break
                    self.steals += 1
                    node.steals_in += 1
                    node.engine.submit(group)
                return True
        return False

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[EngineRequest]) -> ClusterReport:
        """Drain the whole backlog across the cluster; one shared clock."""
        if not requests:
            raise ValueError("empty request backlog")
        if self.node_policy == "fifo":
            ordered = list(requests)
        else:
            ordered = affinity_schedule(requests, window=self.window)
        groups = coalesce_groups(ordered, self.max_batch)
        for group in groups:
            self._route(group).engine.submit(group)
        makespan = self.sim.run()
        for node in self.nodes:
            node.engine.flush_speculation(makespan)
        completed = sum(len(n.engine.completed) for n in self.nodes)
        if completed != len(requests):
            raise RuntimeError(
                f"cluster lost requests: {completed} completed "
                f"of {len(requests)} submitted"
            )
        summaries = []
        for node in self.nodes:
            tokens = sum(c.output_tokens for c in node.engine.completed)
            summaries.append(
                NodeSummary(
                    name=node.name,
                    requests=len(node.engine.completed),
                    groups=node.engine.groups_done,
                    output_tokens=tokens,
                    busy_s=self.timeline.busy_s(node.engine.lane("compute")),
                    switch_s=self.timeline.busy_s(node.engine.lane("switch")),
                    hidden_switch_s=self.timeline.overlap_s(
                        node.engine.lane("switch"), node.engine.lane("compute")
                    ),
                    steals_in=node.steals_in,
                    replicas_hosted=node.replicas_hosted,
                    tokens_per_second=(
                        tokens / makespan if makespan > 0 else 0.0
                    ),
                )
            )
        return ClusterReport(
            policy=self.policy,
            node_policy=self.node_policy,
            num_nodes=self.num_nodes,
            requests=len(requests),
            groups=len(groups),
            output_tokens=sum(r.output_tokens for r in requests),
            makespan_s=makespan,
            steals=self.steals,
            replications=self.replications,
            events_run=self.sim.events_run,
            nodes=tuple(summaries),
            timeline=self.timeline,
        )

    def completed_requests(self) -> List[CompletedRequest]:
        """All completions across nodes, in finish order."""
        out: List[CompletedRequest] = []
        for node in self.nodes:
            out.extend(node.engine.completed)
        out.sort(key=lambda c: (c.finish_s, c.request_id))
        return out


# ----------------------------------------------------------------------
# Convenience drivers
# ----------------------------------------------------------------------
def run_cluster(
    platform_factory: Callable[[], object],
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    num_nodes: int,
    policy: str = "steal",
    node_policy: str = "overlap",
    max_batch: int = 8,
    window: int = 16,
    online_replication: bool = True,
) -> ClusterReport:
    """One cluster run over a fresh engine (fresh timeline, fresh clock)."""
    engine = ClusterEngine(
        platform_factory,
        library,
        num_nodes,
        policy=policy,
        node_policy=node_policy,
        max_batch=max_batch,
        window=window,
        online_replication=online_replication,
    )
    return engine.serve(requests)


def scaling_sweep(
    platform_factory: Callable[[], object],
    library: ExpertLibrary,
    requests: Sequence[EngineRequest],
    node_counts: Sequence[int] = (1, 2, 4, 8),
    policy: str = "steal",
    node_policy: str = "overlap",
    max_batch: int = 8,
    online_replication: bool = True,
) -> Dict[int, ClusterReport]:
    """The scaling curve: the same backlog at each node count."""
    reports: Dict[int, ClusterReport] = {}
    for n in node_counts:
        reports[n] = run_cluster(
            platform_factory,
            library,
            requests,
            num_nodes=n,
            policy=policy,
            node_policy=node_policy,
            max_batch=max_batch,
            online_replication=online_replication,
        )
    return reports


__all__ = [
    "CLUSTER_POLICIES",
    "NODE_LANES",
    "ClusterEngine",
    "ClusterReport",
    "NodeSummary",
    "cluster_lanes",
    "run_cluster",
    "scaling_sweep",
    "zipf_request_stream",
]
