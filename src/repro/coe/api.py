"""The unified serving facade: one config, one entry point, two engines.

Historically each serving layer had its own front door — the latency
path's ``CoEServer`` (now :class:`repro.coe.serving.ExpertServer`), the
single-node :class:`repro.coe.engine.ServingEngine`, and the scale-out
:class:`repro.coe.cluster_engine.ClusterEngine` — with overlapping but
differently-spelled knobs. This module is the one surface callers use:

- :class:`Server` — the protocol both engines satisfy (``serve(requests)
  -> report``), so schedulers, benchmarks and the CLI can hold either.
- :class:`ServeConfig` — every serving knob in one validated, frozen
  dataclass: typed policies (:class:`repro.coe.policies.NodePolicy`,
  :class:`~repro.coe.policies.ClusterPolicy` — legacy strings coerce),
  batching/prefetch, cluster shape, and the fault/SLO surface
  (:class:`repro.sim.faults.FaultSchedule`, heartbeat, deadline).
- :func:`serve` — ``repro.serve(platform, library, requests, config)``:
  builds the right engine for the config and drains the backlog.

The engine choice is a pure function of the config: anything that needs
cross-node machinery (``num_nodes > 1``, a fault schedule, a deadline)
runs on :class:`ClusterEngine`; otherwise the leaner single-node
:class:`ServingEngine`. ``platform`` may be an instance or a zero-arg
factory — a cluster builds one platform per node either way.

Migration from ``CoEServer``: its latency-breakdown types
(:class:`RequestLatency`, :class:`ServeResult`) are re-exported here and
:class:`ExpertServer` remains available for the batch-of-one latency
path; see ``docs/SERVING_API.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.coe.cluster_engine import ClusterEngine, ClusterReport, _coerce_faults
from repro.coe.decisions import DecisionLog
from repro.coe.engine import EngineReport, EngineRequest, ServingEngine
from repro.coe.expert import ExpertLibrary
from repro.coe.policies import (
    CachePolicyName,
    ClusterPolicy,
    NodePolicy,
    SchedulerName,
    ServeMode,
)
from repro.coe.serving import (
    ExpertServer,
    RequestLatency,
    ServeResult,
    validate_tier_capacities,
)
from repro.load import ArrivalSpec, generate_trace
from repro.sim.faults import FaultSchedule
from repro.systems.platforms import Platform

#: A platform instance, or a zero-arg factory of them (cluster nodes
#: each get their own instance when a factory is given).
PlatformLike = Union[Platform, Callable[[], Platform]]

#: What a :class:`Server` returns (``LiveReport`` when ``mode="live"``).
ServeReport = Union[EngineReport, ClusterReport, "LiveReport"]


class ServeModeError(ValueError):
    """A config option was used in the wrong :class:`ServeMode`.

    Raised instead of silently ignoring the option, matching the
    belady-by-name rejection pattern: a knob that cannot take effect in
    the requested mode is a caller bug, not a default to paper over.
    """


@runtime_checkable
class Server(Protocol):
    """Anything that drains a backlog of pre-routed requests.

    Implemented by :class:`ServingEngine` (single node) and
    :class:`ClusterEngine` (scale-out with fault tolerance); both return
    a report whose common core is requests/tokens/makespan plus a
    :class:`repro.obs.Timeline` of what actually happened.
    """

    def serve(self, requests: Sequence[EngineRequest]) -> ServeReport:
        ...


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob, validated once, in one place.

    Policies accept enum members or their legacy string values
    (coerced through :meth:`repro.coe.policies.PolicyEnum.coerce`, which
    raises a :class:`ValueError` naming the valid members). ``faults``
    accepts a :class:`FaultSchedule`, an iterable of fault events, or an
    iterable of spec strings (``"node3:2.5"``, ``"slow:1:0.5:2"``...).
    """

    #: Single-node scheduling policy (also each cluster node's).
    policy: NodePolicy = NodePolicy.OVERLAP
    #: Cross-node dispatch policy (ignored on one node).
    cluster_policy: ClusterPolicy = ClusterPolicy.STEAL
    #: HBM expert-cache eviction policy (every node's runtime). The
    #: offline ``belady`` oracle needs a recorded trace and cannot be
    #: configured by name — build a
    #: :class:`repro.coe.cache.BeladyPolicy` and pass it to the engine
    #: directly instead.
    cache_policy: CachePolicyName = CachePolicyName.LRU
    #: Admission-time request reordering applied to the queued backlog
    #: before node scheduling (:class:`repro.coe.policies.SchedulerName`;
    #: implementations in :mod:`repro.coe.scheduling`). ``fifo`` is the
    #: historical arrival order; ``expert_reorder`` batches the backlog
    #: by expert to amortize tier switches. Valid in both modes.
    scheduler: SchedulerName = SchedulerName.FIFO
    #: CoServe-style promotion pipelining: when the scheduler's
    #: reordered backlog shows an upcoming NVMe-resident expert, its
    #: NVMe->DDR promotion starts on the prefetch lane while the current
    #: group decodes, so the demand miss pays only the DDR->HBM hop.
    #: Needs a bounded ``tier_capacities['ddr']`` to have any effect;
    #: incompatible with the ``overlap`` node policy (both claim the
    #: idle DMA). Valid in both modes — live runs cancel in-flight
    #: promotions wall-clock-legally at shutdown.
    pipeline_promotions: bool = False
    #: Byte budgets per memory tier (``{"hbm": ..., "ddr": ...}``),
    #: overriding the platform defaults — the constrained-memory ladder's
    #: knob. ``"hbm"`` sizes the expert region directly (mutually
    #: exclusive with ``reserved_hbm_bytes``); a bounded ``"ddr"`` turns
    #: on NVMe backing with multi-hop promotion. ``None`` = platform
    #: capacities, bitwise-identical to the legacy two-tier behaviour.
    tier_capacities: Optional[dict] = None
    num_nodes: int = 1
    max_batch: int = 8
    window: int = 16
    online_replication: bool = True
    replication_depth: int = 3
    max_replicas: Optional[int] = None
    #: Single-node only: HBM reserved for router + KV cache.
    reserved_hbm_bytes: Optional[int] = None
    #: Deterministic fault schedule (forces the cluster engine).
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    #: Crash-detection sweep period (bounds detection latency).
    heartbeat_s: float = 0.05
    #: SLO deadline; admission sheds work that cannot meet it
    #: (lowest priority first, reported as ``rejected``).
    deadline_s: Optional[float] = None
    #: Which clock drives the run: the discrete-event simulator
    #: (``"sim"``, the default) or the asyncio wall clock (``"live"``).
    mode: ServeMode = ServeMode.SIM
    #: Open-loop arrival workload (:class:`repro.load.ArrivalSpec` or
    #: its dict form); lets :func:`serve` generate the request stream
    #: itself (``requests=None``). Valid in both modes.
    load: Optional[ArrivalSpec] = None
    #: Live only — per-node admission queue bound; a full queue sheds
    #: with a typed backpressure result instead of buffering unboundedly.
    max_queue: Optional[int] = None
    #: Live only — wall seconds per model second (1.0 = real time;
    #: small values compress a long trace into a quick wall run).
    time_scale: Optional[float] = None
    #: Live only — wall-second budget for graceful drain at shutdown.
    drain_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", NodePolicy.coerce(self.policy))
        object.__setattr__(
            self, "cluster_policy", ClusterPolicy.coerce(self.cluster_policy)
        )
        object.__setattr__(
            self, "cache_policy", CachePolicyName.coerce(self.cache_policy)
        )
        if self.cache_policy is CachePolicyName.BELADY:
            raise ValueError(
                "cache_policy 'belady' is the offline oracle and needs a "
                "recorded trace; build a repro.coe.cache.BeladyPolicy and "
                "pass it to the engine directly"
            )
        object.__setattr__(
            self, "scheduler", SchedulerName.coerce(self.scheduler)
        )
        object.__setattr__(
            self,
            "tier_capacities",
            validate_tier_capacities(self.tier_capacities),
        )
        if (self.tier_capacities is not None
                and "hbm" in self.tier_capacities
                and self.reserved_hbm_bytes is not None):
            raise ValueError(
                "reserved_hbm_bytes and tier_capacities['hbm'] both size "
                "the HBM expert region; pass one or the other"
            )
        object.__setattr__(self, "faults", _coerce_faults(self.faults))
        if self.pipeline_promotions and self.policy is NodePolicy.OVERLAP:
            raise ValueError(
                "pipeline_promotions is incompatible with policy 'overlap': "
                "overlap's speculative prefetches start at 'now' regardless "
                "of DMA occupancy, so sharing the prefetch lane with "
                "pipelined NVMe promotions would double-book the DMA"
            )
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.max_batch < 1 or self.window < 1:
            raise ValueError("max_batch and window must be >= 1")
        if self.replication_depth < 1:
            raise ValueError(
                f"replication_depth must be >= 1, got {self.replication_depth}"
            )
        if self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        object.__setattr__(self, "mode", ServeMode.coerce(self.mode))
        if self.load is not None and not isinstance(self.load, ArrivalSpec):
            object.__setattr__(
                self, "load", ArrivalSpec.from_dict(dict(self.load))
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.time_scale is not None and self.time_scale <= 0:
            raise ValueError(
                f"time_scale must be > 0, got {self.time_scale}"
            )
        if self.drain_timeout_s is not None and self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.mode is ServeMode.SIM:
            live_only = [
                name for name, value in (
                    ("max_queue", self.max_queue),
                    ("time_scale", self.time_scale),
                    ("drain_timeout_s", self.drain_timeout_s),
                ) if value is not None
            ]
            if live_only:
                raise ServeModeError(
                    f"{', '.join(live_only)} only take effect in "
                    f"mode='live'; they would be silently ignored by the "
                    f"simulator — drop them or set mode='live'"
                )
        else:
            if self.faults:
                raise ServeModeError(
                    "fault injection is a sim-clock feature (deterministic "
                    "crash/slow/copyfail events need the discrete-event "
                    "schedule); drop faults or set mode='sim'"
                )
            if self.policy is NodePolicy.OVERLAP:
                raise ServeModeError(
                    "policy 'overlap' (speculative prefetch on the modelled "
                    "DMA clock) is sim-only; use 'fifo' or 'affinity' in "
                    "mode='live'"
                )
            if (self.cluster_policy is ClusterPolicy.STEAL
                    and self.num_nodes > 1):
                raise ServeModeError(
                    "cluster_policy 'steal' (runtime queue rebalancing on "
                    "the sim clock) is sim-only; use 'least_loaded' or "
                    "'affinity' in mode='live'"
                )

    @property
    def wants_cluster(self) -> bool:
        """Whether this config needs cluster machinery: more than one
        node, a fault schedule to survive, or a deadline to enforce."""
        return (
            self.num_nodes > 1
            or bool(self.faults)
            or self.deadline_s is not None
        )

    def with_(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serializable view (CLI/benchmark provenance)."""
        return {
            "policy": self.policy.value,
            "cluster_policy": self.cluster_policy.value,
            "cache_policy": self.cache_policy.value,
            "scheduler": self.scheduler.value,
            "pipeline_promotions": self.pipeline_promotions,
            "tier_capacities": (
                dict(self.tier_capacities)
                if self.tier_capacities is not None else None
            ),
            "num_nodes": self.num_nodes,
            "max_batch": self.max_batch,
            "window": self.window,
            "online_replication": self.online_replication,
            "replication_depth": self.replication_depth,
            "max_replicas": self.max_replicas,
            "reserved_hbm_bytes": self.reserved_hbm_bytes,
            "faults": self.faults.specs(),
            "heartbeat_s": self.heartbeat_s,
            "deadline_s": self.deadline_s,
            "mode": self.mode.value,
            "load": self.load.to_dict() if self.load is not None else None,
            "max_queue": self.max_queue,
            "time_scale": self.time_scale,
            "drain_timeout_s": self.drain_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        """Rebuild a config from :meth:`to_dict` output (re-validated).

        The round trip ``ServeConfig.from_dict(cfg.to_dict()) == cfg``
        holds for every field — asserted by the serialization tests so
        a newly added knob cannot silently drop out of provenance dumps.
        """
        return cls(**data)


def build_server(
    platform: PlatformLike,
    library: ExpertLibrary,
    config: Optional[ServeConfig] = None,
    *,
    decision_log: Optional[DecisionLog] = None,
    token_callback: Optional[Callable] = None,
) -> Server:
    """Construct the engine a config calls for, without running it.

    Useful when the caller wants the engine itself (to inspect nodes,
    reuse the timeline, drive incremental submission) rather than just
    the report :func:`serve` returns. ``decision_log`` records every
    policy decision (dispatch, cache eviction, admission) for the
    sim/live cross-check; ``token_callback`` streams decoded tokens and
    is live-only (a :class:`ServeModeError` in sim mode — the simulator
    produces no wall-clock token stream to subscribe to).
    """
    config = config if config is not None else ServeConfig()
    if config.mode is ServeMode.LIVE:
        from repro.coe.live_engine import LiveEngine

        return LiveEngine(
            platform,
            library,
            config,
            decision_log=decision_log,
            token_callback=token_callback,
        )
    if token_callback is not None:
        raise ServeModeError(
            "token_callback streams wall-clock decode tokens and only "
            "takes effect in mode='live'; the simulator has no token "
            "stream to subscribe to"
        )
    if config.wants_cluster:
        factory = platform if callable(platform) else (lambda: platform)
        return ClusterEngine(
            factory,
            library,
            config.num_nodes,
            policy=config.cluster_policy,
            node_policy=config.policy,
            max_batch=config.max_batch,
            window=config.window,
            online_replication=config.online_replication,
            replication_depth=config.replication_depth,
            max_replicas=config.max_replicas,
            faults=config.faults,
            heartbeat_s=config.heartbeat_s,
            deadline_s=config.deadline_s,
            cache_policy=config.cache_policy.value,
            decision_log=decision_log,
            scheduler=config.scheduler.value,
            tier_capacities=config.tier_capacities,
            pipeline_promotions=config.pipeline_promotions,
        )
    instance = platform() if callable(platform) else platform
    return ServingEngine(
        instance,
        library,
        policy=config.policy,
        max_batch=config.max_batch,
        window=config.window,
        reserved_hbm_bytes=config.reserved_hbm_bytes,
        cache_policy=config.cache_policy.value,
        decision_log=decision_log,
        scheduler=config.scheduler.value,
        tier_capacities=config.tier_capacities,
        pipeline_promotions=config.pipeline_promotions,
    )


def serve(
    platform: PlatformLike,
    library: ExpertLibrary,
    requests: Optional[Sequence[EngineRequest]] = None,
    config: Optional[ServeConfig] = None,
    *,
    decision_log: Optional[DecisionLog] = None,
    token_callback: Optional[Callable] = None,
) -> ServeReport:
    """Serve a backlog end to end — the library's single entry point.

    Exposed as ``repro.serve``. Returns an :class:`EngineReport` (one
    node), a :class:`ClusterReport` (cluster / faults / deadline), or a
    :class:`repro.coe.live_engine.LiveReport` (``mode='live'``); all
    carry the run's :class:`repro.obs.Timeline`.

    ``requests`` may be omitted when ``config.load`` carries an
    :class:`repro.load.ArrivalSpec`: the open-loop trace is then
    generated here (deterministically, from the spec's seed) and both
    modes see the identical arrival stream.
    """
    config = config if config is not None else ServeConfig()
    if requests is None:
        if config.load is None:
            raise ValueError(
                "serve() needs requests, or a config.load ArrivalSpec "
                "to generate them from"
            )
        requests = generate_trace(config.load, library).to_requests(library)
    return build_server(
        platform,
        library,
        config,
        decision_log=decision_log,
        token_callback=token_callback,
    ).serve(requests)


__all__ = [
    "CachePolicyName",
    "ClusterPolicy",
    "ExpertServer",
    "NodePolicy",
    "PlatformLike",
    "RequestLatency",
    "SchedulerName",
    "ServeConfig",
    "ServeMode",
    "ServeModeError",
    "ServeReport",
    "ServeResult",
    "Server",
    "build_server",
    "serve",
]
