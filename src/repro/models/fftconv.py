"""FlashFFTConv and Monarch FFT decomposition graphs (paper Figure 3).

The Monarch decomposition factors a length-``N = m * m`` FFT into two
batched ``m x m`` matrix multiplies with a twiddle multiplication and a
transpose in between:

    X(m, m) -> Gemm0(F_m @ X) -> Mul(twiddle) -> Transpose -> Gemm1(F_m @ .)

This graph is the paper's motivating example: its transpose defeats GPU
fusion, its small GEMMs underutilize big systolic arrays, and full spatial
fusion lifts its operational intensity above the roofline ridge (Table I).

`fftconv_graph` builds the full FlashFFTConv convolution over a 1M-token
sequence (Table II's FlashFFTConv row) using a *higher-order* Monarch
decomposition: the paper notes that "higher order Monarch FFT
decompositions create many small matrix multiplies that are 32x32x32 or
smaller" (Section III-A). With radix 32, a 1M-point FFT is four levels of
tiny GEMMs separated by twiddles and transposes — very low operational
intensity unfused, which is exactly why full spatial fusion wins ~13x.
"""

from __future__ import annotations

import math

from repro.dataflow.graph import DataflowGraph, DType, TensorSpec
from repro.dataflow.operators import elementwise, fft_permute, gemm, tensor, transpose


def monarch_fft_graph(
    m: int = 1024, batch: int = 1, dtype: DType = DType.BF16, name: str = "monarch"
) -> DataflowGraph:
    """The simplified Monarch FFT stage of the paper's Figure 3.

    One length-``m*m`` FFT decomposed into ``Gemm0 -> Mul -> Transpose ->
    Gemm1``. The twiddle multiply is complex (8 FLOPs/element as a fused
    real-pair multiply-add).
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    g = DataflowGraph(name)
    x = tensor("x", (batch, m, m) if batch > 1 else (m, m), dtype)
    f0 = tensor("f0", (m, m), dtype, is_weight=True)
    twiddle = tensor("twiddle", (m, m), dtype, is_weight=True)
    f1 = tensor("f1", (m, m), dtype, is_weight=True)

    y = g.add(gemm("gemm0", f0, x, "y", m=m, k=m, n=m, batch=batch, dtype=dtype))
    z = g.add(
        elementwise("mul", [y.outputs[0], twiddle], "z", flops_per_element=8.0)
    )
    zt = g.add(transpose("transpose", z.outputs[0], "zt"))
    g.add(gemm("gemm1", f1, zt.outputs[0], "out", m=m, k=m, n=m, batch=batch, dtype=dtype))
    return g


def _fft_levels(
    g: DataflowGraph,
    source: TensorSpec,
    prefix: str,
    radices,
    bc: int,
    n: int,
    dtype: DType,
) -> TensorSpec:
    """Append one FFT direction: one level of small GEMMs per radix.

    Each level is a batched small GEMM (``r x r x r`` — the "many small
    matrix multiplies" of Section III-A) followed by a twiddle multiply
    and a stride permutation into the next level's layout.
    """
    current = source
    for level, radix in enumerate(radices):
        L = f"{prefix}.lv{level}"
        factor = tensor(f"{L}.f", (radix, radix), dtype, is_weight=True)
        gemm_batch = bc * (n // (radix * radix))
        y = g.add(
            gemm(f"{L}.gemm", factor, current, f"{L}.y",
                 m=radix, k=radix, n=radix, batch=gemm_batch, dtype=dtype)
        ).outputs[0]
        if level < len(radices) - 1:
            tw = tensor(f"{L}.tw", (radix, radix), dtype, is_weight=True)
            z = g.add(
                elementwise(f"{L}.twiddle", [y, tw], f"{L}.z", 8.0)
            ).outputs[0]
            current = g.add(
                transpose(f"{L}.transpose", z, f"{L}.zt")
            ).outputs[0]
        else:
            current = y
    return current


def fftconv_graph(
    seqlen: int = 1 << 20,
    channels: int = 64,
    batch: int = 1,
    radices=None,
    dtype: DType = DType.BF16,
) -> DataflowGraph:
    """FlashFFTConv: ``y = iFFT(FFT(x) * FFT(k))`` over a long sequence.

    ``radices`` is the mixed-radix Monarch factorisation of ``seqlen``
    (FlashFFTConv picks the order per problem size); the default for the
    paper's 1M sequence is ``(64, 128, 128)`` — an order-3 decomposition
    of small GEMMs. The filter's FFT is precomputed (a weight). About 17
    operators, a third of them with fusion-hostile access patterns — the
    structure behind the paper's 13x fused speedup.
    """
    if radices is None:
        radices = _default_radices(seqlen)
    radices = tuple(radices)
    if math.prod(radices) != seqlen:
        raise ValueError(
            f"radices {radices} do not factor seqlen {seqlen}"
        )
    if channels < 1 or batch < 1:
        raise ValueError("channels and batch must be >= 1")
    g = DataflowGraph(f"fftconv-s{seqlen}-c{channels}-b{batch}")
    bc = batch * channels

    x = tensor("x", (bc, seqlen // radices[0], radices[0]), dtype)
    filt = tensor("filter_fft", (channels, seqlen), dtype, is_weight=True)

    xp = g.add(fft_permute("in_permute", x, "xp")).outputs[0]
    spectrum = _fft_levels(g, xp, "fft", radices, bc, seqlen, dtype)

    prod = g.add(
        elementwise("filter_mul", [spectrum, filt], "prod", 8.0,
                    out_shape=spectrum.shape)
    ).outputs[0]

    out = _fft_levels(g, prod, "ifft", tuple(reversed(radices)), bc, seqlen, dtype)
    g.add(fft_permute("out_permute", out, "y"))
    return g


def _default_radices(seqlen: int):
    """Pick a mixed-radix Monarch factorisation for a power-of-two size."""
    known = {
        1 << 20: (64, 128, 128),
        1 << 18: (64, 64, 64),
        1 << 15: (32, 32, 32),
        1 << 12: (64, 64),
        1 << 10: (32, 32),
    }
    if seqlen in known:
        return known[seqlen]
    raise ValueError(
        f"no default radix factorisation for seqlen {seqlen}; pass radices="
    )


def monarch_reference(x, f0, twiddle, f1):
    """Numpy reference of the Figure 3 pipeline for functional tests.

    Computes ``f1 @ (twiddle * (f0 @ x)).T`` — the exact dataflow of
    `monarch_fft_graph` — so the spatial-pipeline simulation can be checked
    end-to-end against dense numpy.
    """
    import numpy as np

    y = f0 @ x
    z = twiddle * y
    return f1 @ np.swapaxes(z, -1, -2)
