"""Weight quantization for experts (capacity/bandwidth extension).

The paper's capacity math assumes BF16 experts. Quantizing expert weights
to INT8 halves both the DDR footprint (more experts hosted per node) and
the switch/decode traffic (faster copies and faster memory-bound decode)
— a natural extension of the three-tier design that the serving stack
here supports end to end, since every capacity and bandwidth quantity
derives from ``TransformerConfig.weight_bytes``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.dataflow.graph import DType
from repro.models.transformer import TransformerConfig


def quantize(cfg: TransformerConfig, dtype: DType = DType.INT8) -> TransformerConfig:
    """A copy of ``cfg`` with weights (and activations) in ``dtype``.

    The returned config is a first-class model: graph builders, platform
    timing, CoE serving, and footprint analysis all pick up the smaller
    element size automatically.
    """
    if dtype.size_bytes > cfg.dtype.size_bytes:
        raise ValueError(
            f"quantize cannot widen {cfg.dtype.name} to {dtype.name}"
        )
    if dtype is cfg.dtype:
        return cfg
    return replace(cfg, name=f"{cfg.name}-{dtype.name.lower()}", dtype=dtype)


def compression_ratio(cfg: TransformerConfig, dtype: DType = DType.INT8) -> float:
    """Weight-storage reduction factor of quantizing ``cfg`` to ``dtype``."""
    quantized = quantize(cfg, dtype)
    return cfg.weight_bytes / quantized.weight_bytes
